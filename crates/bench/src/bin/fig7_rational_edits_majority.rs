//! Figure 7 — constructive vs. destructive edits done by rational agents
//! under a varying share of altruistic (top panel) or irrational (bottom
//! panel) peers. The paper's headline: rational peers learn to behave like
//! the majority — constructively when altruists dominate, destructively
//! when irrational peers do.

use collabsim::experiment::figure7_majority_following;
use collabsim::results::to_csv;
use collabsim::BehaviorType;
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "Figure 7: rational edit behaviour follows the majority",
        scale,
    );

    let altruistic = figure7_majority_following(scale.base_config(), BehaviorType::Altruistic);
    let irrational = figure7_majority_following(scale.base_config(), BehaviorType::Irrational);

    for (panel, sweep) in [
        ("altruistic (top panel)", &altruistic),
        ("irrational (bottom panel)", &irrational),
    ] {
        println!("varying {panel}:");
        println!(
            "{:<20} {:>14} {:>14} {:>14}",
            "configuration", "constructive", "destructive", "constr. frac."
        );
        for r in sweep {
            let rational = r.report.breakdown(BehaviorType::Rational);
            println!(
                "{:<20} {:>14} {:>14} {:>14.3}",
                r.label,
                rational.constructive_edits,
                rational.destructive_edits,
                rational.constructive_edit_fraction()
            );
        }
        println!();
    }
    println!(
        "paper reference: the constructive fraction of rational edits rises with the altruistic share\n\
         and falls with the irrational share (majority following)"
    );

    let mut csv = String::new();
    csv.push_str("sweep=altruistic\n");
    csv.push_str(&to_csv(&altruistic));
    csv.push_str("sweep=irrational\n");
    csv.push_str(&to_csv(&irrational));
    maybe_write_csv(&csv);
}
