//! `arms_race` — the learning-adversary arms race, written as
//! `BENCH_arms.json`.
//!
//! Equilibrates one adversary-free base population, then for every
//! defence on the panel ([`ARMS_DEFENCES`]) runs episodic Q-learning
//! attackers ([`collabsim_cli::training`]) from the shared checkpoint,
//! freezes the learned policy (α = 0, zero adversary-RNG draws), and
//! evaluates the frozen attacker and the scripted `naive-whitewash`
//! opponent from the *same* checkpoint. Per defence the report carries:
//!
//! * **trained vs scripted damage** — measurement-phase bandwidth the
//!   attackers extracted plus destructive edits accepted,
//! * **retention** — mean sharing reputation the attackers held,
//! * **resets / updates / visited cells** — whitewash volume and how much
//!   of the Q-table the training actually explored.
//!
//! Acceptance gates (process exits 1 on violation):
//!
//! 1. The trained attacker strictly out-damages the scripted
//!    naive-whitewasher on at least one defence — learning must discover
//!    something scripting does not.
//! 2. EigenTrust with a pre-trusted set holds the scripted whitewasher to
//!    *less* retained reputation than stock EigenTrust — the pre-trusted
//!    core must blunt the identity-reset exploit.
//! 3. Aggregate steps/sec against `--baseline` (default tolerance 20 %).
//!
//! Flags: `--quick` (reduced scale), `--episodes <n>` (override episodes
//! per defence), `--out <path>` (default `BENCH_arms.json`),
//! `--csv <path>` (per-defence series), `--baseline <path>` +
//! `--max-regress <pct>`.
//!
//! [`ARMS_DEFENCES`]: collabsim_cli::training::ARMS_DEFENCES

use collabsim_bench::{arg_value, extract_number, has_flag, maybe_write_csv};
use collabsim_cli::runner::gate_floor;
use collabsim_cli::training::{
    arms_scale, equilibrate_base, run_defence_arm, EvalOutcome, TrainedPolicy, ARMS_DEFENCES,
};
use std::fmt::Write as _;
use std::time::Instant;

struct ArmResult {
    defence: &'static str,
    trained_policy: TrainedPolicy,
    trained: EvalOutcome,
    scripted: EvalOutcome,
}

impl ArmResult {
    fn trained_wins(&self) -> bool {
        self.trained.damage() > self.scripted.damage()
    }
}

fn render_json(
    results: &[ArmResult],
    equilibration_seconds: f64,
    total_steps_per_sec: f64,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"arms_race\",\n  \"defences\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"defence\": \"{}\", \"q_updates\": {}, \"visited_cells\": {}, \
             \"trained\": {{\"damage\": {:.3}, \"damage_bandwidth\": {:.3}, \
             \"destructive_accepted\": {}, \"mean_reputation_retained\": {:.6}, \
             \"resets\": {}}}, \
             \"scripted\": {{\"damage\": {:.3}, \"damage_bandwidth\": {:.3}, \
             \"destructive_accepted\": {}, \"mean_reputation_retained\": {:.6}, \
             \"resets\": {}}}, \
             \"trained_beats_scripted\": {}}}{sep}",
            r.defence,
            r.trained_policy.updates,
            r.trained_policy.visited_cells,
            r.trained.damage(),
            r.trained.metrics.damage_bandwidth,
            r.trained.metrics.destructive_accepted,
            r.trained.metrics.mean_reputation_retained(),
            r.trained.stats.resets,
            r.scripted.damage(),
            r.scripted.metrics.damage_bandwidth,
            r.scripted.metrics.destructive_accepted,
            r.scripted.metrics.mean_reputation_retained(),
            r.scripted.stats.resets,
            r.trained_wins(),
        );
    }
    let wins = results.iter().filter(|r| r.trained_wins()).count();
    let _ = writeln!(
        out,
        "  ],\n  \"trained_wins\": {wins},\n  \
         \"base_equilibration_seconds\": {equilibration_seconds:.3},\n  \
         \"total_steps_per_sec\": {total_steps_per_sec:.3}\n}}"
    );
    out
}

fn render_csv(results: &[ArmResult]) -> String {
    let mut out = String::from(
        "defence,trained_damage,scripted_damage,trained_retained,scripted_retained,\
         q_updates,visited_cells,trained_beats_scripted\n",
    );
    for r in results {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.6},{:.6},{},{},{}",
            r.defence,
            r.trained.damage(),
            r.scripted.damage(),
            r.trained.metrics.mean_reputation_retained(),
            r.scripted.metrics.mean_reputation_retained(),
            r.trained_policy.updates,
            r.trained_policy.visited_cells,
            r.trained_wins(),
        );
    }
    out
}

fn check_baseline(total_steps_per_sec: f64, baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(reference) = text
        .lines()
        .find_map(|line| extract_number(line, "total_steps_per_sec"))
    else {
        eprintln!("baseline {baseline_path} has no total_steps_per_sec entry");
        return false;
    };
    gate_floor("aggregate", total_steps_per_sec, reference, max_regress_pct)
}

fn main() {
    let quick = has_flag("--quick");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_arms.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let mut scale = arms_scale(quick);
    if let Some(episodes) = arg_value("--episodes").and_then(|v| v.parse().ok()) {
        scale.episodes = episodes;
    }

    println!(
        "collabsim — arms_race [scale: {}]",
        if quick { "quick" } else { "full" }
    );
    println!(
        "(Q-learning attackers vs {} defences, {} peers, {} attackers, {} episodes/defence)",
        ARMS_DEFENCES.len(),
        scale.population,
        scale.adversaries,
        scale.episodes
    );
    println!();

    let equilibrating = Instant::now();
    let (_, checkpoint) = equilibrate_base(&scale).expect("base population equilibrates");
    let equilibration_seconds = equilibrating.elapsed().as_secs_f64();
    println!(
        "base: equilibrated through step {} in {equilibration_seconds:.2}s (shared by every arm)",
        checkpoint.state.step
    );

    let grid_started = Instant::now();
    let mut results = Vec::new();
    for defence in ARMS_DEFENCES {
        let (trained_policy, trained, scripted) =
            run_defence_arm(&scale, &checkpoint, defence).expect("defence arm runs");
        results.push(ArmResult {
            defence: defence.0,
            trained_policy,
            trained,
            scripted,
        });
    }
    // Every arm replays the measurement phase once per episode and twice
    // for evaluation, all forked off the shared checkpoint.
    let measured_steps = scale.phases.evaluation_steps * (scale.episodes as u64 + 2);
    let total_steps = scale.phases.training_steps + measured_steps * ARMS_DEFENCES.len() as u64;
    let total_steps_per_sec =
        total_steps as f64 / (equilibration_seconds + grid_started.elapsed().as_secs_f64());

    println!();
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "defence", "trained", "scripted", "t-retain", "s-retain", "updates", "visited"
    );
    for r in &results {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.4} {:>10.4} {:>8} {:>8}",
            r.defence,
            r.trained.damage(),
            r.scripted.damage(),
            r.trained.metrics.mean_reputation_retained(),
            r.scripted.metrics.mean_reputation_retained(),
            r.trained_policy.updates,
            r.trained_policy.visited_cells,
        );
    }
    println!();

    let wins = results.iter().filter(|r| r.trained_wins()).count();
    println!(
        "headline: trained attacker out-damages the scripted whitewasher on {wins}/{} defences",
        results.len()
    );
    let find = |defence: &str| {
        results
            .iter()
            .find(|r| r.defence == defence)
            .expect("panel covers the headline defences")
    };
    let stock = find("eigentrust");
    let pretrusted = find("eigentrust-pretrusted");
    let pretrusted_cuts_retention = pretrusted.scripted.metrics.mean_reputation_retained()
        < stock.scripted.metrics.mean_reputation_retained();
    println!(
        "          pre-trusted EigenTrust holds the whitewasher to {:.4} retained vs stock \
         {:.4} — {}",
        pretrusted.scripted.metrics.mean_reputation_retained(),
        stock.scripted.metrics.mean_reputation_retained(),
        if pretrusted_cuts_retention {
            "retention cut"
        } else {
            "NOT CUT"
        }
    );

    let json = render_json(&results, equilibration_seconds, total_steps_per_sec);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }
    maybe_write_csv(&render_csv(&results));

    if wins == 0 {
        eprintln!(
            "acceptance violated: the trained attacker must out-damage the scripted \
             naive-whitewasher on at least one defence"
        );
        std::process::exit(1);
    }
    if !pretrusted_cuts_retention {
        eprintln!(
            "acceptance violated: pre-trusted EigenTrust must cut whitewasher retention \
             below stock EigenTrust"
        );
        std::process::exit(1);
    }
    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(total_steps_per_sec, &baseline, max_regress) {
            eprintln!("steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
