//! ABL2 — reputation-propagation ablation under attack.
//!
//! The paper assumes a safe propagation mechanism and cites EigenTrust and
//! MaxFlow as candidates, noting EigenTrust's collusion weakness. This
//! ablation builds a collusion-clique trust graph and reports how each
//! propagation substrate (undamped EigenTrust, damped EigenTrust with
//! pre-trusted peers, MaxFlow from an honest observer, gossip averaging)
//! ranks the colluders relative to honest peers.

use collabsim_bench::{maybe_write_csv, print_header, Scale};
use collabsim_reputation::attack::collusion_clique;
use collabsim_reputation::propagation::eigentrust::EigenTrust;
use collabsim_reputation::propagation::gossip::GossipAveraging;
use collabsim_reputation::propagation::maxflow::MaxFlowTrust;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "ABL2: propagation substrates under a collusion clique",
        scale,
    );

    let (peers, clique) = match scale {
        collabsim_bench::Scale::Paper => (60, 12),
        collabsim_bench::Scale::Quick => (24, 5),
    };
    let mut rng = StdRng::seed_from_u64(2008);
    let (graph, scenario) = collusion_clique(peers, clique, 200.0, 0.4, &mut rng);
    println!(
        "trust graph: {} peers, {} colluders, {} directed edges\n",
        peers,
        clique,
        graph.edge_count()
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    let undamped = EigenTrust::new(0.0, vec![]).compute(&graph);
    rows.push((
        "eigentrust (undamped)".into(),
        mean(&undamped.values, &scenario.honest()),
        mean(&undamped.values, &scenario.attackers),
    ));

    let damped =
        EigenTrust::new(0.2, scenario.honest().into_iter().take(3).collect()).compute(&graph);
    rows.push((
        "eigentrust (damped, pre-trusted)".into(),
        mean(&damped.values, &scenario.honest()),
        mean(&damped.values, &scenario.attackers),
    ));

    let maxflow = MaxFlowTrust::new().reputation_from(&graph, scenario.honest()[0]);
    rows.push((
        "maxflow (honest observer)".into(),
        mean(&maxflow.values, &scenario.honest()),
        mean(&maxflow.values, &scenario.attackers),
    ));

    let gossip = GossipAveraging::new(300).compute(&graph, &mut rng);
    rows.push((
        "gossip averaging".into(),
        mean(&gossip.values, &scenario.honest()),
        mean(&gossip.values, &scenario.attackers),
    ));

    println!(
        "{:<34} {:>14} {:>16} {:>12}",
        "substrate", "mean honest", "mean attacker", "ratio"
    );
    let mut csv = String::from("substrate,mean_honest,mean_attacker,honest_over_attacker\n");
    for (name, honest, attacker) in &rows {
        let ratio = if *attacker > 0.0 {
            honest / attacker
        } else {
            f64::INFINITY
        };
        println!("{name:<34} {honest:>14.5} {attacker:>16.5} {ratio:>12.2}");
        csv.push_str(&format!("{name},{honest:.6},{attacker:.6},{ratio:.4}\n"));
    }
    println!();
    println!(
        "interpretation: max-flow bounds the clique by the honest→clique cut (highest ratio);\n\
         damping towards pre-trusted peers helps EigenTrust; plain gossip is the most exposed."
    );

    maybe_write_csv(&csv);
}

fn mean(values: &[f64], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| values[i]).sum::<f64>() / indices.len() as f64
}
