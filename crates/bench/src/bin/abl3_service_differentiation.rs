//! ABL3 — incentive-scheme ablation on a mixed population.
//!
//! Runs the same 40 % rational / 30 % altruistic / 30 % irrational network
//! under (a) no incentive, (b) direct-relation tit-for-tat and (c) the full
//! reputation-based scheme, and reports sharing, download differentiation
//! and edit quality. This quantifies the paper's Section-II argument that
//! TFT cannot provide incentives for the non-direct, heterogeneous
//! contributions of a collaboration network.

use collabsim::experiment::ablation_schemes;
use collabsim::results::{behavior_table, to_csv, to_table};
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "ABL3: incentive schemes on a 40/30/30 mixed population",
        scale,
    );

    let results = ablation_schemes(scale.base_config());

    println!(
        "{}",
        to_table("whole-population means per scheme", &results)
    );
    for r in &results {
        println!("scheme = {}", r.label);
        println!("{}", behavior_table(&r.report));
        println!(
            "constructive acceptance: {:.3}   destructive acceptance: {:.3}\n",
            r.report.constructive_acceptance_rate(),
            r.report.destructive_acceptance_rate()
        );
    }
    println!(
        "interpretation: only the reputation scheme differentiates downloads in favour of\n\
         contributors *and* suppresses destructive edits; TFT differentiates bandwidth only\n\
         where direct relations exist and leaves editing unprotected."
    );

    maybe_write_csv(&to_csv(&results));
}
