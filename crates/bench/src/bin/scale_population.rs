//! `scale_population` — the large-population scaling bench.
//!
//! Runs the `large_population` scenario family
//! ([`ScenarioSpec::large_population`]) at each requested population
//! tier (default: the 10⁴ / 5·10⁴ / 10⁵ family of
//! `ScenarioGrid::large_population`), measuring world-construction time,
//! end-to-end steps/sec, the per-phase wall-clock breakdown and the
//! process's peak resident set size, and writes the result as
//! `BENCH_scale.json`. Each tier runs through the shared
//! [`collabsim_cli::runner`] core, and the tier specs come from
//! [`collabsim_cli::scenarios::scale_tier_spec`] — the constructor behind
//! the checked-in `scenarios/scale/` files.
//!
//! Flags:
//!
//! * `--tiers 10000,1000000` — override the population tiers (the 10⁶
//!   million-peer tier is exercised this way),
//! * `--train N` / `--eval N` — override the preset's training/evaluation
//!   step counts (the CI smoke leg runs the 10⁶ tier with reduced steps),
//! * `--quick` — a single reduced tier (2 000 peers) for smoke runs,
//! * `--out <path>` — output path (default `BENCH_scale.json`),
//! * `--baseline <path>` — compare steps/sec and peak RSS per tier against
//!   a previously written report and exit non-zero on a regression,
//! * `--max-regress <pct>` — tolerated steps/sec drop and tolerated peak
//!   RSS growth (default 20 %).
//!
//! The CI `perf` job runs the 10⁴ and 10⁶ tiers against the checked-in
//! baseline in `crates/bench/baselines/scale_baseline.json` and uploads
//! the fresh `BENCH_scale.json` as a build artifact.
//!
//! [`ScenarioSpec::large_population`]: collabsim::ScenarioSpec::large_population

use collabsim::experiment::LARGE_POPULATION_TIERS;
use collabsim::pipeline::PhaseRegistry;
use collabsim::Simulation;
use collabsim_bench::{arg_value, extract_number, has_flag, peak_rss_mb};
use collabsim_cli::runner::{gate_floor, gate_rss_ceiling, run_spec_instrumented};
use collabsim_cli::scenarios::scale_tier_spec;
use std::fmt::Write as _;

struct TierResult {
    peers: usize,
    shards: usize,
    threads: usize,
    build_seconds: f64,
    total_steps: u64,
    steps_per_sec: f64,
    mean_sharing_reputation: f64,
    /// Peak RSS after the tier finished. The kernel high-water mark is
    /// process-wide and monotone, so with ascending tiers each snapshot is
    /// dominated by the largest population run so far — the figure that
    /// matters for the memory gate.
    peak_rss_mb: Option<f64>,
    phases: Vec<(String, f64)>,
}

/// Mean final sharing reputation, aggregated by parallel readers over the
/// ledger's [`LedgerView`](collabsim_reputation::sharded::LedgerView) —
/// one scoped worker per shard range, sharing the `Sync` read facade.
fn mean_sharing_reputation(sim: &Simulation) -> f64 {
    let view = sim.ledger().view();
    let shard_count = view.shard_count();
    let peers = view.len();
    let per_worker = peers.div_ceil(shard_count);
    let total: f64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shard_count)
            .map(|w| {
                scope.spawn(move || {
                    let start = w * per_worker;
                    let end = ((w + 1) * per_worker).min(peers);
                    (start..end)
                        .map(|p| view.sharing_reputation(p))
                        .sum::<f64>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    total / peers as f64
}

fn tiers_from_args() -> Vec<usize> {
    if let Some(list) = arg_value("--tiers") {
        let tiers: Vec<usize> = list
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
        if !tiers.is_empty() {
            return tiers;
        }
        eprintln!("--tiers {list:?} did not parse; using the default family");
    }
    if has_flag("--quick") {
        return vec![2_000];
    }
    LARGE_POPULATION_TIERS.to_vec()
}

/// Optional training/evaluation step-count overrides from the command line.
fn step_overrides() -> (Option<u64>, Option<u64>) {
    let parse = |flag: &str| arg_value(flag).and_then(|v| v.parse().ok());
    (parse("--train"), parse("--eval"))
}

fn run_tier(peers: usize, train: Option<u64>, eval: Option<u64>) -> TierResult {
    let spec = scale_tier_spec(peers, train, eval);
    let expected_eval = spec.config().phases.evaluation_steps;
    let (outcome, sim) = run_spec_instrumented(&spec, &PhaseRegistry::standard(), |_| {})
        .expect("standard phases resolve");
    assert_eq!(
        outcome.report.evaluation_steps, expected_eval,
        "evaluation length"
    );
    let phases = sim
        .phase_timings()
        .totals()
        .iter()
        .map(|(name, duration, _)| ((*name).to_string(), duration.as_secs_f64()))
        .collect();
    TierResult {
        peers,
        shards: sim.ledger().shard_count(),
        threads: sim.world().intra_step_threads(),
        build_seconds: outcome.build_seconds,
        total_steps: outcome.total_steps,
        steps_per_sec: outcome.steps_per_sec,
        mean_sharing_reputation: mean_sharing_reputation(&sim),
        peak_rss_mb: peak_rss_mb(),
        phases,
    }
}

fn render_json(results: &[TierResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"scale_population\",\n  \"tiers\": [\n");
    for (i, tier) in results.iter().enumerate() {
        let mut phases = String::new();
        for (j, (name, seconds)) in tier.phases.iter().enumerate() {
            let sep = if j + 1 < tier.phases.len() { ", " } else { "" };
            let _ = write!(phases, "\"{name}\": {seconds:.4}{sep}");
        }
        let mut rss = String::new();
        if let Some(mb) = tier.peak_rss_mb {
            let _ = write!(rss, "\"peak_rss_mb\": {mb:.1}, ");
        }
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"peers\": {}, \"shards\": {}, \"threads\": {}, \"build_seconds\": {:.3}, \
             \"total_steps\": {}, \"steps_per_sec\": {:.3}, {rss}\
             \"mean_sharing_reputation\": {:.6}, \"phases\": {{{phases}}}}}{sep}",
            tier.peers,
            tier.shards,
            tier.threads,
            tier.build_seconds,
            tier.total_steps,
            tier.steps_per_sec,
            tier.mean_sharing_reputation,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// One tier of a baseline report: peers, steps/sec, and (for baselines
/// recorded since the RSS gate landed) the peak RSS in MB.
struct BaselineTier {
    peers: usize,
    steps_per_sec: f64,
    peak_rss_mb: Option<f64>,
}

/// Parses the per-tier lines of a baseline report.
fn parse_baseline(text: &str) -> Vec<BaselineTier> {
    text.lines()
        .filter_map(|line| {
            let peers = extract_number(line, "peers")? as usize;
            let steps_per_sec = extract_number(line, "steps_per_sec")?;
            Some(BaselineTier {
                peers,
                steps_per_sec,
                peak_rss_mb: extract_number(line, "peak_rss_mb"),
            })
        })
        .collect()
}

fn check_baseline(results: &[TierResult], baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("baseline {baseline_path} contains no tiers");
        return false;
    }
    let mut ok = true;
    for tier in results {
        let Some(reference) = baseline.iter().find(|b| b.peers == tier.peers) else {
            println!(
                "tier {}: no baseline entry (skipping the regression check)",
                tier.peers
            );
            continue;
        };
        let name = format!("tier {}", tier.peers);
        ok &= gate_floor(
            &name,
            tier.steps_per_sec,
            reference.steps_per_sec,
            max_regress_pct,
        );
        // The memory gate: peak RSS may grow at most as much as steps/sec
        // may shrink. Skipped when either side lacks a measurement (non-
        // procfs platform or a pre-RSS baseline).
        if let (Some(current), Some(recorded)) = (tier.peak_rss_mb, reference.peak_rss_mb) {
            ok &= gate_rss_ceiling(&name, current, recorded, max_regress_pct);
        }
    }
    ok
}

fn main() {
    let tiers = tiers_from_args();
    let (train, eval) = step_overrides();
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);

    println!("collabsim — scale_population [tiers: {tiers:?}]");
    println!("(--tiers a,b,c to override, --baseline <path> to gate on a previous run)");
    println!();

    let mut results = Vec::new();
    for &peers in &tiers {
        let tier = run_tier(peers, train, eval);
        println!(
            "peers={:>7}  shards={:>2}  threads={}  build={:>7.2}s  steps={}  steps/sec={:>8.2}{}",
            tier.peers,
            tier.shards,
            tier.threads,
            tier.build_seconds,
            tier.total_steps,
            tier.steps_per_sec,
            tier.peak_rss_mb
                .map_or_else(String::new, |mb| format!("  peak_rss={mb:.0}MB")),
        );
        for (name, seconds) in &tier.phases {
            println!("    {name:<12} {seconds:>8.3}s");
        }
        results.push(tier);
    }

    let json = render_json(&results);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(&results, &baseline, max_regress) {
            eprintln!(
                "steps/sec or peak RSS regressed more than {max_regress}% against {baseline}"
            );
            std::process::exit(1);
        }
    }
}
