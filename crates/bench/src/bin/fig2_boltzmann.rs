//! Figure 2 — the Boltzmann action-selection distribution over Q-values
//! `x = 1..10` at temperatures `T = 2` (strongly peaked) and `T = 1000`
//! (almost uniform), as plotted in the paper.

use collabsim_bench::{maybe_write_csv, print_header, Scale};
use collabsim_rl::boltzmann::boltzmann_distribution;

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "Figure 2: Boltzmann distribution over Q-values 1..10",
        scale,
    );

    let values: Vec<f64> = (1..=10).map(f64::from).collect();
    let temperatures = [2.0, 1000.0];

    println!("{:>6} {:>14} {:>14}", "x", "p(x) @ T=2", "p(x) @ T=1000");
    let distributions: Vec<Vec<f64>> = temperatures
        .iter()
        .map(|&t| boltzmann_distribution(&values, t))
        .collect();
    for (i, &x) in values.iter().enumerate() {
        println!(
            "{:>6} {:>14.6} {:>14.6}",
            x, distributions[0][i], distributions[1][i]
        );
    }
    println!();
    println!(
        "T=2    : max/min probability ratio = {:.1}",
        distributions[0][9] / distributions[0][0]
    );
    println!(
        "T=1000 : max/min probability ratio = {:.4}",
        distributions[1][9] / distributions[1][0]
    );
    println!("paper reference: T=2 is strongly peaked at x=10, T=1000 is nearly uniform (p ≈ 0.1)");

    let mut csv = String::from("temperature,x,probability\n");
    for (t, dist) in temperatures.iter().zip(distributions.iter()) {
        for (i, p) in dist.iter().enumerate() {
            csv.push_str(&format!("{t},{},{p:.8}\n", i + 1));
        }
    }
    maybe_write_csv(&csv);
}
