//! `determinism_probe` — prints bit-exact simulation reports for the CI
//! determinism job.
//!
//! The binary runs (1) a mix × scheme × seed scenario grid through the
//! [`ScenarioRunner`] with automatic parallelism, (2) the paper
//! configuration (100 peers, shortened phases) with automatic ledger
//! sharding and intra-step threading, (3) a download-heavy cell with
//! few upload sources, so the batched transfer engine's parallel grant
//! stage allocates large multi-request buckets across its workers, and
//! (4) a churn-enabled spec (departures, re-entries and whitewashes over a
//! sharded ledger) so the offline-gated phase paths stay byte-identical
//! under intra-step parallelism, and (5) an adversary cell
//! (adaptive-whitewash + collusion-ring under the paper mix, with
//! propagation-fed service differentiation) so the strategic-attack and
//! propagated-reputation paths stay byte-identical too; every report's
//! `Debug` form is printed to stdout.
//!
//! All sources of parallelism honour the `SCENARIO_THREADS` environment
//! variable, so CI runs the binary twice — `SCENARIO_THREADS=1` and the
//! default (parallel) — and `diff`s the outputs: any divergence between
//! sequential and sharded-parallel execution fails the build.

use collabsim::adversary::AdversarySpec;
use collabsim::config::PhaseConfig;
use collabsim::experiment::{ScenarioGrid, ScenarioRunner};
use collabsim::{BehaviorMix, IncentiveScheme, ScenarioSpec, Simulation, SimulationConfig};
use collabsim_netsim::churn::ChurnModel;
use collabsim_reputation::propagation::PropagationScheme;

fn main() {
    // The thread setting goes to stderr: stdout must be identical across
    // runs with different SCENARIO_THREADS values (CI diffs it).
    eprintln!(
        "determinism probe (SCENARIO_THREADS={})",
        std::env::var("SCENARIO_THREADS").unwrap_or_else(|_| "unset".to_string())
    );

    // A grid of independent cells: the runner's parallel scheduling must
    // reproduce sequential per-cell reports exactly.
    let base = SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 120,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    let grid = ScenarioGrid::new(base)
        .with_mixes([
            ("half-rational", 50.0, BehaviorMix::new(0.5, 0.25, 0.25)),
            ("all-rational", 100.0, BehaviorMix::all_rational()),
        ])
        .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
        .with_seeds([7, 8]);
    for report in ScenarioRunner::default().run_grid(&grid) {
        println!("{}: {:?}", report.label, report.report);
    }

    // The paper configuration with the sharded ledger: intra-step worker
    // counts must not leak into the trajectory. Built through the spec API
    // so the probe also pins `Simulation::from_spec` == `Simulation::new`.
    let paper = SimulationConfig {
        phases: PhaseConfig {
            training_steps: 1_000,
            evaluation_steps: 500,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.6, 0.2, 0.2))
    .with_ledger_shards(8)
    .with_seed(0xD1CE);
    let spec = ScenarioSpec::from_config(paper).expect("probe spec is valid");
    let report = Simulation::from_spec(&spec)
        .expect("standard phases resolve")
        .run();
    println!("paper/sharded: {report:?}");

    // The batched transfer engine's parallel grant stage: a download-heavy
    // cell in which only a minority of peers offers upload bandwidth, so
    // every source's request bucket holds many competing downloaders and
    // the per-source allocations really fan out across workers. The grant
    // split must not leak into the trajectory.
    let download_heavy = SimulationConfig {
        population: 150,
        initial_articles: 30,
        phases: PhaseConfig {
            training_steps: 400,
            evaluation_steps: 200,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.2, 0.2, 0.6))
    .with_ledger_shards(6)
    .with_seed(0x0BA7_C4ED);
    let report = Simulation::new(download_heavy).run();
    println!("download-heavy/batched-grants: {report:?}");

    // A churn-enabled spec: departures empty ledger shards mid-run,
    // re-entries bring their reputation back, whitewashes reset identities
    // in place — all while the sharing/edit-vote collect stages and the
    // grant workers run in parallel. Churn samples from its own RNG
    // stream, so the trajectory (and these stats) must be byte-identical
    // at any SCENARIO_THREADS value.
    let churn_spec = ScenarioSpec::builder()
        .configure(|c| {
            c.phases = PhaseConfig {
                training_steps: 600,
                evaluation_steps: 300,
                ..Default::default()
            };
        })
        .mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .churn(ChurnModel {
            join_probability: 0.1,
            leave_probability: 0.004,
            whitewash_probability: 0.002,
        })
        .ledger_shards(8)
        .seed(0xC0AC_CEED)
        .build()
        .expect("churn spec is valid");
    let mut sim = Simulation::from_spec(&churn_spec).expect("churn phase resolves");
    let report = sim.run();
    let stats = sim.world().churn_stats;
    println!("churn/sharded: {report:?}");
    println!(
        "churn/stats: joins={} leaves={} whitewashes={} mean_reentry_reputation={:.9} mean_whitewash_shed={:.9}",
        stats.joins,
        stats.leaves,
        stats.whitewashes,
        stats.mean_reentry_reputation(),
        stats.mean_whitewash_shed()
    );

    // An adversary cell under the paper mix: strategic timed whitewashes
    // (with scheduled re-entries) and a collusion ring cross-voting its
    // edits, with service differentiation fed by propagated (EigenTrust)
    // reputation instead of the ledger. Adversaries draw from their own
    // RNG stream and the parallel stages (sharded ledger, grant workers,
    // the runner) must reproduce the attack trajectory byte-for-byte at
    // any SCENARIO_THREADS value.
    let attack_spec = ScenarioSpec::builder()
        .label("adversary/paper-mix")
        .population(80)
        .initial_articles(40)
        .mix(BehaviorMix::new(0.6, 0.2, 0.2))
        .phase_config(PhaseConfig {
            training_steps: 400,
            evaluation_steps: 200,
            ..Default::default()
        })
        .adversary(AdversarySpec::new("adaptive-whitewash", 6).with_parameter(3.0))
        .adversary(AdversarySpec::new("collusion-ring", 5))
        .propagation(PropagationScheme::EigenTrust, 40)
        .propagated_reputation()
        .ledger_shards(8)
        .seed(0xBADC_0DE5)
        .build()
        .expect("adversary spec is valid");
    let mut sim = Simulation::from_spec(&attack_spec).expect("adversary phase resolves");
    let report = sim.run();
    println!("adversary/paper-mix: {report:?}");
    for unit in sim.world().adversaries.units() {
        let stats = unit.stats();
        println!(
            "adversary/stats: unit={} peers={} resets={} shed_per_reset={:.9} forced_steps={} departures={} rejoins={} override_votes={}",
            unit.name(),
            unit.peers().len(),
            stats.resets,
            stats.shed_per_reset(),
            stats.forced_steps,
            stats.departures,
            stats.rejoins,
            stats.override_votes,
        );
    }
}
