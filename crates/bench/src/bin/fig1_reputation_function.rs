//! Figure 1 — the logistic reputation function `R(C) = 1 / (1 + g·e^{−βC})`
//! for `g = 19` and `β ∈ {0.3, 0.2, 0.15, 0.1}` over contribution values
//! `0..=50`, exactly the series plotted in the paper.

use collabsim_bench::{maybe_write_csv, print_header, Scale};
use collabsim_reputation::function::{figure1_series, FIGURE1_BETAS};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header("Figure 1: reputation function R(C), g = 19", scale);

    let series = figure1_series(50);

    // Human-readable table: one row per contribution value, one column per β.
    print!("{:>12}", "C");
    for beta in FIGURE1_BETAS {
        print!("  {:>10}", format!("beta={beta}"));
    }
    println!();
    for c in (0..=50).step_by(5) {
        print!("{:>12}", c);
        for (_, points) in &series {
            print!("  {:>10.4}", points[c].1);
        }
        println!();
    }

    println!();
    for (beta, points) in &series {
        let half = points
            .iter()
            .find(|(_, r)| *r >= 0.5)
            .map(|(c, _)| *c)
            .unwrap_or(f64::NAN);
        println!(
            "beta={beta:<5} R(0)={:.3}  R(50)={:.3}  first C with R >= 0.5: {half}",
            points[0].1, points[50].1
        );
    }

    // CSV export: long format (beta, contribution, reputation).
    let mut csv = String::from("beta,contribution,reputation\n");
    for (beta, points) in &series {
        for (c, r) in points {
            csv.push_str(&format!("{beta},{c},{r:.6}\n"));
        }
    }
    maybe_write_csv(&csv);
}
