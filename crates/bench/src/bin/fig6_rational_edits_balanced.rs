//! Figure 6 — constructive vs. destructive edits done by **rational**
//! agents when altruistic and irrational peers are equally common. The
//! paper finds the outcome to be essentially random / bistable because the
//! balanced non-rational population gives the learners no consistent signal
//! about which voting behaviour succeeds.

use collabsim::experiment::figure6_balanced_edit_behaviour;
use collabsim::results::to_csv;
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "Figure 6: rational edit behaviour with balanced altruistic/irrational shares",
        scale,
    );

    let results = figure6_balanced_edit_behaviour(scale.base_config());

    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "configuration", "constructive", "destructive", "constr. frac."
    );
    for r in &results {
        let rational = r.report.breakdown(collabsim::BehaviorType::Rational);
        println!(
            "{:<18} {:>14} {:>14} {:>14.3}",
            r.label,
            rational.constructive_edits,
            rational.destructive_edits,
            rational.constructive_edit_fraction()
        );
    }
    println!();
    println!(
        "paper reference: with a balanced non-rational population the split is close to random\n\
         (the constructive fraction fluctuates around 0.5 rather than converging)"
    );

    maybe_write_csv(&to_csv(&results));
}
