//! Figure 3 — amount of shared articles and bandwidth of an all-rational
//! population, with and without the incentive scheme. The paper reports
//! roughly 8 % more shared articles and 11 % more shared bandwidth when the
//! scheme is active. The comparison is averaged over several independent
//! seeds per arm because a single reduced-scale run is noisy.

use collabsim::experiment::{figure3_replicated, mean_sharing};
use collabsim::results::{relative_gain, to_csv};
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "Figure 3: sharing with vs. without the incentive scheme",
        scale,
    );

    let replications = match scale {
        Scale::Paper => 3,
        Scale::Quick => 5,
    };
    let (with, without) = figure3_replicated(scale.base_config(), replications);

    println!("per-seed runs:");
    println!("{:<28} {:>14} {:>14}", "run", "articles", "bandwidth");
    for r in with.iter().chain(without.iter()) {
        println!(
            "{:<28} {:>14.4} {:>14.4}",
            r.label, r.report.shared_articles, r.report.shared_bandwidth
        );
    }

    let (articles_with, bandwidth_with) = mean_sharing(&with);
    let (articles_without, bandwidth_without) = mean_sharing(&without);
    println!();
    println!("seed-averaged comparison ({replications} seeds per arm):");
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "metric", "with incentive", "without", "gain"
    );
    println!(
        "{:<22} {:>16.4} {:>16.4} {:>11.1}%",
        "shared articles",
        articles_with,
        articles_without,
        relative_gain(articles_with, articles_without) * 100.0
    );
    println!(
        "{:<22} {:>16.4} {:>16.4} {:>11.1}%",
        "shared bandwidth",
        bandwidth_with,
        bandwidth_without,
        relative_gain(bandwidth_with, bandwidth_without) * 100.0
    );
    println!("paper reference: approximately +8% articles, +11% bandwidth");

    let mut all = with;
    all.extend(without);
    maybe_write_csv(&to_csv(&all));
}
