//! Figure 5 — shared articles and bandwidth **per rational peer** under
//! varying fractions of altruistic and irrational peers. The paper's key
//! observation is that these curves are nearly flat: rational agents keep
//! sharing regardless of how many altruists or free-riders surround them.

use collabsim::experiment::mix_sweep;
use collabsim::results::to_csv;
use collabsim::BehaviorType;
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header(
        "Figure 5: sharing per *rational* peer vs. behaviour mix",
        scale,
    );

    let altruistic = mix_sweep(scale.base_config(), BehaviorType::Altruistic);
    let irrational = mix_sweep(scale.base_config(), BehaviorType::Irrational);

    for (name, sweep) in [("altruistic", &altruistic), ("irrational", &irrational)] {
        println!("varying {name} share — rational-peer means:");
        println!(
            "{:<22} {:>16} {:>16}",
            "configuration", "rat. articles", "rat. bandwidth"
        );
        for r in sweep {
            println!(
                "{:<22} {:>16.4} {:>16.4}",
                r.label,
                r.report.rational_shared_articles(),
                r.report.rational_shared_bandwidth()
            );
        }
        let values: Vec<f64> = sweep
            .iter()
            .map(|r| r.report.rational_shared_bandwidth())
            .collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!("rational bandwidth range across the sweep: [{min:.4}, {max:.4}]\n");
    }
    println!(
        "paper reference: both panels are nearly flat (rational peers are insensitive to the mix)"
    );

    let mut csv = String::new();
    csv.push_str("sweep=altruistic\n");
    csv.push_str(&to_csv(&altruistic));
    csv.push_str("sweep=irrational\n");
    csv.push_str(&to_csv(&irrational));
    maybe_write_csv(&csv);
}
