//! `churn_smoke` — the churn scenario bench: steps/sec plus re-entry
//! reputation-persistence statistics, written as `BENCH_churn.json`.
//!
//! Two stages:
//!
//! 1. **End-to-end grid** — three churn regimes (background churn,
//!    whitewash-heavy, combined) expressed as [`ScenarioSpec`]s and run
//!    through the [`ScenarioRunner`] — the registry-driven path a custom
//!    scenario takes (no engine edits anywhere).
//! 2. **Instrumented runs** — every regime re-run through the shared
//!    [`collabsim_cli::runner`] core with a [`ChurnTimelineObserver`],
//!    producing the per-regime steps/sec figures (each baseline-gated in
//!    CI) and the persistence stats: mean sharing reputation observed at
//!    re-entry (above `R_min` ⇒ reputation survives absences) and mean
//!    reputation shed per whitewash (what the adversary pays).
//!
//! The regimes come from [`collabsim_cli::scenarios::churn_regimes`] — the
//! constructors behind the checked-in `scenarios/churn/` files, so
//! `collabsim grid scenarios/churn` runs the same cells out of process.
//!
//! Flags: `--quick` (reduced steps), `--out <path>` (default
//! `BENCH_churn.json`), `--baseline <path>` + `--max-regress <pct>`
//! (steps/sec gate, default 20 %).
//!
//! [`ScenarioSpec`]: collabsim::ScenarioSpec

use collabsim::experiment::ScenarioRunner;
use collabsim::observer::ChurnTimelineObserver;
use collabsim::pipeline::PhaseRegistry;
use collabsim::ScenarioSpec;
use collabsim_bench::{arg_value, extract_number, has_flag};
use collabsim_cli::runner::{gate_floor, run_spec_instrumented};
use collabsim_cli::scenarios::{churn_phases, churn_regimes};
use std::fmt::Write as _;

struct ChurnResult {
    label: String,
    total_steps: u64,
    steps_per_sec: f64,
    joins: u64,
    leaves: u64,
    whitewashes: u64,
    mean_reentry_reputation: f64,
    mean_whitewash_shed: f64,
    online_final: usize,
}

fn run_instrumented(spec: &ScenarioSpec) -> ChurnResult {
    let (outcome, sim) = run_spec_instrumented(spec, &PhaseRegistry::standard(), |sim| {
        sim.add_observer(ChurnTimelineObserver::new());
    })
    .expect("churn phase is registered");
    let stats = sim.world().churn_stats;
    let timeline: &ChurnTimelineObserver = sim.observer(0).expect("attached above");
    assert_eq!(timeline.timeline().len() as u64, outcome.total_steps);
    ChurnResult {
        label: outcome.label,
        total_steps: outcome.total_steps,
        steps_per_sec: outcome.steps_per_sec,
        joins: stats.joins,
        leaves: stats.leaves,
        whitewashes: stats.whitewashes,
        mean_reentry_reputation: stats.mean_reentry_reputation(),
        mean_whitewash_shed: stats.mean_whitewash_shed(),
        online_final: sim.world().peers.online().count(),
    }
}

fn render_json(results: &[ChurnResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"churn_smoke\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"total_steps\": {}, \"steps_per_sec\": {:.3}, \
             \"joins\": {}, \"leaves\": {}, \"whitewashes\": {}, \
             \"mean_reentry_reputation\": {:.6}, \"mean_whitewash_shed\": {:.6}, \
             \"online_final\": {}}}{sep}",
            r.label,
            r.total_steps,
            r.steps_per_sec,
            r.joins,
            r.leaves,
            r.whitewashes,
            r.mean_reentry_reputation,
            r.mean_whitewash_shed,
            r.online_final,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn check_baseline(results: &[ChurnResult], baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let mut ok = true;
    let mut checked = 0usize;
    for result in results {
        let Some(reference) = text
            .lines()
            .find(|line| line.contains(&format!("\"label\": \"{}\"", result.label)))
            .and_then(|line| extract_number(line, "steps_per_sec"))
        else {
            println!(
                "{}: no baseline entry (skipping the regression check)",
                result.label
            );
            continue;
        };
        checked += 1;
        ok &= gate_floor(
            &result.label,
            result.steps_per_sec,
            reference,
            max_regress_pct,
        );
    }
    if checked == 0 {
        eprintln!("baseline {baseline_path} matched no cells");
        return false;
    }
    ok
}

fn main() {
    let quick = has_flag("--quick");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_churn.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);

    println!(
        "collabsim — churn_smoke [scale: {}]",
        if quick { "quick" } else { "full" }
    );
    println!("(churn scenarios as ScenarioSpecs: registry-driven pipeline, zero engine edits)");
    println!();

    // Stage 1 — the whole regime family end to end through the runner.
    let specs = churn_regimes(churn_phases(quick));
    let reports = ScenarioRunner::default()
        .run_specs(specs.clone())
        .expect("churn phase is registered in the standard registry");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "regime", "articles", "bandwidth", "downloads"
    );
    for report in &reports {
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>12}",
            report.label,
            report.report.shared_articles,
            report.report.shared_bandwidth,
            report.report.completed_downloads
        );
    }
    println!();

    // Stage 2 — instrumented runs: steps/sec + persistence stats.
    let mut results = Vec::new();
    for spec in &specs {
        let result = run_instrumented(spec);
        println!(
            "{:<22} steps/sec={:>9.2}  joins={:<4} leaves={:<4} whitewashes={:<4} \
             reentry-R={:.4} shed-R={:.4} online={}",
            result.label,
            result.steps_per_sec,
            result.joins,
            result.leaves,
            result.whitewashes,
            result.mean_reentry_reputation,
            result.mean_whitewash_shed,
            result.online_final,
        );
        results.push(result);
    }

    let json = render_json(&results);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(&results, &baseline, max_regress) {
            eprintln!("steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
