//! ABL1 — reputation-function ablation.
//!
//! Section VI of the paper names the reputation function as the main lever
//! for how much is shared ("the reputation function has a great influence on
//! how much resources are shared. Thus, future work will investigate new and
//! existing reputation functions"). This ablation sweeps the logistic `β`
//! (growth speed) on an all-rational population and reports the resulting
//! sharing levels, realizing that future-work experiment.

use collabsim::experiment::ablation_reputation_beta;
use collabsim::results::{to_csv, to_table};
use collabsim_bench::{maybe_write_csv, print_header, Scale};
use collabsim_reputation::function::FIGURE1_BETAS;

fn main() {
    let scale = Scale::from_env_and_args();
    print_header("ABL1: reputation-function (logistic beta) ablation", scale);

    let results = ablation_reputation_beta(scale.base_config(), &FIGURE1_BETAS);

    println!(
        "{}",
        to_table("all-rational population, incentive on", &results)
    );
    println!(
        "interpretation: a steeper reputation function (larger beta) lets newcomers reach a high\n\
         bandwidth priority sooner; the paper conjectures this changes how much rational peers share."
    );

    maybe_write_csv(&to_csv(&results));
}
