//! `fault_grid` — the fault-injection bench: steps/sec plus fault-layer
//! accounting per regime × incentive scheme, written as `BENCH_faults.json`.
//!
//! Two stages:
//!
//! 1. **End-to-end grid** — the 12 fault cells (four link-model regimes:
//!    ideal, lossy-5 %, high-latency, partitioned clusters × the three
//!    incentive schemes) expressed as [`ScenarioSpec`]s and run through
//!    the [`ScenarioRunner`] — the registry-driven path a custom scenario
//!    takes (no engine edits anywhere).
//! 2. **Instrumented runs** — every cell re-run through the shared
//!    [`collabsim_cli::runner`] core, producing the per-cell steps/sec
//!    figures (each baseline-gated in CI) and the fault accounting
//!    ([`NetStats`]): grant bandwidth offered/applied/lost/delayed,
//!    permanent transfer failures, timeouts and re-routes.
//!
//! The headline table reports **incentive-scheme separation per fault
//! regime**: shared bandwidth under the paper's reputation scheme minus
//! the no-incentive baseline. The paper's claim holds when the separation
//! stays positive under every fault regime, not just on an ideal network.
//!
//! The cells come from [`collabsim_cli::scenarios::fault_cells`] — the
//! constructors behind the checked-in `scenarios/faults/` files, so
//! `collabsim grid scenarios/faults` runs the same cells out of process.
//!
//! Flags: `--quick` (reduced steps), `--out <path>` (default
//! `BENCH_faults.json`), `--baseline <path>` + `--max-regress <pct>`
//! (steps/sec gate, default 20 %).
//!
//! [`ScenarioSpec`]: collabsim::ScenarioSpec
//! [`NetStats`]: collabsim::NetStats

use collabsim::experiment::ScenarioRunner;
use collabsim::pipeline::PhaseRegistry;
use collabsim::{NetStats, ScenarioSpec};
use collabsim_bench::{arg_value, extract_number, has_flag};
use collabsim_cli::runner::{gate_floor, run_spec_instrumented};
use collabsim_cli::scenarios::{fault_cells, fault_phases, fault_regimes};
use std::fmt::Write as _;

struct FaultResult {
    label: String,
    total_steps: u64,
    steps_per_sec: f64,
    shared_bandwidth: f64,
    completed_downloads: usize,
    net: NetStats,
}

fn run_instrumented(spec: &ScenarioSpec) -> FaultResult {
    let (outcome, sim) = run_spec_instrumented(spec, &PhaseRegistry::standard(), |_| {})
        .expect("fault cells use only standard phases");
    FaultResult {
        label: outcome.label,
        total_steps: outcome.total_steps,
        steps_per_sec: outcome.steps_per_sec,
        shared_bandwidth: outcome.report.shared_bandwidth,
        completed_downloads: outcome.report.completed_downloads,
        net: sim.world().net_stats,
    }
}

fn render_json(results: &[FaultResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fault_grid\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"total_steps\": {}, \"steps_per_sec\": {:.3}, \
             \"shared_bandwidth\": {:.6}, \"completed_downloads\": {}, \
             \"grants_offered\": {:.3}, \"grants_applied\": {:.3}, \
             \"grants_lost\": {:.3}, \"grants_delayed\": {:.3}, \
             \"transfers_failed\": {}, \"transfers_timed_out\": {}, \
             \"transfers_rerouted\": {}}}{sep}",
            r.label,
            r.total_steps,
            r.steps_per_sec,
            r.shared_bandwidth,
            r.completed_downloads,
            r.net.grants_offered,
            r.net.grants_applied,
            r.net.grants_lost,
            r.net.grants_delayed,
            r.net.transfers_failed,
            r.net.transfers_timed_out,
            r.net.transfers_rerouted,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn check_baseline(results: &[FaultResult], baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let mut ok = true;
    let mut checked = 0usize;
    for result in results {
        let Some(reference) = text
            .lines()
            .find(|line| line.contains(&format!("\"label\": \"{}\"", result.label)))
            .and_then(|line| extract_number(line, "steps_per_sec"))
        else {
            println!(
                "{}: no baseline entry (skipping the regression check)",
                result.label
            );
            continue;
        };
        checked += 1;
        ok &= gate_floor(
            &result.label,
            result.steps_per_sec,
            reference,
            max_regress_pct,
        );
    }
    if checked == 0 {
        eprintln!("baseline {baseline_path} matched no cells");
        return false;
    }
    ok
}

fn main() {
    let quick = has_flag("--quick");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_faults.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);

    println!(
        "collabsim — fault_grid [scale: {}]",
        if quick { "quick" } else { "full" }
    );
    println!("(fault regimes as ScenarioSpecs: registry-driven pipeline, zero engine edits)");
    println!();

    // Stage 1 — the whole grid end to end through the runner.
    let specs = fault_cells(fault_phases(quick));
    let reports = ScenarioRunner::default()
        .run_specs(specs.clone())
        .expect("fault cells use only standard phases");
    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "cell", "articles", "bandwidth", "downloads"
    );
    for report in &reports {
        println!(
            "{:<28} {:>10.4} {:>10.4} {:>12}",
            report.label,
            report.report.shared_articles,
            report.report.shared_bandwidth,
            report.report.completed_downloads
        );
    }
    println!();

    // Stage 2 — instrumented runs: steps/sec + fault accounting.
    let mut results = Vec::new();
    for spec in &specs {
        let result = run_instrumented(spec);
        println!(
            "{:<28} steps/sec={:>9.2}  offered={:<9.1} applied={:<9.1} lost={:<8.1} \
             delayed={:<8.1} failed={:<3} timeouts={:<3} rerouted={}",
            result.label,
            result.steps_per_sec,
            result.net.grants_offered,
            result.net.grants_applied,
            result.net.grants_lost,
            result.net.grants_delayed,
            result.net.transfers_failed,
            result.net.transfers_timed_out,
            result.net.transfers_rerouted,
        );
        results.push(result);
    }

    // Headline — incentive-scheme separation per fault regime: shared
    // bandwidth under the reputation scheme minus the no-incentive
    // baseline. Positive everywhere ⇒ the scheme's differentiation
    // survives the fault regime.
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "regime", "none", "tit-for-tat", "reputation", "separation"
    );
    let by_label = |label: &str| -> &FaultResult {
        results
            .iter()
            .find(|r| r.label == label)
            .expect("all 12 cells ran")
    };
    for (regime, _) in fault_regimes() {
        let none = by_label(&format!("faults/{regime}/none")).shared_bandwidth;
        let tft = by_label(&format!("faults/{regime}/tit-for-tat")).shared_bandwidth;
        let reputation = by_label(&format!("faults/{regime}/reputation")).shared_bandwidth;
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            regime,
            none,
            tft,
            reputation,
            reputation - none
        );
    }

    let json = render_json(&results);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(&results, &baseline, max_regress) {
            eprintln!("steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
