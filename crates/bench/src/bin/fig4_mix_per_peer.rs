//! Figure 4 — shared articles and bandwidth **per peer** under varying
//! fractions of altruistic and irrational peers (10–90 %, remainder split
//! equally between the other two types). The paper finds a nearly linear
//! increase with altruists and decrease with irrational peers.

use collabsim::experiment::mix_sweep;
use collabsim::results::{to_csv, to_table};
use collabsim::BehaviorType;
use collabsim_bench::{maybe_write_csv, print_header, Scale};

fn main() {
    let scale = Scale::from_env_and_args();
    print_header("Figure 4: sharing per peer vs. behaviour mix", scale);

    let altruistic = mix_sweep(scale.base_config(), BehaviorType::Altruistic);
    let irrational = mix_sweep(scale.base_config(), BehaviorType::Irrational);

    println!(
        "{}",
        to_table(
            "varying altruistic share (whole population means)",
            &altruistic
        )
    );
    println!(
        "{}",
        to_table(
            "varying irrational share (whole population means)",
            &irrational
        )
    );
    println!(
        "paper reference: sharing rises ~linearly with the altruistic share and falls with the irrational share"
    );

    let mut csv = String::new();
    csv.push_str("sweep=altruistic\n");
    csv.push_str(&to_csv(&altruistic));
    csv.push_str("sweep=irrational\n");
    csv.push_str(&to_csv(&irrational));
    maybe_write_csv(&csv);
}
