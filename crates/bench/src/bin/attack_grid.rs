//! `attack_grid` — the adversary robustness grid, written as
//! `BENCH_attacks.json`.
//!
//! Sweeps the five built-in attack strategies across (a) the reputation
//! *source* feeding service differentiation — the globally visible ledger
//! vs each of the three propagation backends (EigenTrust, gossip, MaxFlow)
//! under `reputation_source = propagated` — all under the paper's
//! reputation scheme, and (b) the incentive-scheme axis (none,
//! tit-for-tat) under the ledger source. The cell specs come from
//! [`collabsim_cli::scenarios::attack_cells`] — the constructors behind
//! the checked-in `scenarios/attacks/` files — and every cell runs
//! through the shared [`collabsim_cli::runner`] core with an
//! [`AttackMetricsObserver`] attached, reporting:
//!
//! * **damage** — bandwidth the attackers extracted during measurement and
//!   destructive edits they got accepted,
//! * **retention** — mean sharing reputation the attackers held,
//! * **resets** — whitewashes performed and reputation shed per reset,
//! * **detection** — first step the punishment machinery revoked a right,
//!   plus vote/edit revocation counts.
//!
//! The headline comparison (the adversary-subsystem acceptance criterion)
//! pits `adaptive-whitewash` against `naive-whitewash` under the ledger
//! source: the adaptive variant must retain more reputation and dodge the
//! malicious-editor punishment at a comparable reset volume.
//!
//! Flags: `--quick` (reduced scale), `--out <path>` (default
//! `BENCH_attacks.json`), `--baseline <path>` + `--max-regress <pct>`
//! (aggregate steps/sec gate, default 20 %).

use collabsim::adversary::{AttackMetricsObserver, UnitAttackMetrics};
use collabsim::pipeline::PhaseRegistry;
use collabsim::{AttackStats, MemStore, RunStore, ScenarioSpec, Simulation};
use collabsim_bench::{arg_value, extract_number, has_flag};
use collabsim_cli::runner::{gate_floor, run_spec_instrumented};
use collabsim_cli::scenarios::{attack_cells, attack_scale, AttackCell, ATTACK_STRATEGIES};
use std::fmt::Write as _;
use std::time::Instant;

struct CellResult {
    label: String,
    strategy: &'static str,
    backend: &'static str,
    scheme: &'static str,
    total_steps: u64,
    steps_per_sec: f64,
    stats: AttackStats,
    metrics: UnitAttackMetrics,
}

fn run_cell(cell: &AttackCell) -> CellResult {
    let (outcome, sim) = run_spec_instrumented(&cell.spec, &PhaseRegistry::standard(), |sim| {
        sim.add_observer(AttackMetricsObserver::new());
    })
    .expect("attack strategies are registered");
    let stats = *sim.world().adversaries.units()[0].stats();
    let observer: &AttackMetricsObserver = sim.observer(0).expect("attached above");
    let metrics = observer.metrics()[0].clone();
    CellResult {
        label: outcome.label,
        strategy: cell.strategy,
        backend: cell.source.label(),
        scheme: cell.scheme.label(),
        total_steps: outcome.total_steps,
        steps_per_sec: outcome.steps_per_sec,
        stats,
        metrics,
    }
}

/// Measured outcome of the warm-start fork experiment: the shared
/// equilibration checkpoint vs re-equilibrating every strategy cell.
struct WarmStartReport {
    cells: usize,
    equilibration_seconds: f64,
    warm_seconds: f64,
    cold_seconds: f64,
    identical: bool,
}

impl WarmStartReport {
    /// Wall-clock the shared checkpoint saved over per-cell equilibration.
    fn wall_seconds_saved(&self) -> f64 {
        self.cold_seconds - (self.equilibration_seconds + self.warm_seconds)
    }
}

/// Equilibrates the adversary-free base population once, forks every
/// ledger-source strategy cell from the shared checkpoint (routed through
/// a [`MemStore`], so the fork pays the full encode/decode round-trip a
/// grid coordinator would), and cross-checks each warm report against a
/// cold run that re-equilibrates from scratch — the two must be
/// byte-identical, and the difference in wall-clock is the saving the
/// shared checkpoint buys.
fn warm_start_experiment(cells: &[AttackCell]) -> WarmStartReport {
    let strategy_cells: Vec<&AttackCell> = cells
        .iter()
        .filter(|c| c.source.label() == "ledger" && c.scheme.label() == "reputation")
        .collect();
    let mut base_config = strategy_cells[0].spec.config().clone();
    base_config.adversaries.clear();
    let base = ScenarioSpec::from_config(base_config).expect("base config is valid");

    let equilibrating = Instant::now();
    let mut base_sim = Simulation::from_spec(&base).expect("base spec resolves");
    base_sim.run_training();
    let checkpoint = base_sim.snapshot(&base);
    let equilibration_seconds = equilibrating.elapsed().as_secs_f64();

    let mut store = MemStore::new();
    let warming = Instant::now();
    let mut warm_reports = Vec::new();
    for cell in &strategy_cells {
        let fork = checkpoint.with_spec(&cell.spec);
        let key = store.put(&fork).expect("mem store accepts the fork");
        let fetched = store.get(&key).expect("stored fork reads back");
        let mut sim = Simulation::resume_from(&fetched).expect("fork resumes");
        warm_reports.push(format!("{:?}", sim.finish()));
    }
    let warm_seconds = warming.elapsed().as_secs_f64();

    let chilling = Instant::now();
    let mut identical = true;
    for (cell, warm) in strategy_cells.iter().zip(&warm_reports) {
        let mut fresh = Simulation::from_spec(&base).expect("base spec resolves");
        fresh.run_training();
        let fork = fresh.snapshot(&base).with_spec(&cell.spec);
        let mut sim = Simulation::resume_from(&fork).expect("fork resumes");
        let cold = format!("{:?}", sim.finish());
        if &cold != warm {
            identical = false;
            eprintln!(
                "warm-start mismatch for `{}`:\n  warm: {warm}\n  cold: {cold}",
                cell.spec.label()
            );
        }
    }
    let cold_seconds = chilling.elapsed().as_secs_f64();

    WarmStartReport {
        cells: strategy_cells.len(),
        equilibration_seconds,
        warm_seconds,
        cold_seconds,
        identical,
    }
}

fn render_json(results: &[CellResult], warm: &WarmStartReport, total_steps_per_sec: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"attack_grid\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"strategy\": \"{}\", \"backend\": \"{}\", \
             \"scheme\": \"{}\", \"total_steps\": {}, \"steps_per_sec\": {:.3}, \
             \"damage_bandwidth\": {:.3}, \"destructive_accepted\": {}, \
             \"mean_reputation_retained\": {:.6}, \"resets\": {}, \
             \"shed_per_reset\": {:.6}, \"vote_revocations\": {}, \
             \"edit_revocations\": {}, \"first_detection_step\": {}}}{sep}",
            r.label,
            r.strategy,
            r.backend,
            r.scheme,
            r.total_steps,
            r.steps_per_sec,
            r.metrics.damage_bandwidth,
            r.metrics.destructive_accepted,
            r.metrics.mean_reputation_retained(),
            r.stats.resets,
            r.stats.shed_per_reset(),
            r.metrics.vote_revocations,
            r.metrics.edit_revocations,
            r.metrics
                .first_detection
                .map_or("null".to_string(), |s| s.to_string()),
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"warm_start\": {{\"cells\": {}, \"equilibration_seconds\": {:.3}, \
         \"warm_seconds\": {:.3}, \"cold_seconds\": {:.3}, \"wall_seconds_saved\": {:.3}, \
         \"identical\": {}}},",
        warm.cells,
        warm.equilibration_seconds,
        warm.warm_seconds,
        warm.cold_seconds,
        warm.wall_seconds_saved(),
        warm.identical
    );
    let _ = writeln!(
        out,
        "  \"total_steps_per_sec\": {total_steps_per_sec:.3}\n}}"
    );
    out
}

fn check_baseline(total_steps_per_sec: f64, baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(reference) = text
        .lines()
        .find_map(|line| extract_number(line, "total_steps_per_sec"))
    else {
        eprintln!("baseline {baseline_path} has no total_steps_per_sec entry");
        return false;
    };
    gate_floor("aggregate", total_steps_per_sec, reference, max_regress_pct)
}

fn main() {
    let quick = has_flag("--quick");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_attacks.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let scale = attack_scale(quick);

    println!(
        "collabsim — attack_grid [scale: {}]",
        if quick { "quick" } else { "full" }
    );
    println!(
        "(strategy × reputation-source × incentive robustness grid, {} peers, {} attackers/cell)",
        scale.population, scale.adversaries
    );
    println!();

    let cells = attack_cells(&scale);
    let mut results = Vec::new();
    let mut total_steps = 0u64;
    let grid_started = Instant::now();
    for cell in &cells {
        let result = run_cell(cell);
        total_steps += result.total_steps;
        results.push(result);
    }
    let total_steps_per_sec = total_steps as f64 / grid_started.elapsed().as_secs_f64();

    println!(
        "{:<46} {:>9} {:>8} {:>9} {:>6} {:>9} {:>8}",
        "cell", "damage", "dstr-acc", "retained", "resets", "shed/rst", "detect"
    );
    for r in &results {
        println!(
            "{:<46} {:>9.1} {:>8} {:>9.4} {:>6} {:>9.4} {:>8}",
            r.label,
            r.metrics.damage_bandwidth,
            r.metrics.destructive_accepted,
            r.metrics.mean_reputation_retained(),
            r.stats.resets,
            r.stats.shed_per_reset(),
            r.metrics
                .first_detection
                .map_or("never".to_string(), |s| format!("@{s}")),
        );
    }
    println!();

    // Headline: adaptive vs naive whitewashing under the ledger source.
    let find = |strategy: &str, backend: &str, scheme: &str| {
        results
            .iter()
            .find(|r| r.strategy == strategy && r.backend == backend && r.scheme == scheme)
            .expect("grid covers the headline cells")
    };
    let adaptive = find("adaptive-whitewash", "ledger", "reputation");
    let naive = find("naive-whitewash", "ledger", "reputation");
    println!(
        "headline: adaptive-whitewash retains {:.4} over {} resets ({} edit revocations) vs \
         naive {:.4} over {} resets ({} edit revocations)",
        adaptive.metrics.mean_reputation_retained(),
        adaptive.stats.resets,
        adaptive.metrics.edit_revocations,
        naive.metrics.mean_reputation_retained(),
        naive.stats.resets,
        naive.metrics.edit_revocations,
    );
    let beats = adaptive.metrics.mean_reputation_retained()
        > naive.metrics.mean_reputation_retained()
        && adaptive.metrics.edit_revocations < naive.metrics.edit_revocations;
    println!(
        "          adaptive timing {} naive stochastic whitewashing",
        if beats { "beats" } else { "DOES NOT BEAT" }
    );

    // Robustness ranking: which reputation source limited attacker damage
    // most, per strategy (lower damage + lower retention = more robust).
    println!();
    println!("robustness (reputation scheme): per-strategy damage by source");
    for &(strategy, _) in &ATTACK_STRATEGIES {
        let mut row = format!("  {strategy:<24}");
        for cell in results
            .iter()
            .filter(|r| r.strategy == strategy && r.scheme == "reputation")
        {
            let _ = write!(
                row,
                " {}={:.0}",
                cell.backend, cell.metrics.damage_bandwidth
            );
        }
        println!("{row}");
    }

    // Warm-start fork experiment: equilibrate the base population once,
    // fork every ledger-source strategy cell from the shared checkpoint,
    // and report the wall-clock the checkpoint saved over cold runs.
    println!();
    let warm = warm_start_experiment(&cells);
    println!(
        "warm start: equilibrated the base population once in {:.2}s; {} strategy cells \
         forked warm in {:.2}s",
        warm.equilibration_seconds, warm.cells, warm.warm_seconds
    );
    println!(
        "            cold runs (per-cell equilibration) took {:.2}s — {:.2}s wall-clock saved",
        warm.cold_seconds,
        warm.wall_seconds_saved()
    );
    println!(
        "            warm ≡ cold: cell reports {}",
        if warm.identical {
            "byte-identical"
        } else {
            "DIFFER"
        }
    );

    let json = render_json(&results, &warm, total_steps_per_sec);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if !beats {
        eprintln!("acceptance violated: adaptive-whitewash must beat naive-whitewash");
        std::process::exit(1);
    }
    if !warm.identical {
        eprintln!("acceptance violated: warm-started cells must match cold runs byte for byte");
        std::process::exit(1);
    }
    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(total_steps_per_sec, &baseline, max_regress) {
            eprintln!("steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
