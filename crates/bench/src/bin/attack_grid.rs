//! `attack_grid` — the adversary robustness grid, written as
//! `BENCH_attacks.json`.
//!
//! Sweeps the five built-in attack strategies across (a) the reputation
//! *source* feeding service differentiation — the globally visible ledger
//! vs each of the three propagation backends (EigenTrust, gossip, MaxFlow)
//! under `reputation_source = propagated` — all under the paper's
//! reputation scheme, and (b) the incentive-scheme axis (none,
//! tit-for-tat) under the ledger source. Every cell is one
//! [`Simulation`] with an [`AttackMetricsObserver`] attached, reporting:
//!
//! * **damage** — bandwidth the attackers extracted during measurement and
//!   destructive edits they got accepted,
//! * **retention** — mean sharing reputation the attackers held,
//! * **resets** — whitewashes performed and reputation shed per reset,
//! * **detection** — first step the punishment machinery revoked a right,
//!   plus vote/edit revocation counts.
//!
//! The headline comparison (the adversary-subsystem acceptance criterion)
//! pits `adaptive-whitewash` against `naive-whitewash` under the ledger
//! source: the adaptive variant must retain more reputation and dodge the
//! malicious-editor punishment at a comparable reset volume.
//!
//! Flags: `--quick` (reduced scale), `--out <path>` (default
//! `BENCH_attacks.json`), `--baseline <path>` + `--max-regress <pct>`
//! (aggregate steps/sec gate, default 20 %).

use collabsim::adversary::{AdversarySpec, AttackMetricsObserver, UnitAttackMetrics};
use collabsim::config::PhaseConfig;
use collabsim::{AttackStats, BehaviorMix, IncentiveScheme, ScenarioSpec, Simulation};
use collabsim_bench::{arg_value, extract_number, has_flag};
use collabsim_reputation::propagation::PropagationScheme;
use std::fmt::Write as _;
use std::time::Instant;

/// The strategy axis of the grid: `(name, parameter)`.
const STRATEGIES: [(&str, f64); 5] = [
    ("adaptive-whitewash", 0.0),
    ("naive-whitewash", 0.02),
    ("collusion-ring", 0.0),
    ("oscillating-freerider", 0.0),
    ("sybil-slander", 0.0),
];

/// One reputation-source arm: the ledger, or a propagated backend.
#[derive(Clone, Copy, PartialEq)]
enum Source {
    Ledger,
    Propagated(PropagationScheme),
}

impl Source {
    const ALL: [Source; 4] = [
        Source::Ledger,
        Source::Propagated(PropagationScheme::EigenTrust),
        Source::Propagated(PropagationScheme::Gossip),
        Source::Propagated(PropagationScheme::MaxFlow),
    ];

    fn label(self) -> &'static str {
        match self {
            Source::Ledger => "ledger",
            Source::Propagated(scheme) => scheme.label(),
        }
    }
}

struct CellResult {
    label: String,
    strategy: &'static str,
    backend: &'static str,
    scheme: &'static str,
    total_steps: u64,
    steps_per_sec: f64,
    stats: AttackStats,
    metrics: UnitAttackMetrics,
}

struct GridScale {
    population: usize,
    adversaries: usize,
    phases: PhaseConfig,
    interval: u64,
}

fn grid_scale(quick: bool) -> GridScale {
    if quick {
        GridScale {
            population: 36,
            adversaries: 4,
            phases: PhaseConfig {
                training_steps: 400,
                evaluation_steps: 200,
                ..Default::default()
            },
            interval: 25,
        }
    } else {
        GridScale {
            population: 50,
            adversaries: 5,
            phases: PhaseConfig {
                training_steps: 900,
                evaluation_steps: 600,
                ..Default::default()
            },
            interval: 50,
        }
    }
}

fn cell_spec(
    scale: &GridScale,
    strategy: (&'static str, f64),
    source: Source,
    scheme: IncentiveScheme,
) -> ScenarioSpec {
    let label = format!("{}/{}/{}", strategy.0, source.label(), scheme.label());
    let mut builder = ScenarioSpec::builder()
        .label(label)
        .population(scale.population)
        .initial_articles(scale.population / 2)
        .mix(BehaviorMix::new(0.5, 0.3, 0.2))
        .incentive(scheme)
        .phase_config(scale.phases)
        .seed(0xA77AC)
        .adversary(AdversarySpec::new(strategy.0, scale.adversaries).with_parameter(strategy.1));
    if let Source::Propagated(propagation) = source {
        builder = builder
            .propagation(propagation, scale.interval)
            .propagated_reputation();
    }
    builder.build().expect("attack grid specs are valid")
}

fn run_cell(spec: &ScenarioSpec, strategy: &'static str, source: Source) -> CellResult {
    let total_steps = spec.config().phases.total_steps();
    let mut sim = Simulation::from_spec(spec).expect("attack strategies are registered");
    sim.add_observer(AttackMetricsObserver::new());
    let running = Instant::now();
    sim.run();
    let seconds = running.elapsed().as_secs_f64();
    let stats = *sim.world().adversaries.units()[0].stats();
    let observer: &AttackMetricsObserver = sim.observer(0).expect("attached above");
    let metrics = observer.metrics()[0].clone();
    CellResult {
        label: spec.label().to_string(),
        strategy,
        backend: source.label(),
        scheme: spec.config().incentive.label(),
        total_steps,
        steps_per_sec: total_steps as f64 / seconds,
        stats,
        metrics,
    }
}

fn render_json(results: &[CellResult], total_steps_per_sec: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"attack_grid\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"strategy\": \"{}\", \"backend\": \"{}\", \
             \"scheme\": \"{}\", \"total_steps\": {}, \"steps_per_sec\": {:.3}, \
             \"damage_bandwidth\": {:.3}, \"destructive_accepted\": {}, \
             \"mean_reputation_retained\": {:.6}, \"resets\": {}, \
             \"shed_per_reset\": {:.6}, \"vote_revocations\": {}, \
             \"edit_revocations\": {}, \"first_detection_step\": {}}}{sep}",
            r.label,
            r.strategy,
            r.backend,
            r.scheme,
            r.total_steps,
            r.steps_per_sec,
            r.metrics.damage_bandwidth,
            r.metrics.destructive_accepted,
            r.metrics.mean_reputation_retained(),
            r.stats.resets,
            r.stats.shed_per_reset(),
            r.metrics.vote_revocations,
            r.metrics.edit_revocations,
            r.metrics
                .first_detection
                .map_or("null".to_string(), |s| s.to_string()),
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"total_steps_per_sec\": {total_steps_per_sec:.3}\n}}"
    );
    out
}

fn check_baseline(total_steps_per_sec: f64, baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(reference) = text
        .lines()
        .find_map(|line| extract_number(line, "total_steps_per_sec"))
    else {
        eprintln!("baseline {baseline_path} has no total_steps_per_sec entry");
        return false;
    };
    let floor = reference * (1.0 - max_regress_pct / 100.0);
    let ok = total_steps_per_sec >= floor;
    println!(
        "aggregate: {:.2} steps/sec vs baseline {:.2} (floor {:.2}) — {}",
        total_steps_per_sec,
        reference,
        floor,
        if ok { "ok" } else { "REGRESSION" }
    );
    ok
}

fn main() {
    let quick = has_flag("--quick");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_attacks.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let scale = grid_scale(quick);

    println!(
        "collabsim — attack_grid [scale: {}]",
        if quick { "quick" } else { "full" }
    );
    println!(
        "(strategy × reputation-source × incentive robustness grid, {} peers, {} attackers/cell)",
        scale.population, scale.adversaries
    );
    println!();

    let mut results = Vec::new();
    let mut total_steps = 0u64;
    let grid_started = Instant::now();

    // Arm (a): every strategy × every reputation source, paper scheme.
    for &strategy in &STRATEGIES {
        for &source in &Source::ALL {
            let spec = cell_spec(&scale, strategy, source, IncentiveScheme::ReputationBased);
            let result = run_cell(&spec, strategy.0, source);
            total_steps += result.total_steps;
            results.push(result);
        }
    }
    // Arm (b): every strategy × the non-reputation schemes, ledger source.
    for &strategy in &STRATEGIES {
        for scheme in [IncentiveScheme::None, IncentiveScheme::TitForTat] {
            let spec = cell_spec(&scale, strategy, Source::Ledger, scheme);
            let result = run_cell(&spec, strategy.0, Source::Ledger);
            total_steps += result.total_steps;
            results.push(result);
        }
    }
    let total_steps_per_sec = total_steps as f64 / grid_started.elapsed().as_secs_f64();

    println!(
        "{:<46} {:>9} {:>8} {:>9} {:>6} {:>9} {:>8}",
        "cell", "damage", "dstr-acc", "retained", "resets", "shed/rst", "detect"
    );
    for r in &results {
        println!(
            "{:<46} {:>9.1} {:>8} {:>9.4} {:>6} {:>9.4} {:>8}",
            r.label,
            r.metrics.damage_bandwidth,
            r.metrics.destructive_accepted,
            r.metrics.mean_reputation_retained(),
            r.stats.resets,
            r.stats.shed_per_reset(),
            r.metrics
                .first_detection
                .map_or("never".to_string(), |s| format!("@{s}")),
        );
    }
    println!();

    // Headline: adaptive vs naive whitewashing under the ledger source.
    let find = |strategy: &str, backend: &str, scheme: &str| {
        results
            .iter()
            .find(|r| r.strategy == strategy && r.backend == backend && r.scheme == scheme)
            .expect("grid covers the headline cells")
    };
    let adaptive = find("adaptive-whitewash", "ledger", "reputation");
    let naive = find("naive-whitewash", "ledger", "reputation");
    println!(
        "headline: adaptive-whitewash retains {:.4} over {} resets ({} edit revocations) vs \
         naive {:.4} over {} resets ({} edit revocations)",
        adaptive.metrics.mean_reputation_retained(),
        adaptive.stats.resets,
        adaptive.metrics.edit_revocations,
        naive.metrics.mean_reputation_retained(),
        naive.stats.resets,
        naive.metrics.edit_revocations,
    );
    let beats = adaptive.metrics.mean_reputation_retained()
        > naive.metrics.mean_reputation_retained()
        && adaptive.metrics.edit_revocations < naive.metrics.edit_revocations;
    println!(
        "          adaptive timing {} naive stochastic whitewashing",
        if beats { "beats" } else { "DOES NOT BEAT" }
    );

    // Robustness ranking: which reputation source limited attacker damage
    // most, per strategy (lower damage + lower retention = more robust).
    println!();
    println!("robustness (reputation scheme): per-strategy damage by source");
    for &(strategy, _) in &STRATEGIES {
        let mut row = format!("  {strategy:<24}");
        for &source in &Source::ALL {
            let cell = find(strategy, source.label(), "reputation");
            let _ = write!(
                row,
                " {}={:.0}",
                source.label(),
                cell.metrics.damage_bandwidth
            );
        }
        println!("{row}");
    }

    let json = render_json(&results, total_steps_per_sec);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if !beats {
        eprintln!("acceptance violated: adaptive-whitewash must beat naive-whitewash");
        std::process::exit(1);
    }
    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(total_steps_per_sec, &baseline, max_regress) {
            eprintln!("steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
