//! `paper_grid` — the paper-configuration benchmark.
//!
//! Measures the engine on the paper's own headline workload, in two parts:
//!
//! 1. **The paper cell** — 100 peers × 12 000 steps (10 000 training +
//!    2 000 evaluation) at the default download rate of one attempted
//!    download per peer per step, i.e. the download/bandwidth-competition-
//!    dominated configuration. Runs single-cell through the shared
//!    [`collabsim_cli::runner`] core with per-phase
//!    [`PhaseTimings`](collabsim::pipeline::PhaseTimings) enabled; its
//!    steps/sec is the CI-gated number.
//! 2. **The 18-cell grid** — the Section IV-B mix sweeps behind Figures 4
//!    and 5 (9 altruistic-share points + 9 irrational-share points),
//!    executed through the parallel [`ScenarioRunner`]; reported as grid
//!    cells/sec and aggregate steps/sec.
//!
//! The cell specs come from [`collabsim_cli::scenarios`] — the same
//! constructors behind the checked-in `scenarios/paper/` files, so
//! `collabsim grid scenarios/paper/mix` runs exactly this grid out of
//! process.
//!
//! Flags:
//!
//! * `--quick` — shorten both parts for smoke runs,
//! * `--paper-grid-steps` — run the grid cells at the full 12 000-step
//!   paper length too (default: shortened grid so the binary stays
//!   CI-sized; the gated paper cell is always full length),
//! * `--out <path>` — output path (default `BENCH_paper.json`),
//! * `--baseline <path>` — compare the paper cell's steps/sec against a
//!   previously written report and exit non-zero on a regression,
//! * `--max-regress <pct>` — tolerated steps/sec drop (default 20 %).
//!
//! The CI `perf` job gates against the checked-in baseline in
//! `crates/bench/baselines/paper_baseline.json` and uploads the fresh
//! `BENCH_paper.json` as a build artifact.

use collabsim::experiment::ScenarioRunner;
use collabsim::pipeline::PhaseRegistry;
use collabsim_bench::{arg_value, extract_number, has_flag};
use collabsim_cli::runner::{gate_floor, run_spec_instrumented};
use collabsim_cli::scenarios::{
    paper_cell_phases, paper_cell_spec, paper_mix_cells, paper_mix_phases,
};
use std::fmt::Write as _;
use std::time::Instant;

struct PaperCellResult {
    population: usize,
    total_steps: u64,
    build_seconds: f64,
    steps_per_sec: f64,
    completed_downloads: usize,
    transfer_slots: usize,
    phases: Vec<(String, f64)>,
}

struct GridResult {
    cells: usize,
    steps_per_cell: u64,
    seconds: f64,
    cells_per_sec: f64,
    aggregate_steps_per_sec: f64,
}

fn run_paper_cell(quick: bool) -> PaperCellResult {
    let spec = paper_cell_spec(paper_cell_phases(quick));
    let (outcome, sim) = run_spec_instrumented(&spec, &PhaseRegistry::standard(), |_| {})
        .expect("paper cell resolves against the standard registry");
    let phases = sim
        .phase_timings()
        .totals()
        .iter()
        .map(|(name, duration, _)| ((*name).to_string(), duration.as_secs_f64()))
        .collect();
    PaperCellResult {
        population: spec.config().population,
        total_steps: outcome.total_steps,
        build_seconds: outcome.build_seconds,
        steps_per_sec: outcome.steps_per_sec,
        completed_downloads: outcome.report.completed_downloads,
        transfer_slots: sim.world().transfers.slot_count(),
        phases,
    }
}

fn run_grid(quick: bool, full_grid_steps: bool) -> GridResult {
    let phases = paper_mix_phases(quick, full_grid_steps);
    let steps_per_cell = phases.total_steps();
    let cells = paper_mix_cells(phases);
    let cell_count = cells.len();
    let running = Instant::now();
    let reports = ScenarioRunner::default()
        .run_specs(cells)
        .expect("grid specs use registered phases");
    let seconds = running.elapsed().as_secs_f64();
    assert_eq!(reports.len(), cell_count, "one report per grid cell");
    GridResult {
        cells: cell_count,
        steps_per_cell,
        seconds,
        cells_per_sec: cell_count as f64 / seconds,
        aggregate_steps_per_sec: (cell_count as u64 * steps_per_cell) as f64 / seconds,
    }
}

fn render_json(cell: &PaperCellResult, grid: &GridResult) -> String {
    let mut phases = String::new();
    for (j, (name, seconds)) in cell.phases.iter().enumerate() {
        let sep = if j + 1 < cell.phases.len() { ", " } else { "" };
        let _ = write!(phases, "\"{name}\": {seconds:.4}{sep}");
    }
    let mut out = String::from("{\n  \"bench\": \"paper_grid\",\n");
    let _ = writeln!(
        out,
        "  \"paper_cell\": {{\"peers\": {}, \"total_steps\": {}, \"build_seconds\": {:.4}, \
         \"steps_per_sec\": {:.3}, \"completed_downloads\": {}, \"transfer_slots\": {}, \
         \"phases\": {{{phases}}}}},",
        cell.population,
        cell.total_steps,
        cell.build_seconds,
        cell.steps_per_sec,
        cell.completed_downloads,
        cell.transfer_slots,
    );
    let _ = writeln!(
        out,
        "  \"grid\": {{\"cells\": {}, \"steps_per_cell\": {}, \"seconds\": {:.3}, \
         \"cells_per_sec\": {:.3}, \"aggregate_steps_per_sec\": {:.3}}}",
        grid.cells,
        grid.steps_per_cell,
        grid.seconds,
        grid.cells_per_sec,
        grid.aggregate_steps_per_sec,
    );
    out.push_str("}\n");
    out
}

/// The baseline's paper-cell steps/sec: read from the `paper_cell` line of
/// a previously written report.
fn parse_baseline(text: &str) -> Option<f64> {
    text.lines()
        .find(|line| line.contains("\"paper_cell\""))
        .and_then(|line| extract_number(line, "steps_per_sec"))
}

fn check_baseline(cell: &PaperCellResult, baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(reference) = parse_baseline(&text) else {
        eprintln!("baseline {baseline_path} has no paper_cell steps_per_sec");
        return false;
    };
    gate_floor("paper cell", cell.steps_per_sec, reference, max_regress_pct)
}

fn main() {
    let quick = has_flag("--quick");
    let full_grid_steps = has_flag("--paper-grid-steps");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_paper.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);

    println!(
        "collabsim — paper_grid [{}]",
        if quick { "quick" } else { "paper scale" }
    );
    println!("(--quick for a smoke run, --baseline <path> to gate on a previous run)");
    println!();

    let cell = run_paper_cell(quick);
    println!(
        "paper cell: peers={}  steps={}  build={:.3}s  steps/sec={:.2}  downloads={}  transfer_slots={}",
        cell.population,
        cell.total_steps,
        cell.build_seconds,
        cell.steps_per_sec,
        cell.completed_downloads,
        cell.transfer_slots,
    );
    for (name, seconds) in &cell.phases {
        println!("    {name:<12} {seconds:>8.3}s");
    }

    let grid = run_grid(quick, full_grid_steps);
    println!(
        "mix grid:   cells={}  steps/cell={}  wall={:.2}s  cells/sec={:.2}  aggregate steps/sec={:.2}",
        grid.cells, grid.steps_per_cell, grid.seconds, grid.cells_per_sec, grid.aggregate_steps_per_sec,
    );

    let json = render_json(&cell, &grid);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(&cell, &baseline, max_regress) {
            eprintln!("paper-cell steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
