//! `paper_grid` — the paper-configuration benchmark.
//!
//! Measures the engine on the paper's own headline workload, in two parts:
//!
//! 1. **The paper cell** — 100 peers × 12 000 steps (10 000 training +
//!    2 000 evaluation) at the default download rate of one attempted
//!    download per peer per step, i.e. the download/bandwidth-competition-
//!    dominated configuration. Runs single-cell with per-phase
//!    [`PhaseTimings`](collabsim::pipeline::PhaseTimings) enabled; its
//!    steps/sec is the CI-gated number.
//! 2. **The 18-cell grid** — the Section IV-B mix sweeps behind Figures 4
//!    and 5 (9 altruistic-share points + 9 irrational-share points),
//!    executed through the parallel [`ScenarioRunner`]; reported as grid
//!    cells/sec and aggregate steps/sec.
//!
//! Flags:
//!
//! * `--quick` — shorten both parts for smoke runs,
//! * `--paper-grid-steps` — run the grid cells at the full 12 000-step
//!   paper length too (default: shortened grid so the binary stays
//!   CI-sized; the gated paper cell is always full length),
//! * `--out <path>` — output path (default `BENCH_paper.json`),
//! * `--baseline <path>` — compare the paper cell's steps/sec against a
//!   previously written report and exit non-zero on a regression,
//! * `--max-regress <pct>` — tolerated steps/sec drop (default 20 %).
//!
//! The CI `perf` job gates against the checked-in baseline in
//! `crates/bench/baselines/paper_baseline.json` and uploads the fresh
//! `BENCH_paper.json` as a build artifact.

use collabsim::config::PhaseConfig;
use collabsim::experiment::{ScenarioRunner, MIX_SWEEP_PERCENTAGES};
use collabsim::{BehaviorMix, BehaviorType, ScenarioSpec, Simulation, SimulationConfig};
use collabsim_bench::{arg_value, extract_number, has_flag};
use std::fmt::Write as _;
use std::time::Instant;

struct PaperCellResult {
    population: usize,
    total_steps: u64,
    build_seconds: f64,
    steps_per_sec: f64,
    completed_downloads: usize,
    transfer_slots: usize,
    phases: Vec<(String, f64)>,
}

struct GridResult {
    cells: usize,
    steps_per_cell: u64,
    seconds: f64,
    cells_per_sec: f64,
    aggregate_steps_per_sec: f64,
}

/// The gated workload: the paper's default configuration, full length.
fn paper_cell_config(quick: bool) -> SimulationConfig {
    let mut config = SimulationConfig::default();
    if quick {
        config.phases = PhaseConfig {
            training_steps: 1_000,
            evaluation_steps: 500,
            ..Default::default()
        };
    }
    config
}

fn run_paper_cell(config: SimulationConfig) -> PaperCellResult {
    let population = config.population;
    let total_steps = config.phases.total_steps();
    let spec = ScenarioSpec::from_config(config)
        .expect("paper cell config is valid")
        .with_label("paper-cell");
    let building = Instant::now();
    let mut sim = Simulation::from_spec(&spec).expect("standard phases resolve");
    let build_seconds = building.elapsed().as_secs_f64();
    sim.enable_phase_timings();
    let running = Instant::now();
    let report = sim.run();
    let run_seconds = running.elapsed().as_secs_f64();
    let phases = sim
        .phase_timings()
        .totals()
        .iter()
        .map(|(name, duration, _)| ((*name).to_string(), duration.as_secs_f64()))
        .collect();
    PaperCellResult {
        population,
        total_steps,
        build_seconds,
        steps_per_sec: total_steps as f64 / run_seconds,
        completed_downloads: report.completed_downloads,
        transfer_slots: sim.world().transfers.slot_count(),
        phases,
    }
}

/// The Section IV-B mix grid: 9 altruistic-share + 9 irrational-share
/// cells over the paper configuration, as labelled specs.
fn mix_grid_cells(base: &SimulationConfig) -> Vec<ScenarioSpec> {
    let mut cells = Vec::new();
    for primary in [BehaviorType::Altruistic, BehaviorType::Irrational] {
        for &pct in &MIX_SWEEP_PERCENTAGES {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(primary, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct)));
            let spec = ScenarioSpec::from_config(config)
                .expect("mix grid configs are valid")
                .with_label(format!("{}={}%", primary.label(), pct))
                .with_parameter(f64::from(pct));
            cells.push(spec);
        }
    }
    cells
}

fn run_grid(quick: bool, full_grid_steps: bool) -> GridResult {
    let phases = if full_grid_steps {
        PhaseConfig::default()
    } else if quick {
        PhaseConfig {
            training_steps: 150,
            evaluation_steps: 100,
            ..Default::default()
        }
    } else {
        PhaseConfig {
            training_steps: 600,
            evaluation_steps: 300,
            ..Default::default()
        }
    };
    let base = SimulationConfig {
        phases,
        ..Default::default()
    };
    let steps_per_cell = base.phases.total_steps();
    let cells = mix_grid_cells(&base);
    let cell_count = cells.len();
    let running = Instant::now();
    let reports = ScenarioRunner::default()
        .run_specs(cells)
        .expect("grid specs use registered phases");
    let seconds = running.elapsed().as_secs_f64();
    assert_eq!(reports.len(), cell_count, "one report per grid cell");
    GridResult {
        cells: cell_count,
        steps_per_cell,
        seconds,
        cells_per_sec: cell_count as f64 / seconds,
        aggregate_steps_per_sec: (cell_count as u64 * steps_per_cell) as f64 / seconds,
    }
}

fn render_json(cell: &PaperCellResult, grid: &GridResult) -> String {
    let mut phases = String::new();
    for (j, (name, seconds)) in cell.phases.iter().enumerate() {
        let sep = if j + 1 < cell.phases.len() { ", " } else { "" };
        let _ = write!(phases, "\"{name}\": {seconds:.4}{sep}");
    }
    let mut out = String::from("{\n  \"bench\": \"paper_grid\",\n");
    let _ = writeln!(
        out,
        "  \"paper_cell\": {{\"peers\": {}, \"total_steps\": {}, \"build_seconds\": {:.4}, \
         \"steps_per_sec\": {:.3}, \"completed_downloads\": {}, \"transfer_slots\": {}, \
         \"phases\": {{{phases}}}}},",
        cell.population,
        cell.total_steps,
        cell.build_seconds,
        cell.steps_per_sec,
        cell.completed_downloads,
        cell.transfer_slots,
    );
    let _ = writeln!(
        out,
        "  \"grid\": {{\"cells\": {}, \"steps_per_cell\": {}, \"seconds\": {:.3}, \
         \"cells_per_sec\": {:.3}, \"aggregate_steps_per_sec\": {:.3}}}",
        grid.cells,
        grid.steps_per_cell,
        grid.seconds,
        grid.cells_per_sec,
        grid.aggregate_steps_per_sec,
    );
    out.push_str("}\n");
    out
}

/// The baseline's paper-cell steps/sec: read from the `paper_cell` line of
/// a previously written report.
fn parse_baseline(text: &str) -> Option<f64> {
    text.lines()
        .find(|line| line.contains("\"paper_cell\""))
        .and_then(|line| extract_number(line, "steps_per_sec"))
}

fn check_baseline(cell: &PaperCellResult, baseline_path: &str, max_regress_pct: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(reference) = parse_baseline(&text) else {
        eprintln!("baseline {baseline_path} has no paper_cell steps_per_sec");
        return false;
    };
    let floor = reference * (1.0 - max_regress_pct / 100.0);
    let ok = cell.steps_per_sec >= floor;
    println!(
        "paper cell: {:.2} steps/sec vs baseline {:.2} (floor {:.2}) — {}",
        cell.steps_per_sec,
        reference,
        floor,
        if ok { "ok" } else { "REGRESSION" }
    );
    ok
}

fn main() {
    let quick = has_flag("--quick");
    let full_grid_steps = has_flag("--paper-grid-steps");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_paper.json".to_string());
    let max_regress: f64 = arg_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);

    println!(
        "collabsim — paper_grid [{}]",
        if quick { "quick" } else { "paper scale" }
    );
    println!("(--quick for a smoke run, --baseline <path> to gate on a previous run)");
    println!();

    let cell = run_paper_cell(paper_cell_config(quick));
    println!(
        "paper cell: peers={}  steps={}  build={:.3}s  steps/sec={:.2}  downloads={}  transfer_slots={}",
        cell.population,
        cell.total_steps,
        cell.build_seconds,
        cell.steps_per_sec,
        cell.completed_downloads,
        cell.transfer_slots,
    );
    for (name, seconds) in &cell.phases {
        println!("    {name:<12} {seconds:>8.3}s");
    }

    let grid = run_grid(quick, full_grid_steps);
    println!(
        "mix grid:   cells={}  steps/cell={}  wall={:.2}s  cells/sec={:.2}  aggregate steps/sec={:.2}",
        grid.cells, grid.steps_per_cell, grid.seconds, grid.cells_per_sec, grid.aggregate_steps_per_sec,
    );

    let json = render_json(&cell, &grid);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n(report written to {out_path})"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if let Some(baseline) = arg_value("--baseline") {
        println!();
        if !check_baseline(&cell, &baseline, max_regress) {
            eprintln!("paper-cell steps/sec regressed more than {max_regress}% against {baseline}");
            std::process::exit(1);
        }
    }
}
