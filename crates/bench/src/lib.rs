//! Shared plumbing for the figure-regeneration binaries and criterion
//! benches of collabsim.
//!
//! Every binary regenerates one figure (or ablation) of Bocek et al.,
//! IPDPS 2008, as a numeric series printed to stdout. Because the paper-
//! scale runs (100 peers × 12 000 steps × up to 18 configurations) take
//! minutes, each binary honours a scale switch:
//!
//! * `COLLABSIM_SCALE=paper` (or `--paper`) — the paper's parameters,
//! * `COLLABSIM_SCALE=quick` (or `--quick`, the default) — a reduced run
//!   that finishes in seconds and preserves the qualitative shape.
//!
//! Binaries also accept `--csv <path>` to write the series as CSV next to
//! printing the human-readable table.

use collabsim::{PhaseConfig, ScenarioSpec, SimulationConfig};

/// The scale a figure run is executed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced population / step counts for fast iteration.
    Quick,
    /// The paper's population and phase lengths.
    Paper,
}

impl Scale {
    /// Reads the scale from the command line (`--quick` / `--paper`) or the
    /// `COLLABSIM_SCALE` environment variable, defaulting to quick.
    pub fn from_env_and_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper") {
            return Scale::Paper;
        }
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        match std::env::var("COLLABSIM_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// The base scenario spec for this scale (validated; default phase
    /// order). Binaries derive their sweeps from this spec or its
    /// configuration, so every figure flows through the declarative
    /// scenario API.
    pub fn base_spec(self) -> ScenarioSpec {
        let spec = match self {
            Scale::Paper => ScenarioSpec::from_config(SimulationConfig::default()),
            Scale::Quick => ScenarioSpec::builder()
                .population(40)
                .initial_articles(20)
                .phase_config(PhaseConfig {
                    training_steps: 1_500,
                    evaluation_steps: 600,
                    ..Default::default()
                })
                .build(),
        };
        spec.expect("bench base configurations are valid")
            .with_label(format!("base/{}", self.label()))
    }

    /// The base simulation configuration for this scale (the
    /// [`Scale::base_spec`]'s configuration).
    pub fn base_config(self) -> SimulationConfig {
        self.base_spec().config().clone()
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Returns the value following `name` on the command line, if any
/// (`--out path` style flags of the perf benches).
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether `name` appears on the command line.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Extracts `"key": <number>` from a JSON line written by the perf
/// benches (the self-describing baseline format; the offline harness has
/// no JSON parser crate). Lives in the shared runner core now — re-
/// exported so bench code keeps its historical import path.
pub use collabsim_cli::runner::extract_number;

/// Parses an optional `--csv <path>` argument.
pub fn csv_path_from_args() -> Option<String> {
    arg_value("--csv")
}

/// The process's peak resident set size in MB (`VmHWM` from
/// `/proc/self/status`), or `None` on platforms without procfs. The scale
/// bench records this per tier so CI can gate the memory footprint of the
/// struct-of-arrays hot state alongside steps/sec — a tier that still hits
/// its throughput floor by ballooning to a dense quadratic structure fails
/// the RSS ceiling instead.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb / 1024.0)
}

/// Writes CSV output to the path given by `--csv`, if any, and reports the
/// destination on stdout.
pub fn maybe_write_csv(csv: &str) {
    if let Some(path) = csv_path_from_args() {
        match std::fs::write(&path, csv) {
            Ok(()) => println!("(csv written to {path})"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Prints the standard run header shared by every figure binary.
pub fn print_header(figure: &str, scale: Scale) {
    println!("collabsim — {figure} [scale: {}]", scale.label());
    println!("(use --paper for the paper-scale run, --csv <path> to export the series)");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_paper_scale() {
        let quick = Scale::Quick.base_config();
        let paper = Scale::Paper.base_config();
        assert!(quick.population < paper.population);
        assert!(quick.phases.training_steps < paper.phases.training_steps);
        assert_eq!(paper.population, 100);
        assert_eq!(paper.phases.training_steps, 10_000);
    }

    #[test]
    fn base_specs_are_labelled_and_default_phased() {
        let spec = Scale::Quick.base_spec();
        assert_eq!(spec.label(), "base/quick");
        assert_eq!(spec.phases().len(), 6);
        assert_eq!(Scale::Paper.base_spec().label(), "base/paper");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Paper.label(), "paper");
    }

    #[test]
    fn scale_default_is_quick() {
        // Without --paper on the test binary's command line and without the
        // env var, the default is quick.
        if std::env::var("COLLABSIM_SCALE").is_err() {
            assert_eq!(Scale::from_env_and_args(), Scale::Quick);
        }
    }
}
