//! Criterion bench for Figures 4 and 5: one mix-sweep configuration at
//! reduced scale (the sweep the binaries repeat at nine mix points), plus
//! the per-rational breakdown extraction Figure 5 adds on top of Figure 4.

use collabsim::{BehaviorMix, BehaviorType, PhaseConfig, Simulation, SimulationConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn mixed_config(altruistic_pct: u32) -> SimulationConfig {
    SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 150,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::sweep(
        BehaviorType::Altruistic,
        f64::from(altruistic_pct) / 100.0,
    ))
}

fn bench_fig4_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fig5_mix_sweep");
    group.sample_size(10);
    for pct in [10u32, 50, 90] {
        group.bench_with_input(
            BenchmarkId::new("mix_point_run", format!("altruistic_{pct}pct")),
            &pct,
            |b, &pct| {
                b.iter(|| {
                    let mut sim = Simulation::new(mixed_config(pct));
                    black_box(sim.run())
                })
            },
        );
    }
    // Figure 5's extra work over Figure 4: reading the rational breakdown.
    let report = Simulation::new(mixed_config(50)).run();
    group.bench_function("fig5_rational_breakdown_extraction", |b| {
        b.iter(|| {
            black_box((
                report.rational_shared_articles(),
                report.rational_shared_bandwidth(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_fig5);
criterion_main!(benches);
