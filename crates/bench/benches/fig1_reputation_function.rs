//! Criterion bench for Figure 1: evaluating the logistic reputation function
//! over the paper's β values and contribution range.

use collabsim_reputation::function::{figure1_series, LogisticReputation, ReputationFunction};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_reputation_function");
    group.bench_function("figure1_series_0..50", |b| {
        b.iter(|| black_box(figure1_series(black_box(50))))
    });
    let f = LogisticReputation::paper(0.2);
    group.bench_function("single_evaluation", |b| {
        b.iter(|| black_box(f.reputation(black_box(17.5))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
