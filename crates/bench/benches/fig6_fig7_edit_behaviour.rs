//! Criterion bench for Figures 6 and 7: simulation runs whose measured
//! output is the rational agents' constructive/destructive edit split,
//! under a balanced (Figure 6) and a majority-skewed (Figure 7) population.

use collabsim::{BehaviorMix, BehaviorType, PhaseConfig, Simulation, SimulationConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn config_with_mix(mix: BehaviorMix) -> SimulationConfig {
    SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 150,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(mix)
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7_edit_behaviour");
    group.sample_size(10);

    // Figure 6: balanced altruistic/irrational shares around rational peers.
    group.bench_function("fig6_balanced_mix_run", |b| {
        b.iter(|| {
            let mix = BehaviorMix::sweep(BehaviorType::Rational, 0.5);
            let mut sim = Simulation::new(config_with_mix(mix));
            black_box(sim.run().rational_constructive_fraction())
        })
    });

    // Figure 7: majority-skewed populations (altruistic- and irrational-heavy).
    for (label, primary) in [
        ("altruistic_majority", BehaviorType::Altruistic),
        ("irrational_majority", BehaviorType::Irrational),
    ] {
        group.bench_with_input(
            BenchmarkId::new("fig7_majority_run", label),
            &primary,
            |b, &primary| {
                b.iter(|| {
                    let mix = BehaviorMix::sweep(primary, 0.7);
                    let mut sim = Simulation::new(config_with_mix(mix));
                    black_box(sim.run().rational_constructive_fraction())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_fig7);
criterion_main!(benches);
