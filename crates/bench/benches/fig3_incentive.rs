//! Criterion bench for Figure 3: one full (reduced-scale) simulation run
//! with the incentive scheme on and off — the unit of work the Figure 3
//! binary repeats at paper scale.

use collabsim::{IncentiveScheme, PhaseConfig, Simulation, SimulationConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn tiny_config(incentive: IncentiveScheme) -> SimulationConfig {
    SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 150,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_incentive(incentive)
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_incentive_vs_none");
    group.sample_size(10);
    for incentive in [IncentiveScheme::ReputationBased, IncentiveScheme::None] {
        group.bench_with_input(
            BenchmarkId::new("simulation_run", incentive.label()),
            &incentive,
            |b, &incentive| {
                b.iter(|| {
                    let mut sim = Simulation::new(tiny_config(incentive));
                    black_box(sim.run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
