//! Criterion bench for Figure 2: computing and sampling the Boltzmann
//! action distribution at the paper's two temperatures.

use collabsim_rl::boltzmann::{boltzmann_distribution, boltzmann_sample};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig2(c: &mut Criterion) {
    let values: Vec<f64> = (1..=10).map(f64::from).collect();
    let mut group = c.benchmark_group("fig2_boltzmann");
    for &t in &[2.0, 1000.0] {
        group.bench_function(format!("distribution_T{t}"), |b| {
            b.iter(|| black_box(boltzmann_distribution(black_box(&values), black_box(t))))
        });
    }
    group.bench_function("sample_T2", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(boltzmann_sample(black_box(&values), 2.0, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
