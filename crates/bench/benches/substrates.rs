//! Criterion benches for the substrates the ablations exercise (ABL2's
//! propagation algorithms and the bandwidth allocator every figure depends
//! on): EigenTrust power iteration, MaxFlow trust, gossip averaging, DHT
//! lookups and the reputation-weighted bandwidth allocation.

use collabsim_netsim::bandwidth::{AllocationPolicy, BandwidthAllocator, DownloadRequest};
use collabsim_netsim::dht::{Dht, DhtKey};
use collabsim_netsim::peer::PeerId;
use collabsim_reputation::attack::collusion_clique;
use collabsim_reputation::propagation::eigentrust::EigenTrust;
use collabsim_reputation::propagation::gossip::GossipAveraging;
use collabsim_reputation::propagation::maxflow::MaxFlowTrust;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_propagation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(99);
    let (graph, scenario) = collusion_clique(60, 10, 100.0, 0.3, &mut rng);
    let mut group = c.benchmark_group("abl2_propagation");
    group.bench_function("eigentrust_60_peers", |b| {
        let et = EigenTrust::default();
        b.iter(|| black_box(et.compute(black_box(&graph))))
    });
    group.bench_function("maxflow_single_pair_60_peers", |b| {
        let mf = MaxFlowTrust::new();
        b.iter(|| black_box(mf.max_trust(black_box(&graph), 0, scenario.attackers[0])))
    });
    group.bench_function("gossip_50_rounds_60_peers", |b| {
        let gossip = GossipAveraging::new(50);
        let mut grng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(gossip.compute(black_box(&graph), &mut grng)))
    });
    group.finish();
}

fn bench_network_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_substrate");

    let mut dht = Dht::new(3);
    for i in 0..256 {
        dht.join(PeerId(i));
    }
    let key = DhtKey::for_article(1234);
    dht.store(key);
    group.bench_function("dht_lookup_256_peers", |b| {
        b.iter(|| black_box(dht.lookup(PeerId(7), key)))
    });

    let requests: Vec<DownloadRequest> = (0..50)
        .map(|i| DownloadRequest {
            downloader: PeerId(i),
            sharing_reputation: 0.05 + 0.9 * f64::from(i) / 50.0,
            download_capacity: 1.0,
            uploaded_to_source: f64::from(i % 7),
        })
        .collect();
    let allocator = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
    group.bench_function("bandwidth_allocation_50_downloaders", |b| {
        b.iter(|| black_box(allocator.allocate(1.0, black_box(&requests))))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_network_substrate);
criterion_main!(benches);
