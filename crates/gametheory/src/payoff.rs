//! Normal-form games and payoff matrices.
//!
//! The paper's related-work section grounds the incentive analysis in
//! classical game theory: a peer's utility is the difference between the
//! benefit and the cost of an action, and interactions between peers are
//! modelled as (repeated plays of) a two-player normal-form game. This
//! module provides a small, allocation-friendly representation of such games
//! that the [`crate::prisoners`], [`crate::equilibrium`] and
//! [`crate::tournament`] modules build on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular payoff matrix for a single player of a two-player game.
///
/// Entry `(r, c)` is the payoff the player receives when the *row* player
/// chooses action `r` and the *column* player chooses action `c`. The matrix
/// is stored row-major in a flat `Vec<f64>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PayoffMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl PayoffMatrix {
    /// Creates a payoff matrix from a row-major slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or either dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert!(rows > 0 && cols > 0, "payoff matrix must be non-empty");
        assert_eq!(
            values.len(),
            rows * cols,
            "payoff matrix needs rows*cols values"
        );
        Self {
            rows,
            cols,
            values: values.to_vec(),
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn constant(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "payoff matrix must be non-empty");
        Self {
            rows,
            cols,
            values: vec![value; rows * cols],
        }
    }

    /// Number of row-player actions.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column-player actions.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Payoff for the `(row, col)` action profile.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.values[row * self.cols + col]
    }

    /// Sets the payoff for the `(row, col)` action profile.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.values[row * self.cols + col] = value;
    }

    /// Returns the transpose of the matrix (rows and columns swapped).
    ///
    /// Useful to express a symmetric game: the column player's payoffs in a
    /// symmetric game are the transpose of the row player's payoffs.
    pub fn transpose(&self) -> Self {
        let mut values = vec![0.0; self.values.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                values[c * self.rows + r] = self.get(r, c);
            }
        }
        Self {
            rows: self.cols,
            cols: self.rows,
            values,
        }
    }

    /// Returns an iterator over `(row, col, payoff)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Maximum payoff appearing anywhere in the matrix.
    pub fn max_payoff(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum payoff appearing anywhere in the matrix.
    pub fn min_payoff(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for PayoffMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>8.3}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A two-player normal-form game described by one payoff matrix per player.
///
/// The row player's matrix and the column player's matrix must have the same
/// shape; entry `(r, c)` of each matrix is the corresponding player's payoff
/// when the row player plays `r` and the column player plays `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BimatrixGame {
    row: PayoffMatrix,
    col: PayoffMatrix,
}

impl BimatrixGame {
    /// Creates a bimatrix game from the two players' payoff matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices do not have identical dimensions.
    pub fn new(row: PayoffMatrix, col: PayoffMatrix) -> Self {
        assert_eq!(row.rows(), col.rows(), "matrices must share dimensions");
        assert_eq!(row.cols(), col.cols(), "matrices must share dimensions");
        Self { row, col }
    }

    /// Creates a *symmetric* game: the column player's payoff matrix is the
    /// transpose of the row player's.
    pub fn symmetric(row: PayoffMatrix) -> Self {
        let col = row.transpose();
        // A symmetric game needs a square action space for the transpose to
        // share dimensions with the original matrix.
        assert_eq!(row.rows(), row.cols(), "symmetric games must be square");
        Self { row, col }
    }

    /// Row player's payoff matrix.
    pub fn row_payoffs(&self) -> &PayoffMatrix {
        &self.row
    }

    /// Column player's payoff matrix.
    pub fn col_payoffs(&self) -> &PayoffMatrix {
        &self.col
    }

    /// Number of actions available to the row player.
    pub fn row_actions(&self) -> usize {
        self.row.rows()
    }

    /// Number of actions available to the column player.
    pub fn col_actions(&self) -> usize {
        self.row.cols()
    }

    /// Payoff pair `(row player, column player)` for an action profile.
    pub fn payoffs(&self, row_action: usize, col_action: usize) -> (f64, f64) {
        (
            self.row.get(row_action, col_action),
            self.col.get(row_action, col_action),
        )
    }

    /// Social welfare (sum of both payoffs) of an action profile.
    pub fn welfare(&self, row_action: usize, col_action: usize) -> f64 {
        let (a, b) = self.payoffs(row_action, col_action);
        a + b
    }

    /// The action profile maximising social welfare, ties broken towards the
    /// lexicographically smallest `(row, col)` pair.
    pub fn welfare_maximum(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::NEG_INFINITY);
        for r in 0..self.row_actions() {
            for c in 0..self.col_actions() {
                let w = self.welfare(r, c);
                if w > best.2 {
                    best = (r, c, w);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd_row() -> PayoffMatrix {
        // Classic Prisoner's Dilemma payoffs for the row player:
        //            C      D
        //   C       3.0    0.0
        //   D       5.0    1.0
        PayoffMatrix::from_rows(2, 2, &[3.0, 0.0, 5.0, 1.0])
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = pd_row();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_rows_wrong_len_panics() {
        let _ = PayoffMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_matrix_panics() {
        let _ = PayoffMatrix::from_rows(0, 2, &[]);
    }

    #[test]
    fn set_and_get() {
        let mut m = PayoffMatrix::constant(3, 2, 0.0);
        m.set(2, 1, 7.5);
        assert_eq!(m.get(2, 1), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = PayoffMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn iter_visits_all_cells() {
        let m = pd_row();
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells.len(), 4);
        assert!(cells.contains(&(1, 0, 5.0)));
    }

    #[test]
    fn min_max_payoffs() {
        let m = pd_row();
        assert_eq!(m.max_payoff(), 5.0);
        assert_eq!(m.min_payoff(), 0.0);
    }

    #[test]
    fn symmetric_game_payoffs_mirror() {
        let game = BimatrixGame::symmetric(pd_row());
        // (row=D, col=C): row gets the temptation, col gets the sucker payoff.
        let (r, c) = game.payoffs(1, 0);
        assert_eq!(r, 5.0);
        assert_eq!(c, 0.0);
        // And mirrored.
        let (r, c) = game.payoffs(0, 1);
        assert_eq!(r, 0.0);
        assert_eq!(c, 5.0);
    }

    #[test]
    fn welfare_maximum_of_pd_is_mutual_cooperation() {
        let game = BimatrixGame::symmetric(pd_row());
        let (r, c, w) = game.welfare_maximum();
        assert_eq!((r, c), (0, 0));
        assert_eq!(w, 6.0);
    }

    #[test]
    fn display_formats_all_rows() {
        let s = format!("{}", pd_row());
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("5.000"));
    }
}
