//! The (repeated) Prisoner's Dilemma.
//!
//! The paper observes that "a repeated play of the Prisoner's Dilemma seems
//! to be an appropriate model of interaction among users in a P2P network"
//! and that tit-for-tat — as implemented by BitTorrent — is a very effective
//! strategy for it (Section II-A). This module provides the stage game, the
//! repeated game driver used by [`crate::tournament`], and the bookkeeping
//! needed to compare cooperation levels of different strategies.

use crate::payoff::{BimatrixGame, PayoffMatrix};
use crate::strategy::Strategy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An action in the Prisoner's Dilemma stage game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdAction {
    /// Cooperate: share resources / behave constructively.
    Cooperate,
    /// Defect: free-ride / behave destructively.
    Defect,
}

impl PdAction {
    /// Index of the action in a payoff matrix (Cooperate = 0, Defect = 1).
    pub fn index(self) -> usize {
        match self {
            PdAction::Cooperate => 0,
            PdAction::Defect => 1,
        }
    }

    /// The opposite action.
    pub fn opposite(self) -> Self {
        match self {
            PdAction::Cooperate => PdAction::Defect,
            PdAction::Defect => PdAction::Cooperate,
        }
    }
}

/// The canonical Prisoner's Dilemma stage game, parameterised by the four
/// classical payoffs.
///
/// With temptation `T`, reward `R`, punishment `P` and sucker payoff `S`, a
/// valid Prisoner's Dilemma requires `T > R > P > S` and, for the repeated
/// game to favour alternating cooperation over exploitation, `2R > T + S`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrisonersDilemma {
    /// Payoff for defecting against a cooperator.
    pub temptation: f64,
    /// Payoff for mutual cooperation.
    pub reward: f64,
    /// Payoff for mutual defection.
    pub punishment: f64,
    /// Payoff for cooperating against a defector.
    pub sucker: f64,
}

impl Default for PrisonersDilemma {
    fn default() -> Self {
        Self::axelrod()
    }
}

impl PrisonersDilemma {
    /// The payoffs used in Axelrod's tournaments: T=5, R=3, P=1, S=0.
    pub fn axelrod() -> Self {
        Self {
            temptation: 5.0,
            reward: 3.0,
            punishment: 1.0,
            sucker: 0.0,
        }
    }

    /// Creates a Prisoner's Dilemma with custom payoffs.
    ///
    /// # Panics
    ///
    /// Panics unless `T > R > P > S` holds, which is what makes the game a
    /// Prisoner's Dilemma in the first place.
    pub fn new(temptation: f64, reward: f64, punishment: f64, sucker: f64) -> Self {
        assert!(
            temptation > reward && reward > punishment && punishment > sucker,
            "Prisoner's Dilemma requires T > R > P > S"
        );
        Self {
            temptation,
            reward,
            punishment,
            sucker,
        }
    }

    /// Whether the payoffs also satisfy `2R > T + S`, the condition that
    /// makes sustained mutual cooperation better than alternating
    /// exploitation in the repeated game.
    pub fn favors_cooperation(&self) -> bool {
        2.0 * self.reward > self.temptation + self.sucker
    }

    /// Stage-game payoffs for a pair of actions, `(row player, column player)`.
    pub fn payoffs(&self, row: PdAction, col: PdAction) -> (f64, f64) {
        use PdAction::*;
        match (row, col) {
            (Cooperate, Cooperate) => (self.reward, self.reward),
            (Cooperate, Defect) => (self.sucker, self.temptation),
            (Defect, Cooperate) => (self.temptation, self.sucker),
            (Defect, Defect) => (self.punishment, self.punishment),
        }
    }

    /// The game expressed as a [`BimatrixGame`] (Cooperate = action 0).
    pub fn as_bimatrix(&self) -> BimatrixGame {
        let row = PayoffMatrix::from_rows(
            2,
            2,
            &[self.reward, self.sucker, self.temptation, self.punishment],
        );
        BimatrixGame::symmetric(row)
    }
}

/// Outcome of a repeated-game match between two strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdOutcome {
    /// Total payoff accumulated by the row player.
    pub row_score: f64,
    /// Total payoff accumulated by the column player.
    pub col_score: f64,
    /// Number of rounds played.
    pub rounds: usize,
    /// Number of rounds in which the row player cooperated.
    pub row_cooperations: usize,
    /// Number of rounds in which the column player cooperated.
    pub col_cooperations: usize,
    /// Number of rounds in which both players cooperated.
    pub mutual_cooperations: usize,
}

impl PdOutcome {
    /// Fraction of rounds in which the row player cooperated.
    pub fn row_cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.row_cooperations as f64 / self.rounds as f64
        }
    }

    /// Fraction of rounds in which the column player cooperated.
    pub fn col_cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.col_cooperations as f64 / self.rounds as f64
        }
    }

    /// Average per-round payoff of the row player.
    pub fn row_mean_payoff(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.row_score / self.rounds as f64
        }
    }

    /// Average per-round payoff of the column player.
    pub fn col_mean_payoff(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.col_score / self.rounds as f64
        }
    }
}

/// Driver for repeated play of the Prisoner's Dilemma between two
/// [`Strategy`] implementations.
#[derive(Debug, Clone)]
pub struct RepeatedGame {
    game: PrisonersDilemma,
    rounds: usize,
    /// Per-round discount factor applied to payoffs (`1.0` = undiscounted).
    discount: f64,
}

impl RepeatedGame {
    /// Creates a repeated game of `rounds` rounds with undiscounted payoffs.
    pub fn new(game: PrisonersDilemma, rounds: usize) -> Self {
        Self {
            game,
            rounds,
            discount: 1.0,
        }
    }

    /// Sets a per-round discount factor `0 < discount <= 1`; round `t`'s
    /// payoff is weighted by `discount^t`, matching the discounted reward
    /// sum the paper writes down when introducing Q-Learning (Section IV-A).
    pub fn with_discount(mut self, discount: f64) -> Self {
        assert!(
            discount > 0.0 && discount <= 1.0,
            "discount must be in (0, 1]"
        );
        self.discount = discount;
        self
    }

    /// Number of rounds per match.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The stage game.
    pub fn stage_game(&self) -> &PrisonersDilemma {
        &self.game
    }

    /// Plays a full match between `row` and `col`, resetting both strategies
    /// first.
    pub fn play<R: Rng>(
        &self,
        row: &mut dyn Strategy,
        col: &mut dyn Strategy,
        rng: &mut R,
    ) -> PdOutcome {
        row.reset();
        col.reset();
        let mut outcome = PdOutcome {
            row_score: 0.0,
            col_score: 0.0,
            rounds: self.rounds,
            row_cooperations: 0,
            col_cooperations: 0,
            mutual_cooperations: 0,
        };
        let mut row_prev: Option<PdAction> = None;
        let mut col_prev: Option<PdAction> = None;
        let mut weight = 1.0;
        for _ in 0..self.rounds {
            let a = row.next_action(col_prev, rng);
            let b = col.next_action(row_prev, rng);
            let (pa, pb) = self.game.payoffs(a, b);
            outcome.row_score += weight * pa;
            outcome.col_score += weight * pb;
            if a == PdAction::Cooperate {
                outcome.row_cooperations += 1;
            }
            if b == PdAction::Cooperate {
                outcome.col_cooperations += 1;
            }
            if a == PdAction::Cooperate && b == PdAction::Cooperate {
                outcome.mutual_cooperations += 1;
            }
            row.observe(a, b);
            col.observe(b, a);
            row_prev = Some(a);
            col_prev = Some(b);
            weight *= self.discount;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{AlwaysCooperate, AlwaysDefect, TitForTat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn axelrod_payoffs_are_canonical() {
        let pd = PrisonersDilemma::axelrod();
        assert_eq!(
            pd.payoffs(PdAction::Cooperate, PdAction::Cooperate),
            (3.0, 3.0)
        );
        assert_eq!(
            pd.payoffs(PdAction::Defect, PdAction::Cooperate),
            (5.0, 0.0)
        );
        assert_eq!(
            pd.payoffs(PdAction::Cooperate, PdAction::Defect),
            (0.0, 5.0)
        );
        assert_eq!(pd.payoffs(PdAction::Defect, PdAction::Defect), (1.0, 1.0));
        assert!(pd.favors_cooperation());
    }

    #[test]
    #[should_panic(expected = "T > R > P > S")]
    fn invalid_ordering_panics() {
        let _ = PrisonersDilemma::new(1.0, 2.0, 3.0, 4.0);
    }

    #[test]
    fn bimatrix_matches_direct_payoffs() {
        let pd = PrisonersDilemma::axelrod();
        let g = pd.as_bimatrix();
        for &a in &[PdAction::Cooperate, PdAction::Defect] {
            for &b in &[PdAction::Cooperate, PdAction::Defect] {
                assert_eq!(g.payoffs(a.index(), b.index()), pd.payoffs(a, b));
            }
        }
    }

    #[test]
    fn all_cooperate_vs_all_defect() {
        let game = RepeatedGame::new(PrisonersDilemma::axelrod(), 100);
        let mut coop = AlwaysCooperate;
        let mut defect = AlwaysDefect;
        let out = game.play(&mut coop, &mut defect, &mut rng());
        assert_eq!(out.row_score, 0.0);
        assert_eq!(out.col_score, 500.0);
        assert_eq!(out.row_cooperation_rate(), 1.0);
        assert_eq!(out.col_cooperation_rate(), 0.0);
        assert_eq!(out.mutual_cooperations, 0);
    }

    #[test]
    fn tit_for_tat_sustains_cooperation_with_cooperator() {
        let game = RepeatedGame::new(PrisonersDilemma::axelrod(), 50);
        let mut tft = TitForTat;
        let mut coop = AlwaysCooperate;
        let out = game.play(&mut tft, &mut coop, &mut rng());
        assert_eq!(out.mutual_cooperations, 50);
        assert_eq!(out.row_score, 150.0);
    }

    #[test]
    fn tit_for_tat_loses_at_most_one_round_to_defector() {
        let game = RepeatedGame::new(PrisonersDilemma::axelrod(), 50);
        let mut tft = TitForTat;
        let mut defect = AlwaysDefect;
        let out = game.play(&mut tft, &mut defect, &mut rng());
        // TFT cooperates only in the first round, then defects forever.
        assert_eq!(out.row_cooperations, 1);
        assert_eq!(out.row_score, 0.0 + 49.0 * 1.0);
        assert_eq!(out.col_score, 5.0 + 49.0 * 1.0);
    }

    #[test]
    fn discounting_reduces_total_score() {
        let undiscounted = RepeatedGame::new(PrisonersDilemma::axelrod(), 20);
        let discounted = RepeatedGame::new(PrisonersDilemma::axelrod(), 20).with_discount(0.9);
        let mut a = AlwaysCooperate;
        let mut b = AlwaysCooperate;
        let full = undiscounted.play(&mut a, &mut b, &mut rng());
        let disc = discounted.play(&mut a, &mut b, &mut rng());
        assert!(disc.row_score < full.row_score);
        // Geometric series: 3 * (1 - 0.9^20) / (1 - 0.9).
        let expected = 3.0 * (1.0 - 0.9f64.powi(20)) / 0.1;
        assert!((disc.row_score - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_round_outcome_has_zero_rates() {
        let game = RepeatedGame::new(PrisonersDilemma::axelrod(), 0);
        let mut a = AlwaysCooperate;
        let mut b = AlwaysDefect;
        let out = game.play(&mut a, &mut b, &mut rng());
        assert_eq!(out.row_cooperation_rate(), 0.0);
        assert_eq!(out.row_mean_payoff(), 0.0);
        assert_eq!(out.col_mean_payoff(), 0.0);
    }

    #[test]
    fn opposite_action_flips() {
        assert_eq!(PdAction::Cooperate.opposite(), PdAction::Defect);
        assert_eq!(PdAction::Defect.opposite(), PdAction::Cooperate);
    }
}
