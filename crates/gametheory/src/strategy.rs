//! Classical strategies for the repeated Prisoner's Dilemma.
//!
//! Tit-for-Tat is singled out by the paper (following Axelrod and the
//! BitTorrent design) as "a very effective strategy to play the repeated
//! Prisoner's Dilemma"; the remaining strategies are the standard cast used
//! in Axelrod-style tournaments and serve as baselines and adversaries in
//! [`crate::tournament`].

use crate::prisoners::PdAction;
use std::fmt;

/// A strategy for repeated play of the Prisoner's Dilemma.
///
/// A strategy is stateful: [`Strategy::reset`] is called at the beginning of
/// every match, [`Strategy::next_action`] is asked for a move given the
/// opponent's previous move (or `None` in the first round), and
/// [`Strategy::observe`] reports the realised action profile after every
/// round so strategies with richer memory (e.g. [`GrimTrigger`], [`Pavlov`])
/// can update their internal state.
pub trait Strategy: Send {
    /// Human-readable name used in tournament reports.
    fn name(&self) -> &'static str;

    /// Resets any per-match state.
    fn reset(&mut self) {}

    /// Chooses the next action given the opponent's previous action.
    fn next_action(
        &mut self,
        opponent_previous: Option<PdAction>,
        rng: &mut dyn rand::RngCore,
    ) -> PdAction;

    /// Observes the realised action profile `(own, opponent)` of a round.
    fn observe(&mut self, _own: PdAction, _opponent: PdAction) {}
}

impl fmt::Debug for dyn Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

/// Always cooperates — the altruistic extreme.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysCooperate;

impl Strategy for AlwaysCooperate {
    fn name(&self) -> &'static str {
        "AllC"
    }

    fn next_action(&mut self, _prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        PdAction::Cooperate
    }
}

/// Always defects — the free-riding extreme.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysDefect;

impl Strategy for AlwaysDefect {
    fn name(&self) -> &'static str {
        "AllD"
    }

    fn next_action(&mut self, _prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        PdAction::Defect
    }
}

/// Tit-for-Tat: cooperate first, then mirror the opponent's last move.
#[derive(Debug, Clone, Copy, Default)]
pub struct TitForTat;

impl Strategy for TitForTat {
    fn name(&self) -> &'static str {
        "TFT"
    }

    fn next_action(&mut self, prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        prev.unwrap_or(PdAction::Cooperate)
    }
}

/// Tit-for-Two-Tats: defects only after two consecutive opponent defections,
/// which makes it more forgiving than plain Tit-for-Tat in noisy settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct TitForTwoTats {
    previous_defections: u8,
}

impl Strategy for TitForTwoTats {
    fn name(&self) -> &'static str {
        "TF2T"
    }

    fn reset(&mut self) {
        self.previous_defections = 0;
    }

    fn next_action(&mut self, _prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        if self.previous_defections >= 2 {
            PdAction::Defect
        } else {
            PdAction::Cooperate
        }
    }

    fn observe(&mut self, _own: PdAction, opponent: PdAction) {
        match opponent {
            PdAction::Defect => {
                self.previous_defections = self.previous_defections.saturating_add(1)
            }
            PdAction::Cooperate => self.previous_defections = 0,
        }
    }
}

/// Grim Trigger: cooperates until the opponent defects once, then defects
/// forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct GrimTrigger {
    triggered: bool,
}

impl Strategy for GrimTrigger {
    fn name(&self) -> &'static str {
        "Grim"
    }

    fn reset(&mut self) {
        self.triggered = false;
    }

    fn next_action(&mut self, _prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        if self.triggered {
            PdAction::Defect
        } else {
            PdAction::Cooperate
        }
    }

    fn observe(&mut self, _own: PdAction, opponent: PdAction) {
        if opponent == PdAction::Defect {
            self.triggered = true;
        }
    }
}

/// Pavlov (win-stay / lose-shift): repeats its previous action after a good
/// outcome (mutual cooperation or successful exploitation) and switches after
/// a bad one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pavlov {
    next: Option<PdAction>,
}

impl Strategy for Pavlov {
    fn name(&self) -> &'static str {
        "Pavlov"
    }

    fn reset(&mut self) {
        self.next = None;
    }

    fn next_action(&mut self, _prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        self.next.unwrap_or(PdAction::Cooperate)
    }

    fn observe(&mut self, own: PdAction, opponent: PdAction) {
        // Win = opponent cooperated (we either got the reward or the
        // temptation payoff); stay. Lose = opponent defected; shift.
        let won = opponent == PdAction::Cooperate;
        self.next = Some(if won { own } else { own.opposite() });
    }
}

/// Cooperates independently at random with a fixed probability each round.
#[derive(Debug, Clone, Copy)]
pub struct RandomStrategy {
    /// Probability of cooperating in any given round.
    pub cooperate_probability: f64,
}

impl RandomStrategy {
    /// Creates a random strategy with the given cooperation probability.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(cooperate_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cooperate_probability),
            "probability must lie in [0, 1]"
        );
        Self {
            cooperate_probability,
        }
    }
}

impl Default for RandomStrategy {
    fn default() -> Self {
        Self::new(0.5)
    }
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn next_action(&mut self, _prev: Option<PdAction>, rng: &mut dyn rand::RngCore) -> PdAction {
        // `dyn RngCore` does not expose the generic `Rng::gen_bool` helper,
        // so draw a uniform value in [0, 1) from the raw 32-bit output.
        let draw = rng.next_u32() as f64 / (u32::MAX as f64 + 1.0);
        if draw < self.cooperate_probability {
            PdAction::Cooperate
        } else {
            PdAction::Defect
        }
    }
}

/// A "suspicious" variant of Tit-for-Tat that defects in the first round.
/// Included because it illustrates how the initial move changes long-run
/// cooperation against reciprocal strategies.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuspiciousTitForTat;

impl Strategy for SuspiciousTitForTat {
    fn name(&self) -> &'static str {
        "STFT"
    }

    fn next_action(&mut self, prev: Option<PdAction>, _rng: &mut dyn rand::RngCore) -> PdAction {
        prev.unwrap_or(PdAction::Defect)
    }
}

/// Builds one instance of every strategy shipped with this crate, useful for
/// whole-roster tournaments.
pub fn standard_roster() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(AlwaysCooperate),
        Box::new(AlwaysDefect),
        Box::new(TitForTat),
        Box::new(TitForTwoTats::default()),
        Box::new(GrimTrigger::default()),
        Box::new(Pavlov::default()),
        Box::new(RandomStrategy::default()),
        Box::new(SuspiciousTitForTat),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn tit_for_tat_mirrors_last_move() {
        let mut tft = TitForTat;
        let mut r = rng();
        assert_eq!(tft.next_action(None, &mut r), PdAction::Cooperate);
        assert_eq!(
            tft.next_action(Some(PdAction::Defect), &mut r),
            PdAction::Defect
        );
        assert_eq!(
            tft.next_action(Some(PdAction::Cooperate), &mut r),
            PdAction::Cooperate
        );
    }

    #[test]
    fn suspicious_tft_defects_first() {
        let mut s = SuspiciousTitForTat;
        let mut r = rng();
        assert_eq!(s.next_action(None, &mut r), PdAction::Defect);
        assert_eq!(
            s.next_action(Some(PdAction::Cooperate), &mut r),
            PdAction::Cooperate
        );
    }

    #[test]
    fn grim_trigger_never_forgives() {
        let mut g = GrimTrigger::default();
        let mut r = rng();
        assert_eq!(g.next_action(None, &mut r), PdAction::Cooperate);
        g.observe(PdAction::Cooperate, PdAction::Defect);
        assert_eq!(
            g.next_action(Some(PdAction::Cooperate), &mut r),
            PdAction::Defect
        );
        g.observe(PdAction::Defect, PdAction::Cooperate);
        assert_eq!(
            g.next_action(Some(PdAction::Cooperate), &mut r),
            PdAction::Defect
        );
        g.reset();
        assert_eq!(g.next_action(None, &mut r), PdAction::Cooperate);
    }

    #[test]
    fn tf2t_requires_two_defections() {
        let mut t = TitForTwoTats::default();
        let mut r = rng();
        t.observe(PdAction::Cooperate, PdAction::Defect);
        assert_eq!(
            t.next_action(Some(PdAction::Defect), &mut r),
            PdAction::Cooperate
        );
        t.observe(PdAction::Cooperate, PdAction::Defect);
        assert_eq!(
            t.next_action(Some(PdAction::Defect), &mut r),
            PdAction::Defect
        );
        // A cooperation resets the counter.
        t.observe(PdAction::Defect, PdAction::Cooperate);
        assert_eq!(
            t.next_action(Some(PdAction::Cooperate), &mut r),
            PdAction::Cooperate
        );
    }

    #[test]
    fn pavlov_win_stay_lose_shift() {
        let mut p = Pavlov::default();
        let mut r = rng();
        assert_eq!(p.next_action(None, &mut r), PdAction::Cooperate);
        // Mutual cooperation: win, stay with Cooperate.
        p.observe(PdAction::Cooperate, PdAction::Cooperate);
        assert_eq!(p.next_action(None, &mut r), PdAction::Cooperate);
        // Got suckered: lose, shift to Defect.
        p.observe(PdAction::Cooperate, PdAction::Defect);
        assert_eq!(p.next_action(None, &mut r), PdAction::Defect);
        // Mutual defection: lose, shift back to Cooperate.
        p.observe(PdAction::Defect, PdAction::Defect);
        assert_eq!(p.next_action(None, &mut r), PdAction::Cooperate);
        // Exploited the opponent: win, stay on Defect.
        p.observe(PdAction::Defect, PdAction::Cooperate);
        assert_eq!(p.next_action(None, &mut r), PdAction::Defect);
    }

    #[test]
    fn random_strategy_extremes_are_deterministic() {
        let mut always = RandomStrategy::new(1.0);
        let mut never = RandomStrategy::new(0.0);
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(always.next_action(None, &mut r), PdAction::Cooperate);
            assert_eq!(never.next_action(None, &mut r), PdAction::Defect);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_strategy_rejects_bad_probability() {
        let _ = RandomStrategy::new(1.5);
    }

    #[test]
    fn roster_contains_unique_names() {
        let roster = standard_roster();
        let mut names: Vec<_> = roster.iter().map(|s| s.name()).collect();
        let len = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), len);
        assert!(len >= 8);
    }
}
