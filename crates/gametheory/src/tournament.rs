//! Axelrod-style round-robin tournaments between repeated-game strategies.
//!
//! The tournament runner is used by the examples and benches to reproduce
//! the classical result the paper leans on: reciprocal strategies such as
//! Tit-for-Tat dominate a mixed population even though Always-Defect wins
//! any single encounter against a cooperator. It also provides the baseline
//! cooperation statistics against which the reputation-based scheme is
//! compared qualitatively.

use crate::prisoners::{PrisonersDilemma, RepeatedGame};
use crate::strategy::Strategy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Aggregate statistics for a single strategy across a tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyStanding {
    /// Strategy name.
    pub name: String,
    /// Total payoff accumulated over all matches (both as row and column).
    pub total_score: f64,
    /// Number of matches played.
    pub matches: usize,
    /// Number of rounds played over all matches.
    pub rounds: usize,
    /// Number of rounds in which this strategy cooperated.
    pub cooperations: usize,
}

impl StrategyStanding {
    /// Average payoff per round.
    pub fn mean_payoff(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_score / self.rounds as f64
        }
    }

    /// Fraction of rounds in which the strategy cooperated.
    pub fn cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.cooperations as f64 / self.rounds as f64
        }
    }
}

/// Result of a full round-robin tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentResult {
    /// Standings sorted by descending total score.
    pub standings: Vec<StrategyStanding>,
    /// Number of rounds each match lasted.
    pub rounds_per_match: usize,
    /// Number of times the round-robin schedule was repeated.
    pub repetitions: usize,
}

impl TournamentResult {
    /// Name of the winning strategy (highest total score).
    pub fn winner(&self) -> &str {
        &self.standings[0].name
    }

    /// Standing for a particular strategy name, if it participated.
    pub fn standing(&self, name: &str) -> Option<&StrategyStanding> {
        self.standings.iter().find(|s| s.name == name)
    }

    /// Renders the standings as a small fixed-width text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12}\n",
            "strategy", "total", "mean/round", "coop-rate"
        ));
        for s in &self.standings {
            out.push_str(&format!(
                "{:<10} {:>12.2} {:>12.4} {:>12.4}\n",
                s.name,
                s.total_score,
                s.mean_payoff(),
                s.cooperation_rate()
            ));
        }
        out
    }
}

/// Round-robin tournament driver.
///
/// Every pair of distinct strategies plays `repetitions` matches of
/// `rounds_per_match` rounds each; self-play can optionally be included
/// (Axelrod's original tournaments included it).
#[derive(Debug, Clone)]
pub struct Tournament {
    game: PrisonersDilemma,
    rounds_per_match: usize,
    repetitions: usize,
    include_self_play: bool,
}

impl Tournament {
    /// Creates a tournament over the given stage game.
    pub fn new(game: PrisonersDilemma, rounds_per_match: usize, repetitions: usize) -> Self {
        assert!(rounds_per_match > 0, "matches need at least one round");
        assert!(repetitions > 0, "need at least one repetition");
        Self {
            game,
            rounds_per_match,
            repetitions,
            include_self_play: true,
        }
    }

    /// Enables or disables self-play matches.
    pub fn with_self_play(mut self, include: bool) -> Self {
        self.include_self_play = include;
        self
    }

    /// Runs the tournament over a roster of strategies.
    ///
    /// Strategy factories are used (rather than instances) because each side
    /// of each match needs an independent, freshly reset strategy instance.
    pub fn run<R: Rng>(
        &self,
        roster: &[Box<dyn Fn() -> Box<dyn Strategy>>],
        rng: &mut R,
    ) -> TournamentResult {
        assert!(!roster.is_empty(), "tournament needs at least one strategy");
        let repeated = RepeatedGame::new(self.game, self.rounds_per_match);
        let mut standings: Vec<StrategyStanding> = roster
            .iter()
            .map(|f| {
                let s = f();
                StrategyStanding {
                    name: s.name().to_string(),
                    total_score: 0.0,
                    matches: 0,
                    rounds: 0,
                    cooperations: 0,
                }
            })
            .collect();

        for _ in 0..self.repetitions {
            for i in 0..roster.len() {
                for j in i..roster.len() {
                    if i == j && !self.include_self_play {
                        continue;
                    }
                    let mut a = roster[i]();
                    let mut b = roster[j]();
                    let outcome = repeated.play(a.as_mut(), b.as_mut(), rng);
                    standings[i].total_score += outcome.row_score;
                    standings[i].matches += 1;
                    standings[i].rounds += outcome.rounds;
                    standings[i].cooperations += outcome.row_cooperations;
                    standings[j].total_score += outcome.col_score;
                    standings[j].matches += 1;
                    standings[j].rounds += outcome.rounds;
                    standings[j].cooperations += outcome.col_cooperations;
                }
            }
        }

        standings.sort_by(|a, b| {
            b.total_score
                .partial_cmp(&a.total_score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        TournamentResult {
            standings,
            rounds_per_match: self.rounds_per_match,
            repetitions: self.repetitions,
        }
    }
}

/// Convenience: a factory roster for the standard strategy cast.
pub fn standard_factories() -> Vec<Box<dyn Fn() -> Box<dyn Strategy>>> {
    use crate::strategy::*;
    vec![
        Box::new(|| Box::new(AlwaysCooperate) as Box<dyn Strategy>),
        Box::new(|| Box::new(AlwaysDefect) as Box<dyn Strategy>),
        Box::new(|| Box::new(TitForTat) as Box<dyn Strategy>),
        Box::new(|| Box::new(TitForTwoTats::default()) as Box<dyn Strategy>),
        Box::new(|| Box::new(GrimTrigger::default()) as Box<dyn Strategy>),
        Box::new(|| Box::new(Pavlov::default()) as Box<dyn Strategy>),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{AlwaysCooperate, AlwaysDefect, Strategy, TitForTat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn roster_of_three() -> Vec<Box<dyn Fn() -> Box<dyn Strategy>>> {
        vec![
            Box::new(|| Box::new(AlwaysCooperate) as Box<dyn Strategy>),
            Box::new(|| Box::new(AlwaysDefect) as Box<dyn Strategy>),
            Box::new(|| Box::new(TitForTat) as Box<dyn Strategy>),
        ]
    }

    #[test]
    fn standings_cover_every_strategy() {
        let t = Tournament::new(PrisonersDilemma::axelrod(), 50, 2);
        let result = t.run(&roster_of_three(), &mut rng());
        assert_eq!(result.standings.len(), 3);
        assert!(result.standing("TFT").is_some());
        assert!(result.standing("AllC").is_some());
        assert!(result.standing("AllD").is_some());
        assert!(result.standing("Pavlov").is_none());
    }

    #[test]
    fn tft_beats_alld_in_mixed_population() {
        // With enough reciprocators in the population, AllD cannot win the
        // tournament even though it wins every individual encounter —
        // the classical Axelrod observation that motivates reputation-based
        // incentives in the paper.
        let t = Tournament::new(PrisonersDilemma::axelrod(), 200, 3);
        let result = t.run(&standard_factories(), &mut rng());
        let tft = result.standing("TFT").unwrap().total_score;
        let alld = result.standing("AllD").unwrap().total_score;
        assert!(
            tft > alld,
            "TFT ({tft}) should out-score AllD ({alld}) in a mixed population"
        );
    }

    #[test]
    fn self_play_toggle_changes_match_count() {
        let with = Tournament::new(PrisonersDilemma::axelrod(), 10, 1);
        let without = Tournament::new(PrisonersDilemma::axelrod(), 10, 1).with_self_play(false);
        let a = with.run(&roster_of_three(), &mut rng());
        let b = without.run(&roster_of_three(), &mut rng());
        let total_a: usize = a.standings.iter().map(|s| s.matches).sum();
        let total_b: usize = b.standings.iter().map(|s| s.matches).sum();
        // 3 pairings + 3 self-plays, each self-play counts the strategy twice.
        assert_eq!(total_a, 2 * 6);
        assert_eq!(total_b, 2 * 3);
    }

    #[test]
    fn winner_is_first_standing() {
        let t = Tournament::new(PrisonersDilemma::axelrod(), 30, 1);
        let result = t.run(&roster_of_three(), &mut rng());
        assert_eq!(result.winner(), result.standings[0].name);
    }

    #[test]
    fn table_lists_all_strategies() {
        let t = Tournament::new(PrisonersDilemma::axelrod(), 10, 1);
        let result = t.run(&roster_of_three(), &mut rng());
        let table = result.to_table();
        assert!(table.contains("TFT"));
        assert!(table.contains("AllD"));
        assert!(table.contains("coop-rate"));
    }

    #[test]
    #[should_panic(expected = "at least one strategy")]
    fn empty_roster_panics() {
        let t = Tournament::new(PrisonersDilemma::axelrod(), 10, 1);
        let empty: Vec<Box<dyn Fn() -> Box<dyn Strategy>>> = vec![];
        let _ = t.run(&empty, &mut rng());
    }
}
