//! # collabsim-gametheory
//!
//! Game-theoretic substrate for the collabsim reproduction of
//! *"Game Theoretical Analysis of Incentives for Large-scale, Fully
//! Decentralized Collaboration Networks"* (Bocek, Shann, Hausheer, Stiller —
//! IPDPS 2008).
//!
//! The paper analyses its incentive scheme against the classical
//! game-theoretic background: peers are modelled as players of a repeated
//! game whose utility is the difference between benefit and cost of their
//! actions, and the tit-for-tat strategy in the repeated Prisoner's Dilemma
//! is the baseline incentive mechanism (Section II-A of the paper). This
//! crate provides that background machinery:
//!
//! * [`payoff`] — normal-form games and payoff matrices,
//! * [`prisoners`] — the (repeated) Prisoner's Dilemma,
//! * [`strategy`] — classical repeated-game strategies (Tit-for-Tat,
//!   Always-Cooperate, Always-Defect, Grim Trigger, Pavlov, probabilistic),
//! * [`tournament`] — an Axelrod-style round-robin tournament runner,
//! * [`equilibrium`] — best-response and pure Nash-equilibrium detection for
//!   small bimatrix games,
//! * [`utility`] — the paper's utility functions `U_S` (sharing) and `U_E`
//!   (editing/voting), Section III-D,
//! * [`behavior`] — the three standard behaviour types used throughout the
//!   paper: *altruistic*, *rational* and *irrational* peers (Section II-A,
//!   citing Shneidman & Parkes).
//!
//! All types are deterministic given an explicit RNG; nothing in this crate
//! touches global state, so tournaments and utility sweeps can be evaluated
//! from many threads at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod equilibrium;
pub mod payoff;
pub mod prisoners;
pub mod strategy;
pub mod tournament;
pub mod utility;

pub use behavior::{BehaviorMix, BehaviorType};
pub use equilibrium::{best_response_row, pure_nash_equilibria};
pub use payoff::{BimatrixGame, PayoffMatrix};
pub use prisoners::{PdAction, PdOutcome, PrisonersDilemma, RepeatedGame};
pub use strategy::{
    AlwaysCooperate, AlwaysDefect, GrimTrigger, Pavlov, RandomStrategy, Strategy, TitForTat,
    TitForTwoTats,
};
pub use tournament::{Tournament, TournamentResult};
pub use utility::{EditingUtilityParams, SharingUtilityParams, UtilityModel};
