//! Best-response and pure Nash-equilibrium analysis for small bimatrix games.
//!
//! The paper's argument for why an incentive scheme is needed at all is an
//! equilibrium argument: without service differentiation, free-riding is the
//! dominant strategy of the one-shot sharing game, so the unique equilibrium
//! is "nobody shares". This module provides the small amount of machinery
//! needed to state and test that argument precisely, and to verify that the
//! reputation-differentiated game moves the equilibrium towards sharing.

use crate::payoff::BimatrixGame;
use serde::{Deserialize, Serialize};

/// A pure-strategy profile `(row action, column action)`.
pub type PureProfile = (usize, usize);

/// Floating-point tolerance used when comparing payoffs. Two payoffs within
/// this distance are treated as equal, so weak best responses are included.
pub const PAYOFF_EPSILON: f64 = 1e-12;

/// Returns the set of best responses of the *row* player against a fixed
/// column action.
pub fn best_response_row(game: &BimatrixGame, col_action: usize) -> Vec<usize> {
    assert!(
        col_action < game.col_actions(),
        "column action out of range"
    );
    let mut best = f64::NEG_INFINITY;
    for r in 0..game.row_actions() {
        best = best.max(game.row_payoffs().get(r, col_action));
    }
    (0..game.row_actions())
        .filter(|&r| game.row_payoffs().get(r, col_action) >= best - PAYOFF_EPSILON)
        .collect()
}

/// Returns the set of best responses of the *column* player against a fixed
/// row action.
pub fn best_response_col(game: &BimatrixGame, row_action: usize) -> Vec<usize> {
    assert!(row_action < game.row_actions(), "row action out of range");
    let mut best = f64::NEG_INFINITY;
    for c in 0..game.col_actions() {
        best = best.max(game.col_payoffs().get(row_action, c));
    }
    (0..game.col_actions())
        .filter(|&c| game.col_payoffs().get(row_action, c) >= best - PAYOFF_EPSILON)
        .collect()
}

/// Enumerates all pure-strategy Nash equilibria of a bimatrix game.
///
/// A profile is an equilibrium when each player's action is a (possibly
/// weak) best response to the other player's action.
pub fn pure_nash_equilibria(game: &BimatrixGame) -> Vec<PureProfile> {
    let mut equilibria = Vec::new();
    for r in 0..game.row_actions() {
        for c in 0..game.col_actions() {
            let row_ok = best_response_row(game, c).contains(&r);
            let col_ok = best_response_col(game, r).contains(&c);
            if row_ok && col_ok {
                equilibria.push((r, c));
            }
        }
    }
    equilibria
}

/// Whether `action` strictly dominates every other row action (yields a
/// strictly higher payoff against every column action).
pub fn is_strictly_dominant_row(game: &BimatrixGame, action: usize) -> bool {
    assert!(action < game.row_actions(), "row action out of range");
    for other in 0..game.row_actions() {
        if other == action {
            continue;
        }
        for c in 0..game.col_actions() {
            if game.row_payoffs().get(action, c) <= game.row_payoffs().get(other, c) {
                return false;
            }
        }
    }
    true
}

/// Result of a dominance scan over both players of a symmetric game.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DominanceReport {
    /// Row actions that are strictly dominant.
    pub dominant_row_actions: Vec<usize>,
    /// Profiles that are pure Nash equilibria.
    pub equilibria: Vec<PureProfile>,
}

/// Runs a dominance / equilibrium scan over a game.
pub fn analyze(game: &BimatrixGame) -> DominanceReport {
    let dominant_row_actions = (0..game.row_actions())
        .filter(|&a| is_strictly_dominant_row(game, a))
        .collect();
    DominanceReport {
        dominant_row_actions,
        equilibria: pure_nash_equilibria(game),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::PayoffMatrix;
    use crate::prisoners::PrisonersDilemma;

    #[test]
    fn pd_unique_equilibrium_is_mutual_defection() {
        let game = PrisonersDilemma::axelrod().as_bimatrix();
        let eq = pure_nash_equilibria(&game);
        assert_eq!(eq, vec![(1, 1)]);
    }

    #[test]
    fn pd_defection_is_strictly_dominant() {
        let game = PrisonersDilemma::axelrod().as_bimatrix();
        assert!(is_strictly_dominant_row(&game, 1));
        assert!(!is_strictly_dominant_row(&game, 0));
    }

    #[test]
    fn coordination_game_has_two_equilibria() {
        // Stag hunt style coordination game.
        let row = PayoffMatrix::from_rows(2, 2, &[4.0, 0.0, 3.0, 3.0]);
        let game = BimatrixGame::symmetric(row);
        let mut eq = pure_nash_equilibria(&game);
        eq.sort_unstable();
        assert_eq!(eq, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn matching_pennies_has_no_pure_equilibrium() {
        let row = PayoffMatrix::from_rows(2, 2, &[1.0, -1.0, -1.0, 1.0]);
        let col = PayoffMatrix::from_rows(2, 2, &[-1.0, 1.0, 1.0, -1.0]);
        let game = BimatrixGame::new(row, col);
        assert!(pure_nash_equilibria(&game).is_empty());
    }

    #[test]
    fn best_responses_include_ties() {
        let row = PayoffMatrix::from_rows(2, 2, &[2.0, 1.0, 2.0, 0.0]);
        let col = row.transpose();
        let game = BimatrixGame::new(row, col);
        let br = best_response_row(&game, 0);
        assert_eq!(br, vec![0, 1]);
    }

    #[test]
    fn analyze_reports_dominance_and_equilibria() {
        let game = PrisonersDilemma::axelrod().as_bimatrix();
        let report = analyze(&game);
        assert_eq!(report.dominant_row_actions, vec![1]);
        assert_eq!(report.equilibria, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn best_response_bad_index_panics() {
        let game = PrisonersDilemma::axelrod().as_bimatrix();
        let _ = best_response_row(&game, 5);
    }

    #[test]
    fn sharing_game_without_incentive_collapses_to_freeriding() {
        // Two peers decide to Share (0) or FreeRide (1). Without service
        // differentiation a peer benefits from the other's sharing (value 2)
        // and pays a cost of 1 when it shares itself, irrespective of what it
        // receives — the structure the paper describes in Section II-A.
        let benefit = 2.0;
        let cost = 1.0;
        let row = PayoffMatrix::from_rows(
            2,
            2,
            &[
                benefit - cost, // both share
                -cost,          // we share, they free-ride
                benefit,        // we free-ride, they share
                0.0,            // nobody shares
            ],
        );
        let game = BimatrixGame::symmetric(row);
        let report = analyze(&game);
        assert_eq!(report.equilibria, vec![(1, 1)]);
        assert_eq!(report.dominant_row_actions, vec![1]);
    }

    #[test]
    fn sharing_game_with_service_differentiation_supports_sharing() {
        // With reputation-based service differentiation, a free-rider's
        // download bandwidth drops towards zero (its reputation share is
        // negligible), so the benefit term is conditioned on having shared.
        let benefit = 2.0;
        let cost = 1.0;
        let row = PayoffMatrix::from_rows(
            2,
            2,
            &[
                benefit - cost,  // both share: full benefit
                -cost + benefit, // we share, they free-ride: we still receive priority service
                0.2,             // we free-ride: almost no bandwidth allocated to us
                0.0,
            ],
        );
        let game = BimatrixGame::symmetric(row);
        let eq = pure_nash_equilibria(&game);
        assert!(
            eq.contains(&(0, 0)),
            "mutual sharing should be an equilibrium: {eq:?}"
        );
    }
}
