//! The paper's utility functions (Section III-D).
//!
//! Two utilities are defined, one per resource class:
//!
//! * Sharing articles and bandwidth:
//!   `U_S = α · UP_source · B − β · DS_articles − γ · UP_own`
//!   where `UP_source` is the source's shared upload bandwidth, `B` the
//!   fraction of that bandwidth allocated to the peer by the service
//!   differentiation (Section III-C1), `DS_articles` the fraction of disk
//!   space used for shared articles and `UP_own` the fraction of upload
//!   bandwidth the peer itself shares.
//! * Editing and voting: `U_E = δ · E_succ + ε · V_succ`, the weighted count
//!   of successful edits and successful votes. The paper deliberately leaves
//!   the *costs* of editing and voting out of `U_E` (they "cannot be
//!   explained rationally"; the motivation is altruistic).
//!
//! These utilities are the per-step rewards fed into the Q-learning agents
//! of the simulation model.

use serde::{Deserialize, Serialize};

/// Coefficients of the sharing utility `U_S` (Section III-D1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingUtilityParams {
    /// `α`: benefit weight on the bandwidth actually received.
    pub alpha: f64,
    /// `β`: cost weight on the disk space used for shared articles.
    pub beta: f64,
    /// `γ`: cost weight on the upload bandwidth shared by the peer itself.
    pub gamma: f64,
}

impl Default for SharingUtilityParams {
    fn default() -> Self {
        // The paper normalises bandwidth and file size to 1 and does not
        // publish the exact coefficients; these defaults make downloading
        // clearly beneficial while sharing carries a modest cost, which is
        // the qualitative regime the paper's results describe (service
        // differentiation makes sharing pay, without it free-riding wins).
        Self {
            alpha: 10.0,
            beta: 0.5,
            gamma: 0.5,
        }
    }
}

/// Coefficients of the editing/voting utility `U_E` (Section III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EditingUtilityParams {
    /// `δ`: reward weight per successful (accepted) edit.
    pub delta: f64,
    /// `ε`: reward weight per successful (majority) vote.
    pub epsilon: f64,
}

impl Default for EditingUtilityParams {
    fn default() -> Self {
        // Accepted edits are worth noticeably more than individual majority
        // votes; keeping ε small also keeps the voting reward from drowning
        // out the sharing utility during learning.
        Self {
            delta: 2.0,
            epsilon: 0.25,
        }
    }
}

/// Inputs to the sharing utility for one peer and one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SharingObservation {
    /// `UP_source`: fraction of upload bandwidth shared by the source peer
    /// the observing peer downloads from (0 if it did not download).
    pub source_upload: f64,
    /// `B`: fraction of that upload bandwidth allocated to the observing
    /// peer by the service-differentiation rule.
    pub bandwidth_share: f64,
    /// `DS_articles`: fraction of the peer's disk space used for shared
    /// articles.
    pub disk_share: f64,
    /// `UP_own`: fraction of upload bandwidth the peer shares itself.
    pub own_upload: f64,
}

/// Inputs to the editing/voting utility for one peer and one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EditingObservation {
    /// `E_succ`: number of successful (accepted) edits this step.
    pub successful_edits: u32,
    /// `V_succ`: number of successful (with-majority) votes this step.
    pub successful_votes: u32,
}

/// The complete utility model combining both resource classes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilityModel {
    /// Parameters of `U_S`.
    pub sharing: SharingUtilityParams,
    /// Parameters of `U_E`.
    pub editing: EditingUtilityParams,
}

impl UtilityModel {
    /// Creates a utility model from explicit parameter sets.
    pub fn new(sharing: SharingUtilityParams, editing: EditingUtilityParams) -> Self {
        Self { sharing, editing }
    }

    /// `U_S = α · UP_source · B − β · DS_articles − γ · UP_own`.
    pub fn sharing_utility(&self, obs: &SharingObservation) -> f64 {
        debug_assert!((0.0..=1.0).contains(&obs.bandwidth_share));
        self.sharing.alpha * obs.source_upload * obs.bandwidth_share
            - self.sharing.beta * obs.disk_share
            - self.sharing.gamma * obs.own_upload
    }

    /// `U_E = δ · E_succ + ε · V_succ`.
    pub fn editing_utility(&self, obs: &EditingObservation) -> f64 {
        self.editing.delta * f64::from(obs.successful_edits)
            + self.editing.epsilon * f64::from(obs.successful_votes)
    }

    /// Total utility of one step: `U_S + U_E`.
    pub fn total_utility(&self, sharing: &SharingObservation, editing: &EditingObservation) -> f64 {
        self.sharing_utility(sharing) + self.editing_utility(editing)
    }

    /// The utility of pure free-riding: sharing nothing while receiving the
    /// given bandwidth share. Used by the analysis examples to show when
    /// free-riding dominates sharing without service differentiation.
    pub fn freeride_utility(&self, source_upload: f64, bandwidth_share: f64) -> f64 {
        self.sharing_utility(&SharingObservation {
            source_upload,
            bandwidth_share,
            disk_share: 0.0,
            own_upload: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_utility_matches_formula() {
        let model = UtilityModel::new(
            SharingUtilityParams {
                alpha: 2.0,
                beta: 0.5,
                gamma: 1.0,
            },
            EditingUtilityParams::default(),
        );
        let obs = SharingObservation {
            source_upload: 1.0,
            bandwidth_share: 0.25,
            disk_share: 0.5,
            own_upload: 1.0,
        };
        let expected = 2.0 * 1.0 * 0.25 - 0.5 * 0.5 - 1.0 * 1.0;
        assert!((model.sharing_utility(&obs) - expected).abs() < 1e-12);
    }

    #[test]
    fn editing_utility_matches_formula() {
        let model = UtilityModel::new(
            SharingUtilityParams::default(),
            EditingUtilityParams {
                delta: 3.0,
                epsilon: 0.5,
            },
        );
        let obs = EditingObservation {
            successful_edits: 2,
            successful_votes: 4,
        };
        assert_eq!(model.editing_utility(&obs), 3.0 * 2.0 + 0.5 * 4.0);
    }

    #[test]
    fn utility_can_be_negative_for_uncompensated_sharing() {
        let model = UtilityModel::default();
        let obs = SharingObservation {
            source_upload: 0.0,
            bandwidth_share: 0.0,
            disk_share: 1.0,
            own_upload: 1.0,
        };
        assert!(model.sharing_utility(&obs) < 0.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let model = UtilityModel::default();
        let s = SharingObservation {
            source_upload: 1.0,
            bandwidth_share: 0.5,
            disk_share: 0.5,
            own_upload: 0.5,
        };
        let e = EditingObservation {
            successful_edits: 1,
            successful_votes: 1,
        };
        let total = model.total_utility(&s, &e);
        assert!((total - (model.sharing_utility(&s) + model.editing_utility(&e))).abs() < 1e-12);
    }

    #[test]
    fn freeriding_dominates_without_differentiation() {
        // If the bandwidth share does not depend on the peer's own sharing
        // (no service differentiation), then for any fixed share the
        // free-rider utility is at least as high as any sharing peer's.
        let model = UtilityModel::default();
        let share = 0.3;
        let freeride = model.freeride_utility(1.0, share);
        let sharer = model.sharing_utility(&SharingObservation {
            source_upload: 1.0,
            bandwidth_share: share,
            disk_share: 1.0,
            own_upload: 1.0,
        });
        assert!(freeride > sharer);
    }

    #[test]
    fn sharing_pays_off_under_differentiation() {
        // With service differentiation a high-reputation sharer receives a
        // much larger bandwidth share than a free-rider; with the default
        // coefficients the benefit outweighs the cost of sharing.
        let model = UtilityModel::default();
        let freeride = model.freeride_utility(1.0, 0.05);
        let sharer = model.sharing_utility(&SharingObservation {
            source_upload: 1.0,
            bandwidth_share: 0.6,
            disk_share: 1.0,
            own_upload: 1.0,
        });
        assert!(sharer > freeride);
    }

    #[test]
    fn default_params_are_positive() {
        let s = SharingUtilityParams::default();
        let e = EditingUtilityParams::default();
        assert!(s.alpha > 0.0 && s.beta > 0.0 && s.gamma > 0.0);
        assert!(e.delta > 0.0 && e.epsilon > 0.0);
    }
}
