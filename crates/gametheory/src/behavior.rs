//! Peer behaviour types and population mixes.
//!
//! Following Shneidman & Parkes (cited by the paper in Section II-A), peers
//! are classified as *altruistic* (contribute without weighing benefit
//! against cost), *rational* (maximise utility) or *irrational*
//! (unpredictable / anti-social: free-riding, vandalism, destructive votes).
//! The paper's evaluation sweeps the population mix of these three types
//! from 10 % to 100 % of one type, with the remaining share split equally
//! between the other two (Section IV-B) — [`BehaviorMix`] encodes exactly
//! that convention so the experiment harness and the figures use one shared
//! definition.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three standard behaviour types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BehaviorType {
    /// Learns (via Q-learning in the simulation) to maximise its own utility.
    Rational,
    /// Shares everything it can and always edits/votes constructively.
    Altruistic,
    /// Free-rides on sharing and edits/votes destructively.
    Irrational,
}

impl BehaviorType {
    /// All behaviour types, in a fixed canonical order.
    pub const ALL: [BehaviorType; 3] = [
        BehaviorType::Rational,
        BehaviorType::Altruistic,
        BehaviorType::Irrational,
    ];

    /// Short lowercase label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            BehaviorType::Rational => "rational",
            BehaviorType::Altruistic => "altruistic",
            BehaviorType::Irrational => "irrational",
        }
    }
}

impl fmt::Display for BehaviorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A population mix over the three behaviour types.
///
/// Fractions always sum to 1 (within floating-point tolerance); the
/// constructors enforce it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMix {
    rational: f64,
    altruistic: f64,
    irrational: f64,
}

impl BehaviorMix {
    /// Tolerance for the "fractions sum to one" invariant.
    const SUM_EPSILON: f64 = 1e-9;

    /// Creates a mix from explicit fractions.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the fractions do not sum to 1.
    pub fn new(rational: f64, altruistic: f64, irrational: f64) -> Self {
        assert!(
            rational >= 0.0 && altruistic >= 0.0 && irrational >= 0.0,
            "fractions must be non-negative"
        );
        let sum = rational + altruistic + irrational;
        assert!(
            (sum - 1.0).abs() < Self::SUM_EPSILON,
            "fractions must sum to 1, got {sum}"
        );
        Self {
            rational,
            altruistic,
            irrational,
        }
    }

    /// The paper's sweep convention (Section IV-B): `fraction` of the
    /// population is of `primary` type and the remaining share is split
    /// equally between the other two types.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn sweep(primary: BehaviorType, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        let rest = (1.0 - fraction) / 2.0;
        match primary {
            BehaviorType::Rational => Self::new(fraction, rest, rest),
            BehaviorType::Altruistic => Self::new(rest, fraction, rest),
            BehaviorType::Irrational => Self::new(rest, rest, fraction),
        }
    }

    /// A population consisting only of rational peers (Figure 3's setting).
    pub fn all_rational() -> Self {
        Self::new(1.0, 0.0, 0.0)
    }

    /// Fraction of rational peers.
    pub fn rational(&self) -> f64 {
        self.rational
    }

    /// Fraction of altruistic peers.
    pub fn altruistic(&self) -> f64 {
        self.altruistic
    }

    /// Fraction of irrational peers.
    pub fn irrational(&self) -> f64 {
        self.irrational
    }

    /// Fraction of the given behaviour type.
    pub fn fraction(&self, behavior: BehaviorType) -> f64 {
        match behavior {
            BehaviorType::Rational => self.rational,
            BehaviorType::Altruistic => self.altruistic,
            BehaviorType::Irrational => self.irrational,
        }
    }

    /// Deterministically assigns behaviour types to a population of
    /// `population` peers, matching the fractions as closely as integer
    /// counts allow (largest-remainder rounding, remainders going to the
    /// canonical order rational → altruistic → irrational).
    pub fn assign(&self, population: usize) -> Vec<BehaviorType> {
        let mut counts = [0usize; 3];
        let fracs = [self.rational, self.altruistic, self.irrational];
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(3);
        let mut assigned = 0usize;
        for (i, &f) in fracs.iter().enumerate() {
            let exact = f * population as f64;
            let floor = exact.floor() as usize;
            counts[i] = floor;
            assigned += floor;
            remainders.push((i, exact - floor as f64));
        }
        // Distribute the leftover peers to the types with the largest
        // fractional remainders.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut leftover = population - assigned;
        for &(i, _) in remainders.iter().cycle() {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        let mut out = Vec::with_capacity(population);
        for (i, &count) in counts.iter().enumerate() {
            let behavior = BehaviorType::ALL[i];
            out.extend(std::iter::repeat_n(behavior, count));
        }
        debug_assert_eq!(out.len(), population);
        out
    }

    /// Samples a behaviour type at random according to the mix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BehaviorType {
        let draw: f64 = rng.gen();
        if draw < self.rational {
            BehaviorType::Rational
        } else if draw < self.rational + self.altruistic {
            BehaviorType::Altruistic
        } else {
            BehaviorType::Irrational
        }
    }

    /// Which behaviour type holds the (strict) majority among altruistic and
    /// irrational peers, if any — the quantity the paper's Figure 7 analysis
    /// hinges on ("rational peers behave according to the majority").
    pub fn non_rational_majority(&self) -> Option<BehaviorType> {
        if self.altruistic > self.irrational {
            Some(BehaviorType::Altruistic)
        } else if self.irrational > self.altruistic {
            Some(BehaviorType::Irrational)
        } else {
            None
        }
    }
}

impl Default for BehaviorMix {
    fn default() -> Self {
        Self::all_rational()
    }
}

impl fmt::Display for BehaviorMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rational={:.0}% altruistic={:.0}% irrational={:.0}%",
            self.rational * 100.0,
            self.altruistic * 100.0,
            self.irrational * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_splits_remainder_equally() {
        let mix = BehaviorMix::sweep(BehaviorType::Rational, 0.1);
        assert!((mix.rational() - 0.1).abs() < 1e-12);
        assert!((mix.altruistic() - 0.45).abs() < 1e-12);
        assert!((mix.irrational() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn sweep_other_primaries() {
        let alt = BehaviorMix::sweep(BehaviorType::Altruistic, 0.6);
        assert!((alt.altruistic() - 0.6).abs() < 1e-12);
        assert!((alt.rational() - 0.2).abs() < 1e-12);
        let irr = BehaviorMix::sweep(BehaviorType::Irrational, 0.8);
        assert!((irr.irrational() - 0.8).abs() < 1e-12);
        assert!((irr.altruistic() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn new_rejects_bad_sum() {
        let _ = BehaviorMix::new(0.5, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_rejects_negative() {
        let _ = BehaviorMix::new(1.5, -0.5, 0.0);
    }

    #[test]
    fn assign_matches_population_size_and_fractions() {
        let mix = BehaviorMix::sweep(BehaviorType::Rational, 0.1);
        let assigned = mix.assign(100);
        assert_eq!(assigned.len(), 100);
        let rational = assigned
            .iter()
            .filter(|&&b| b == BehaviorType::Rational)
            .count();
        let altruistic = assigned
            .iter()
            .filter(|&&b| b == BehaviorType::Altruistic)
            .count();
        let irrational = assigned
            .iter()
            .filter(|&&b| b == BehaviorType::Irrational)
            .count();
        assert_eq!(rational, 10);
        assert_eq!(altruistic, 45);
        assert_eq!(irrational, 45);
    }

    #[test]
    fn assign_handles_non_divisible_population() {
        let mix = BehaviorMix::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0);
        let assigned = mix.assign(10);
        assert_eq!(assigned.len(), 10);
        for behavior in BehaviorType::ALL {
            let count = assigned.iter().filter(|&&b| b == behavior).count();
            assert!((3..=4).contains(&count), "{behavior}: {count}");
        }
    }

    #[test]
    fn assign_all_rational() {
        let assigned = BehaviorMix::all_rational().assign(7);
        assert!(assigned.iter().all(|&b| b == BehaviorType::Rational));
    }

    #[test]
    fn sample_respects_extreme_mix() {
        let mix = BehaviorMix::new(0.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut rng), BehaviorType::Altruistic);
        }
    }

    #[test]
    fn non_rational_majority_detection() {
        assert_eq!(
            BehaviorMix::sweep(BehaviorType::Altruistic, 0.6).non_rational_majority(),
            Some(BehaviorType::Altruistic)
        );
        assert_eq!(
            BehaviorMix::sweep(BehaviorType::Irrational, 0.6).non_rational_majority(),
            Some(BehaviorType::Irrational)
        );
        assert_eq!(
            BehaviorMix::sweep(BehaviorType::Rational, 0.5).non_rational_majority(),
            None
        );
    }

    #[test]
    fn display_formats_percentages() {
        let mix = BehaviorMix::sweep(BehaviorType::Rational, 0.2);
        let s = format!("{mix}");
        assert!(s.contains("rational=20%"));
        assert!(s.contains("altruistic=40%"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BehaviorType::Rational.label(), "rational");
        assert_eq!(BehaviorType::Altruistic.to_string(), "altruistic");
        assert_eq!(BehaviorType::Irrational.label(), "irrational");
    }
}
