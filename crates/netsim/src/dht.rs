//! Key-based article location (a Kademlia-style XOR-metric lookup).
//!
//! The collaboration network is "fully decentralized": there is no central
//! index mapping articles to the peers storing their replicas. This module
//! provides the structured lookup substrate: every peer and every article is
//! hashed into a 64-bit key space, article replicas are registered at the
//! peers whose keys are closest (XOR metric) to the article key, and lookups
//! walk greedily through the key space exactly like an iterative Kademlia
//! `FIND_VALUE`. The routing table is the simplified "global view" variant —
//! each peer knows a logarithmic sample of the population — which is
//! sufficient for simulation purposes while preserving the lookup behaviour
//! (O(log n) hops, locality by key distance).

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A key in the 64-bit DHT key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DhtKey(pub u64);

impl DhtKey {
    /// XOR distance between two keys (the Kademlia metric).
    pub fn distance(self, other: DhtKey) -> u64 {
        self.0 ^ other.0
    }

    /// Deterministically hashes an arbitrary 64-bit identifier into the key
    /// space (SplitMix64 finaliser — stable across platforms and runs).
    pub fn from_id(id: u64) -> Self {
        let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DhtKey(z ^ (z >> 31))
    }

    /// Key of a peer.
    pub fn for_peer(peer: PeerId) -> Self {
        Self::from_id(u64::from(peer.0) | 0x5045_4552_0000_0000) // "PEER" tag
    }

    /// Key of an article.
    pub fn for_article(article: u32) -> Self {
        Self::from_id(u64::from(article) | 0x4152_5400_0000_0000) // "ART" tag
    }
}

/// Statistics of one lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupResult {
    /// Peers holding a replica of the key, closest first.
    pub holders: Vec<PeerId>,
    /// Number of routing hops the iterative lookup took.
    pub hops: usize,
}

/// The DHT: key space membership, replica registry, and routing tables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dht {
    /// Peers participating in the DHT with their keys.
    members: Vec<(PeerId, DhtKey)>,
    /// Routing table per peer: a subset of members used for iterative hops.
    routing: HashMap<PeerId, Vec<PeerId>>,
    /// Replica registry: key → peers storing a replica.
    replicas: HashMap<DhtKey, HashSet<PeerId>>,
    /// Replication factor (number of closest peers asked to store a value).
    replication: usize,
}

impl Dht {
    /// Creates an empty DHT with the given replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero.
    pub fn new(replication: usize) -> Self {
        assert!(replication > 0, "replication factor must be positive");
        Self {
            replication,
            ..Default::default()
        }
    }

    /// Number of member peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the DHT has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Adds a peer to the DHT and (re)builds its routing table: each peer
    /// keeps its `⌈log2 n⌉ + replication` closest members plus a spread of
    /// exponentially spaced members for long hops.
    pub fn join(&mut self, peer: PeerId) {
        if self.members.iter().any(|&(p, _)| p == peer) {
            return;
        }
        self.members.push((peer, DhtKey::for_peer(peer)));
        self.rebuild_routing();
    }

    /// Removes a peer from the DHT (its replicas are dropped too).
    pub fn leave(&mut self, peer: PeerId) {
        self.members.retain(|&(p, _)| p != peer);
        self.routing.remove(&peer);
        for holders in self.replicas.values_mut() {
            holders.remove(&peer);
        }
        self.rebuild_routing();
    }

    fn rebuild_routing(&mut self) {
        self.routing.clear();
        let n = self.members.len();
        if n == 0 {
            return;
        }
        let table_size = (usize::BITS - n.leading_zeros()) as usize + self.replication;
        for &(peer, key) in &self.members {
            let mut others: Vec<(u64, PeerId)> = self
                .members
                .iter()
                .filter(|&&(p, _)| p != peer)
                .map(|&(p, k)| (key.distance(k), p))
                .collect();
            others.sort_unstable();
            let mut table: Vec<PeerId> = others.iter().take(table_size).map(|&(_, p)| p).collect();
            // Exponentially spaced far contacts for O(log n) routing.
            let mut stride = table_size.max(1);
            while stride < others.len() {
                table.push(others[stride].1);
                stride *= 2;
            }
            table.sort_unstable();
            table.dedup();
            self.routing.insert(peer, table);
        }
    }

    /// The peers whose keys are closest to `key`, up to the replication
    /// factor.
    pub fn closest_peers(&self, key: DhtKey) -> Vec<PeerId> {
        let mut members: Vec<(u64, PeerId)> = self
            .members
            .iter()
            .map(|&(p, k)| (key.distance(k), p))
            .collect();
        members.sort_unstable();
        members
            .into_iter()
            .take(self.replication)
            .map(|(_, p)| p)
            .collect()
    }

    /// Stores a value under `key`: the closest `replication` peers become
    /// holders. Returns the holder set.
    pub fn store(&mut self, key: DhtKey) -> Vec<PeerId> {
        let holders = self.closest_peers(key);
        self.replicas
            .entry(key)
            .or_default()
            .extend(holders.iter().copied());
        holders
    }

    /// Registers an explicit additional holder for a key (e.g. a peer that
    /// downloaded the article and now seeds it).
    pub fn add_holder(&mut self, key: DhtKey, peer: PeerId) {
        self.replicas.entry(key).or_default().insert(peer);
    }

    /// Current holders of a key, unordered.
    pub fn holders(&self, key: DhtKey) -> Vec<PeerId> {
        self.replicas
            .get(&key)
            .map(|set| {
                let mut v: Vec<PeerId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Iterative greedy lookup starting from `origin`: at every hop the
    /// query moves to the routing-table contact closest to the key, until no
    /// contact is closer (Kademlia convergence). Returns the holders known
    /// at the terminal peer's neighbourhood and the hop count.
    pub fn lookup(&self, origin: PeerId, key: DhtKey) -> LookupResult {
        let holders = self.holders(key);
        if self.members.is_empty() {
            return LookupResult { holders, hops: 0 };
        }
        let key_of = |peer: PeerId| {
            self.members
                .iter()
                .find(|&&(p, _)| p == peer)
                .map(|&(_, k)| k)
                .unwrap_or_else(|| DhtKey::for_peer(peer))
        };
        let mut current = origin;
        let mut current_distance = key_of(current).distance(key);
        let mut hops = 0usize;
        while let Some(contacts) = self.routing.get(&current) {
            let best = contacts.iter().map(|&p| (key_of(p).distance(key), p)).min();
            match best {
                Some((d, p)) if d < current_distance => {
                    current = p;
                    current_distance = d;
                    hops += 1;
                }
                _ => break,
            }
        }
        LookupResult { holders, hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dht_with(n: u32, replication: usize) -> Dht {
        let mut d = Dht::new(replication);
        for i in 0..n {
            d.join(PeerId(i));
        }
        d
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = DhtKey::for_peer(PeerId(1));
        let b = DhtKey::for_peer(PeerId(1));
        let c = DhtKey::for_peer(PeerId(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(DhtKey::for_article(1), DhtKey::for_peer(PeerId(1)));
    }

    #[test]
    fn xor_distance_properties() {
        let a = DhtKey(0b1010);
        let b = DhtKey(0b0110);
        assert_eq!(a.distance(b), 0b1100);
        assert_eq!(a.distance(a), 0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn join_is_idempotent() {
        let mut d = Dht::new(3);
        d.join(PeerId(0));
        d.join(PeerId(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn store_places_replication_factor_holders() {
        let mut d = dht_with(20, 3);
        let key = DhtKey::for_article(7);
        let holders = d.store(key);
        assert_eq!(holders.len(), 3);
        assert_eq!(d.holders(key).len(), 3);
        // Holders are exactly the closest peers.
        assert_eq!(
            holders.iter().copied().collect::<HashSet<_>>(),
            d.closest_peers(key).into_iter().collect::<HashSet<_>>()
        );
    }

    #[test]
    fn small_population_stores_on_everyone() {
        let mut d = dht_with(2, 5);
        let holders = d.store(DhtKey::for_article(1));
        assert_eq!(holders.len(), 2);
    }

    #[test]
    fn add_holder_registers_seeders() {
        let mut d = dht_with(5, 2);
        let key = DhtKey::for_article(3);
        d.store(key);
        d.add_holder(key, PeerId(4));
        assert!(d.holders(key).contains(&PeerId(4)));
    }

    #[test]
    fn leave_drops_replicas_and_membership() {
        let mut d = dht_with(6, 2);
        let key = DhtKey::for_article(9);
        let holders = d.store(key);
        let victim = holders[0];
        d.leave(victim);
        assert_eq!(d.len(), 5);
        assert!(!d.holders(key).contains(&victim));
    }

    #[test]
    fn lookup_finds_holders_and_converges() {
        let mut d = dht_with(64, 4);
        let key = DhtKey::for_article(42);
        d.store(key);
        let result = d.lookup(PeerId(0), key);
        assert_eq!(result.holders.len(), 4);
        // With 64 peers the greedy walk should need only a handful of hops.
        assert!(result.hops <= 8, "took {} hops", result.hops);
    }

    #[test]
    fn lookup_hop_count_scales_sublinearly() {
        let mut small = dht_with(16, 2);
        let mut large = dht_with(256, 2);
        let key = DhtKey::for_article(5);
        small.store(key);
        large.store(key);
        let hops_small = (0..16)
            .map(|i| small.lookup(PeerId(i), key).hops)
            .max()
            .unwrap();
        let hops_large = (0..256)
            .step_by(16)
            .map(|i| large.lookup(PeerId(i), key).hops)
            .max()
            .unwrap();
        // 16× more peers should cost far less than 16× more hops.
        assert!(
            hops_large <= hops_small * 4 + 4,
            "small={hops_small} large={hops_large}"
        );
    }

    #[test]
    fn lookup_on_empty_dht_is_trivial() {
        let d = Dht::new(2);
        let res = d.lookup(PeerId(0), DhtKey::for_article(1));
        assert!(res.holders.is_empty());
        assert_eq!(res.hops, 0);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn zero_replication_panics() {
        let _ = Dht::new(0);
    }
}
