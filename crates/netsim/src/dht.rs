//! Key-based article location (a Kademlia-style XOR-metric lookup).
//!
//! The collaboration network is "fully decentralized": there is no central
//! index mapping articles to the peers storing their replicas. This module
//! provides the structured lookup substrate: every peer and every article is
//! hashed into a 64-bit key space, article replicas are registered at the
//! peers whose keys are closest (XOR metric) to the article key, and lookups
//! walk greedily through the key space exactly like an iterative Kademlia
//! `FIND_VALUE`. The routing table is the simplified "global view" variant —
//! each peer knows a logarithmic sample of the population — which is
//! sufficient for simulation purposes while preserving the lookup behaviour
//! (O(log n) hops, locality by key distance).

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A key in the 64-bit DHT key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DhtKey(pub u64);

impl DhtKey {
    /// XOR distance between two keys (the Kademlia metric).
    pub fn distance(self, other: DhtKey) -> u64 {
        self.0 ^ other.0
    }

    /// Deterministically hashes an arbitrary 64-bit identifier into the key
    /// space (SplitMix64 finaliser — stable across platforms and runs).
    pub fn from_id(id: u64) -> Self {
        let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DhtKey(z ^ (z >> 31))
    }

    /// Key of a peer.
    pub fn for_peer(peer: PeerId) -> Self {
        Self::from_id(u64::from(peer.0) | 0x5045_4552_0000_0000) // "PEER" tag
    }

    /// Key of an article.
    pub fn for_article(article: u32) -> Self {
        Self::from_id(u64::from(article) | 0x4152_5400_0000_0000) // "ART" tag
    }
}

/// Statistics of one lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupResult {
    /// Peers holding a replica of the key, closest first.
    pub holders: Vec<PeerId>,
    /// Number of routing hops the iterative lookup took.
    pub hops: usize,
}

/// The DHT: key space membership, replica registry, and routing tables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dht {
    /// Peers participating in the DHT with their keys.
    members: Vec<(PeerId, DhtKey)>,
    /// Routing table per peer: a subset of members used for iterative hops.
    routing: HashMap<PeerId, Vec<PeerId>>,
    /// Replica registry: key → peers storing a replica.
    replicas: HashMap<DhtKey, HashSet<PeerId>>,
    /// Replication factor (number of closest peers asked to store a value).
    replication: usize,
}

impl Dht {
    /// Creates an empty DHT with the given replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero.
    pub fn new(replication: usize) -> Self {
        assert!(replication > 0, "replication factor must be positive");
        Self {
            replication,
            ..Default::default()
        }
    }

    /// Number of member peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the DHT has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The member peers in join order, for checkpointing (keys are a pure
    /// function of the peer id and are not exported).
    pub fn member_peers(&self) -> Vec<PeerId> {
        self.members.iter().map(|&(p, _)| p).collect()
    }

    /// The replica registry as `(key, holders)` pairs with both levels
    /// sorted, for checkpointing (the in-memory hash containers carry no
    /// meaningful order).
    pub fn replica_entries(&self) -> Vec<(DhtKey, Vec<PeerId>)> {
        let mut entries: Vec<(DhtKey, Vec<PeerId>)> = self
            .replicas
            .iter()
            .map(|(&key, set)| {
                let mut holders: Vec<PeerId> = set.iter().copied().collect();
                holders.sort_unstable();
                (key, holders)
            })
            .collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        entries
    }

    /// Rebuilds a DHT from checkpointed members and replicas. Routing
    /// tables are a pure function of the membership and are recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero.
    pub fn from_parts(
        replication: usize,
        members: Vec<PeerId>,
        replicas: Vec<(DhtKey, Vec<PeerId>)>,
    ) -> Self {
        assert!(replication > 0, "replication factor must be positive");
        let mut dht = Self {
            members: members
                .into_iter()
                .map(|p| (p, DhtKey::for_peer(p)))
                .collect(),
            routing: HashMap::new(),
            replicas: replicas
                .into_iter()
                .map(|(key, holders)| (key, holders.into_iter().collect()))
                .collect(),
            replication,
        };
        dht.rebuild_routing();
        dht
    }

    /// Adds a peer to the DHT and (re)builds its routing table: each peer
    /// keeps its `⌈log2 n⌉ + replication` closest members plus a spread of
    /// exponentially spaced members for long hops.
    pub fn join(&mut self, peer: PeerId) {
        if self.members.iter().any(|&(p, _)| p == peer) {
            return;
        }
        self.members.push((peer, DhtKey::for_peer(peer)));
        self.rebuild_routing();
    }

    /// Adds many peers at once, rebuilding the routing tables a single time
    /// at the end — for a population of `n` joining peers this is the
    /// difference between one `O(n log n)`-per-peer rebuild and `n` of
    /// them, which is what makes 10⁵-peer networks constructible. The final
    /// state is identical to calling [`Dht::join`] once per peer.
    pub fn join_many<I: IntoIterator<Item = PeerId>>(&mut self, peers: I) {
        let mut known: HashSet<PeerId> = self.members.iter().map(|&(p, _)| p).collect();
        let before = self.members.len();
        for peer in peers {
            if known.insert(peer) {
                self.members.push((peer, DhtKey::for_peer(peer)));
            }
        }
        if self.members.len() != before {
            self.rebuild_routing();
        }
    }

    /// Removes a peer from the DHT (its replicas are dropped too).
    pub fn leave(&mut self, peer: PeerId) {
        self.members.retain(|&(p, _)| p != peer);
        self.routing.remove(&peer);
        for holders in self.replicas.values_mut() {
            holders.remove(&peer);
        }
        self.rebuild_routing();
    }

    /// Population size up to which routing tables are built from the exact
    /// all-pairs XOR ranking. Above it, [`Dht::rebuild_routing_large`] uses
    /// the key-sorted-window approximation so a rebuild stays
    /// `O(n log n)` instead of `O(n² log n)`.
    const EXACT_ROUTING_MAX: usize = 2048;

    fn rebuild_routing(&mut self) {
        self.routing.clear();
        let n = self.members.len();
        if n == 0 {
            return;
        }
        let table_size = (usize::BITS - n.leading_zeros()) as usize + self.replication;
        if n > Self::EXACT_ROUTING_MAX {
            return self.rebuild_routing_large(table_size);
        }
        for &(peer, key) in &self.members {
            let mut others: Vec<(u64, PeerId)> = self
                .members
                .iter()
                .filter(|&&(p, _)| p != peer)
                .map(|&(p, k)| (key.distance(k), p))
                .collect();
            others.sort_unstable();
            let mut table: Vec<PeerId> = others.iter().take(table_size).map(|&(_, p)| p).collect();
            // Exponentially spaced far contacts for O(log n) routing.
            let mut stride = table_size.max(1);
            while stride < others.len() {
                table.push(others[stride].1);
                stride *= 2;
            }
            table.sort_unstable();
            table.dedup();
            self.routing.insert(peer, table);
        }
    }

    /// Large-population routing build: members are sorted by key once, each
    /// peer ranks a `2 × table_size` window of key-sorted neighbours by
    /// exact XOR distance (keys with small XOR distance share long common
    /// prefixes, so they are adjacent in sorted key order), and far
    /// contacts are taken at exponentially growing strides around the
    /// sorted ring. Deterministic in the membership, like the exact build.
    fn rebuild_routing_large(&mut self, table_size: usize) {
        let mut by_key: Vec<(DhtKey, PeerId)> = self.members.iter().map(|&(p, k)| (k, p)).collect();
        by_key.sort_unstable();
        let n = by_key.len();
        let window = table_size * 2;
        for (i, &(key, peer)) in by_key.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(n);
            let mut near: Vec<(u64, PeerId)> = by_key[lo..hi]
                .iter()
                .filter(|&&(_, p)| p != peer)
                .map(|&(k, p)| (key.distance(k), p))
                .collect();
            near.sort_unstable();
            near.truncate(table_size);
            let mut table: Vec<PeerId> = near.into_iter().map(|(_, p)| p).collect();
            let mut stride = table_size.max(1);
            while stride < n {
                table.push(by_key[(i + stride) % n].1);
                stride *= 2;
            }
            table.sort_unstable();
            table.dedup();
            table.retain(|&p| p != peer);
            self.routing.insert(peer, table);
        }
    }

    /// The peers whose keys are closest to `key`, up to the replication
    /// factor.
    pub fn closest_peers(&self, key: DhtKey) -> Vec<PeerId> {
        let mut members: Vec<(u64, PeerId)> = self
            .members
            .iter()
            .map(|&(p, k)| (key.distance(k), p))
            .collect();
        members.sort_unstable();
        members
            .into_iter()
            .take(self.replication)
            .map(|(_, p)| p)
            .collect()
    }

    /// Stores a value under `key`: the closest `replication` peers become
    /// holders. Returns the holder set.
    pub fn store(&mut self, key: DhtKey) -> Vec<PeerId> {
        let holders = self.closest_peers(key);
        self.replicas
            .entry(key)
            .or_default()
            .extend(holders.iter().copied());
        holders
    }

    /// Registers an explicit additional holder for a key (e.g. a peer that
    /// downloaded the article and now seeds it).
    pub fn add_holder(&mut self, key: DhtKey, peer: PeerId) {
        self.replicas.entry(key).or_default().insert(peer);
    }

    /// Current holders of a key, unordered.
    pub fn holders(&self, key: DhtKey) -> Vec<PeerId> {
        self.replicas
            .get(&key)
            .map(|set| {
                let mut v: Vec<PeerId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Iterative greedy lookup starting from `origin`: at every hop the
    /// query moves to the routing-table contact closest to the key, until no
    /// contact is closer (Kademlia convergence). Returns the holders known
    /// at the terminal peer's neighbourhood and the hop count.
    pub fn lookup(&self, origin: PeerId, key: DhtKey) -> LookupResult {
        let holders = self.holders(key);
        if self.members.is_empty() {
            return LookupResult { holders, hops: 0 };
        }
        let key_of = |peer: PeerId| {
            self.members
                .iter()
                .find(|&&(p, _)| p == peer)
                .map(|&(_, k)| k)
                .unwrap_or_else(|| DhtKey::for_peer(peer))
        };
        let mut current = origin;
        let mut current_distance = key_of(current).distance(key);
        let mut hops = 0usize;
        while let Some(contacts) = self.routing.get(&current) {
            let best = contacts.iter().map(|&p| (key_of(p).distance(key), p)).min();
            match best {
                Some((d, p)) if d < current_distance => {
                    current = p;
                    current_distance = d;
                    hops += 1;
                }
                _ => break,
            }
        }
        LookupResult { holders, hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dht_with(n: u32, replication: usize) -> Dht {
        let mut d = Dht::new(replication);
        for i in 0..n {
            d.join(PeerId(i));
        }
        d
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = DhtKey::for_peer(PeerId(1));
        let b = DhtKey::for_peer(PeerId(1));
        let c = DhtKey::for_peer(PeerId(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(DhtKey::for_article(1), DhtKey::for_peer(PeerId(1)));
    }

    #[test]
    fn xor_distance_properties() {
        let a = DhtKey(0b1010);
        let b = DhtKey(0b0110);
        assert_eq!(a.distance(b), 0b1100);
        assert_eq!(a.distance(a), 0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn join_is_idempotent() {
        let mut d = Dht::new(3);
        d.join(PeerId(0));
        d.join(PeerId(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn store_places_replication_factor_holders() {
        let mut d = dht_with(20, 3);
        let key = DhtKey::for_article(7);
        let holders = d.store(key);
        assert_eq!(holders.len(), 3);
        assert_eq!(d.holders(key).len(), 3);
        // Holders are exactly the closest peers.
        assert_eq!(
            holders.iter().copied().collect::<HashSet<_>>(),
            d.closest_peers(key).into_iter().collect::<HashSet<_>>()
        );
    }

    #[test]
    fn small_population_stores_on_everyone() {
        let mut d = dht_with(2, 5);
        let holders = d.store(DhtKey::for_article(1));
        assert_eq!(holders.len(), 2);
    }

    #[test]
    fn add_holder_registers_seeders() {
        let mut d = dht_with(5, 2);
        let key = DhtKey::for_article(3);
        d.store(key);
        d.add_holder(key, PeerId(4));
        assert!(d.holders(key).contains(&PeerId(4)));
    }

    #[test]
    fn leave_drops_replicas_and_membership() {
        let mut d = dht_with(6, 2);
        let key = DhtKey::for_article(9);
        let holders = d.store(key);
        let victim = holders[0];
        d.leave(victim);
        assert_eq!(d.len(), 5);
        assert!(!d.holders(key).contains(&victim));
    }

    #[test]
    fn lookup_finds_holders_and_converges() {
        let mut d = dht_with(64, 4);
        let key = DhtKey::for_article(42);
        d.store(key);
        let result = d.lookup(PeerId(0), key);
        assert_eq!(result.holders.len(), 4);
        // With 64 peers the greedy walk should need only a handful of hops.
        assert!(result.hops <= 8, "took {} hops", result.hops);
    }

    #[test]
    fn lookup_hop_count_scales_sublinearly() {
        let mut small = dht_with(16, 2);
        let mut large = dht_with(256, 2);
        let key = DhtKey::for_article(5);
        small.store(key);
        large.store(key);
        let hops_small = (0..16)
            .map(|i| small.lookup(PeerId(i), key).hops)
            .max()
            .unwrap();
        let hops_large = (0..256)
            .step_by(16)
            .map(|i| large.lookup(PeerId(i), key).hops)
            .max()
            .unwrap();
        // 16× more peers should cost far less than 16× more hops.
        assert!(
            hops_large <= hops_small * 4 + 4,
            "small={hops_small} large={hops_large}"
        );
    }

    #[test]
    fn lookup_on_empty_dht_is_trivial() {
        let d = Dht::new(2);
        let res = d.lookup(PeerId(0), DhtKey::for_article(1));
        assert!(res.holders.is_empty());
        assert_eq!(res.hops, 0);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn zero_replication_panics() {
        let _ = Dht::new(0);
    }

    #[test]
    fn join_many_matches_incremental_joins() {
        let mut incremental = Dht::new(3);
        for i in 0..50 {
            incremental.join(PeerId(i));
        }
        let mut batched = Dht::new(3);
        batched.join_many((0..50).map(PeerId));
        assert_eq!(incremental, batched);
        // Duplicates and re-joins are ignored, with or without a rebuild.
        batched.join_many([PeerId(0), PeerId(10), PeerId(10)]);
        assert_eq!(incremental, batched);
        batched.join_many(std::iter::empty());
        assert_eq!(incremental, batched);
    }

    #[test]
    fn large_population_routing_still_converges() {
        // Above EXACT_ROUTING_MAX the windowed routing build kicks in;
        // lookups must still terminate in few hops and find the holders.
        let mut d = Dht::new(3);
        d.join_many((0..4096).map(PeerId));
        let key = DhtKey::for_article(123);
        d.store(key);
        assert_eq!(d.holders(key).len(), 3);
        for origin in (0..4096).step_by(511) {
            let result = d.lookup(PeerId(origin), key);
            assert_eq!(result.holders.len(), 3);
            assert!(result.hops <= 24, "took {} hops", result.hops);
        }
    }
}
