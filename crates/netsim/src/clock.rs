//! The discrete time-step clock.
//!
//! "In the model, time is discretized" (Section IV). All components of the
//! substrate and the incentive layer share one [`SimClock`] so step counts,
//! phase boundaries (training vs. evaluation) and decay bookkeeping agree.

use serde::{Deserialize, Serialize};

/// A monotonically advancing discrete clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// Creates a clock at step 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at an arbitrary step (useful for resuming).
    pub fn starting_at(step: u64) -> Self {
        Self { now: step }
    }

    /// The current step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by one step and returns the new value.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `steps`.
    pub fn advance(&mut self, steps: u64) -> u64 {
        self.now += steps;
        self.now
    }

    /// Number of steps elapsed since `earlier` (saturating).
    pub fn elapsed_since(&self, earlier: u64) -> u64 {
        self.now.saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn advance_and_elapsed() {
        let mut c = SimClock::starting_at(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
        assert_eq!(c.elapsed_since(12), 3);
        assert_eq!(c.elapsed_since(100), 0);
    }
}
