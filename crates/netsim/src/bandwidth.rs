//! Upload-bandwidth allocation among concurrent downloaders.
//!
//! This is the resource the incentive scheme differentiates: "if several
//! peers want to download a file from the same source, they compete for the
//! source's upload bandwidth" (Section III-C1). The allocator takes the set
//! of download requests directed at one source in one time step and splits
//! the source's offered upload bandwidth among them according to a policy:
//!
//! * [`AllocationPolicy::EqualSplit`] — the no-incentive baseline,
//! * [`AllocationPolicy::WeightedByReputation`] — the paper's rule
//!   `B_i = R_S^i / Σ_k R_S^k`,
//! * [`AllocationPolicy::TitForTat`] — a BitTorrent-style direct-relation
//!   policy: bandwidth is split proportionally to what the downloader has
//!   previously uploaded *to this source* (the baseline the paper argues
//!   cannot work for non-direct relations).
//!
//! Allocated bandwidth is additionally capped by each downloader's own
//! download capacity; freed capacity is redistributed among the un-capped
//! downloaders (water-filling), so the source's bandwidth is never wasted
//! while any downloader could still use it.

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A request by `downloader` to download from a source during one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownloadRequest {
    /// The requesting peer.
    pub downloader: PeerId,
    /// The requester's sharing reputation `R_S` (used by the reputation
    /// policy).
    pub sharing_reputation: f64,
    /// The requester's remaining download capacity this step.
    pub download_capacity: f64,
    /// Bandwidth this requester has historically uploaded to the source
    /// (used by the tit-for-tat policy).
    pub uploaded_to_source: f64,
}

/// How a source's upload bandwidth is divided among its downloaders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Every downloader gets an equal share (no incentive).
    EqualSplit,
    /// Shares proportional to sharing reputation (the paper's scheme).
    WeightedByReputation,
    /// Shares proportional to bandwidth previously uploaded to this source
    /// (direct-relation tit-for-tat).
    TitForTat,
}

/// One downloader's allocation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The downloader.
    pub downloader: PeerId,
    /// Fraction of the source's offered upload bandwidth granted
    /// (before capacity capping).
    pub share: f64,
    /// Absolute bandwidth granted after capping by the downloader's
    /// capacity and redistributing the excess.
    pub bandwidth: f64,
}

/// Reusable scratch buffers for [`BandwidthAllocator::allocate_into`].
///
/// One scratch per worker lets the parallel grant stage of the download
/// phase run every per-source allocation without a single heap allocation
/// in steady state.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    /// Policy shares of the current request set (also the water-filling
    /// weights — the shares never change during the fill).
    shares: Vec<f64>,
    /// Remaining download capacity per requester.
    capacity: Vec<f64>,
}

/// The bandwidth allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthAllocator {
    policy: AllocationPolicy,
}

impl BandwidthAllocator {
    /// Creates an allocator with the given policy.
    pub fn new(policy: AllocationPolicy) -> Self {
        Self { policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Raw (pre-capacity) shares for a request set according to the
    /// policy, written into `out` (cleared first). Shares sum to 1 unless
    /// the request set is empty.
    pub fn shares_into(&self, requests: &[DownloadRequest], out: &mut Vec<f64>) {
        out.clear();
        if requests.is_empty() {
            return;
        }
        match self.policy {
            AllocationPolicy::EqualSplit => out.extend(requests.iter().map(|_| 1.0)),
            AllocationPolicy::WeightedByReputation => {
                out.extend(requests.iter().map(|r| r.sharing_reputation.max(0.0)));
            }
            AllocationPolicy::TitForTat => {
                out.extend(requests.iter().map(|r| r.uploaded_to_source.max(0.0)));
            }
        }
        let sum: f64 = out.iter().sum();
        if sum <= 0.0 {
            // Degenerate case (all-zero weights): fall back to equal split so
            // the source's bandwidth is not wasted.
            out.fill(1.0 / requests.len() as f64);
            return;
        }
        for w in out.iter_mut() {
            *w /= sum;
        }
    }

    /// Raw (pre-capacity) shares for a request set according to the policy.
    /// Shares sum to 1 unless the request set is empty.
    pub fn shares(&self, requests: &[DownloadRequest]) -> Vec<f64> {
        let mut out = Vec::new();
        self.shares_into(requests, &mut out);
        out
    }

    /// Allocation into reusable buffers: identical arithmetic to
    /// [`BandwidthAllocator::allocate`], but the per-call share/capacity
    /// vectors live in `scratch` and the `requests.len()` resulting
    /// [`Allocation`]s are **appended** to `out`, so a caller looping over
    /// many sources (the download phase's grant stage) performs no
    /// steady-state allocation.
    pub fn allocate_into(
        &self,
        offered_upload: f64,
        requests: &[DownloadRequest],
        scratch: &mut AllocScratch,
        out: &mut Vec<Allocation>,
    ) {
        assert!(offered_upload >= 0.0, "offered upload must be >= 0");
        self.shares_into(requests, &mut scratch.shares);
        let base = out.len();
        out.extend(
            requests
                .iter()
                .zip(scratch.shares.iter())
                .map(|(r, &share)| Allocation {
                    downloader: r.downloader,
                    share,
                    bandwidth: 0.0,
                }),
        );
        if requests.is_empty() || offered_upload <= 0.0 {
            return;
        }
        let allocations = &mut out[base..];

        // Water-filling: repeatedly hand out bandwidth proportionally to the
        // policy shares among downloaders that still have spare capacity.
        scratch.capacity.clear();
        scratch
            .capacity
            .extend(requests.iter().map(|r| r.download_capacity.max(0.0)));
        let weights = &scratch.shares;
        let remaining_capacity = &mut scratch.capacity;
        let mut budget = offered_upload;
        for _ in 0..requests.len() {
            let active_weight: f64 = weights
                .iter()
                .zip(remaining_capacity.iter())
                .filter(|&(_, &cap)| cap > 1e-15)
                .map(|(&w, _)| w)
                .sum();
            if budget <= 1e-15 || active_weight <= 1e-15 {
                break;
            }
            let mut distributed = 0.0;
            for i in 0..requests.len() {
                if remaining_capacity[i] <= 1e-15 || weights[i] <= 0.0 {
                    continue;
                }
                let offer = budget * weights[i] / active_weight;
                let granted = offer.min(remaining_capacity[i]);
                allocations[i].bandwidth += granted;
                remaining_capacity[i] -= granted;
                distributed += granted;
            }
            budget -= distributed;
            if distributed <= 1e-15 {
                break;
            }
        }
    }

    /// Full allocation: splits `offered_upload` according to the policy,
    /// caps each downloader at its capacity, and redistributes freed
    /// bandwidth among the remaining downloaders (water-filling).
    pub fn allocate(&self, offered_upload: f64, requests: &[DownloadRequest]) -> Vec<Allocation> {
        let mut out = Vec::new();
        self.allocate_into(
            offered_upload,
            requests,
            &mut AllocScratch::default(),
            &mut out,
        );
        out
    }

    /// Convenience: allocation results keyed by downloader.
    pub fn allocate_map(
        &self,
        offered_upload: f64,
        requests: &[DownloadRequest],
    ) -> HashMap<PeerId, Allocation> {
        self.allocate(offered_upload, requests)
            .into_iter()
            .map(|a| (a.downloader, a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u32, reputation: f64) -> DownloadRequest {
        DownloadRequest {
            downloader: PeerId(id),
            sharing_reputation: reputation,
            download_capacity: 1.0,
            uploaded_to_source: 0.0,
        }
    }

    #[test]
    fn equal_split_ignores_reputation() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::EqualSplit);
        let reqs = [request(0, 0.05), request(1, 0.9)];
        let shares = alloc.shares(&reqs);
        assert_eq!(shares, vec![0.5, 0.5]);
    }

    #[test]
    fn reputation_policy_matches_paper_formula() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
        let reqs = [request(0, 0.1), request(1, 0.3), request(2, 0.6)];
        let shares = alloc.shares(&reqs);
        assert!((shares[0] - 0.1).abs() < 1e-12);
        assert!((shares[1] - 0.3).abs() < 1e-12);
        assert!((shares[2] - 0.6).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tit_for_tat_uses_direct_history() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::TitForTat);
        let reqs = [
            DownloadRequest {
                downloader: PeerId(0),
                sharing_reputation: 0.9, // ignored by TFT
                download_capacity: 1.0,
                uploaded_to_source: 0.0,
            },
            DownloadRequest {
                downloader: PeerId(1),
                sharing_reputation: 0.05,
                download_capacity: 1.0,
                uploaded_to_source: 3.0,
            },
        ];
        let shares = alloc.shares(&reqs);
        assert_eq!(shares[0], 0.0);
        assert_eq!(shares[1], 1.0);
    }

    #[test]
    fn zero_weights_fall_back_to_equal_split() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::TitForTat);
        let reqs = [request(0, 0.5), request(1, 0.5), request(2, 0.5)];
        let shares = alloc.shares(&reqs);
        for s in shares {
            assert!((s - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn allocation_splits_offered_bandwidth() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
        let reqs = [request(0, 0.25), request(1, 0.75)];
        let result = alloc.allocate(1.0, &reqs);
        assert!((result[0].bandwidth - 0.25).abs() < 1e-12);
        assert!((result[1].bandwidth - 0.75).abs() < 1e-12);
        let total: f64 = result.iter().map(|a| a.bandwidth).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_cap_redistributes_to_others() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::EqualSplit);
        let reqs = [
            DownloadRequest {
                downloader: PeerId(0),
                sharing_reputation: 0.5,
                download_capacity: 0.1, // can only take 0.1
                uploaded_to_source: 0.0,
            },
            DownloadRequest {
                downloader: PeerId(1),
                sharing_reputation: 0.5,
                download_capacity: 1.0,
                uploaded_to_source: 0.0,
            },
        ];
        let result = alloc.allocate(1.0, &reqs);
        assert!((result[0].bandwidth - 0.1).abs() < 1e-12);
        assert!((result[1].bandwidth - 0.9).abs() < 1e-12);
    }

    #[test]
    fn nothing_offered_allocates_nothing() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::EqualSplit);
        let reqs = [request(0, 0.5)];
        let result = alloc.allocate(0.0, &reqs);
        assert_eq!(result[0].bandwidth, 0.0);
    }

    #[test]
    fn empty_request_set_is_empty() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::EqualSplit);
        assert!(alloc.allocate(1.0, &[]).is_empty());
        assert!(alloc.shares(&[]).is_empty());
    }

    #[test]
    fn total_never_exceeds_offer_or_capacity() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
        let reqs = [
            DownloadRequest {
                downloader: PeerId(0),
                sharing_reputation: 0.9,
                download_capacity: 0.2,
                uploaded_to_source: 0.0,
            },
            DownloadRequest {
                downloader: PeerId(1),
                sharing_reputation: 0.1,
                download_capacity: 0.2,
                uploaded_to_source: 0.0,
            },
        ];
        let result = alloc.allocate(1.0, &reqs);
        let total: f64 = result.iter().map(|a| a.bandwidth).sum();
        assert!(total <= 0.4 + 1e-12);
        for a in &result {
            assert!(a.bandwidth <= 0.2 + 1e-12);
        }
    }

    #[test]
    fn allocate_into_appends_and_matches_allocate_bitwise() {
        let reqs_a = [request(0, 0.1), request(1, 0.3), request(2, 0.6)];
        let reqs_b = [
            DownloadRequest {
                downloader: PeerId(3),
                sharing_reputation: 0.9,
                download_capacity: 0.2,
                uploaded_to_source: 0.0,
            },
            DownloadRequest {
                downloader: PeerId(4),
                sharing_reputation: 0.1,
                download_capacity: 0.2,
                uploaded_to_source: 0.0,
            },
        ];
        for policy in [
            AllocationPolicy::EqualSplit,
            AllocationPolicy::WeightedByReputation,
            AllocationPolicy::TitForTat,
        ] {
            let alloc = BandwidthAllocator::new(policy);
            // One scratch reused across sources, results appended.
            let mut scratch = AllocScratch::default();
            let mut out = Vec::new();
            alloc.allocate_into(0.8, &reqs_a, &mut scratch, &mut out);
            alloc.allocate_into(1.0, &reqs_b, &mut scratch, &mut out);
            let reference: Vec<Allocation> = alloc
                .allocate(0.8, &reqs_a)
                .into_iter()
                .chain(alloc.allocate(1.0, &reqs_b))
                .collect();
            assert_eq!(out.len(), reference.len());
            for (got, want) in out.iter().zip(reference.iter()) {
                assert_eq!(got.downloader, want.downloader);
                assert_eq!(got.share.to_bits(), want.share.to_bits());
                assert_eq!(got.bandwidth.to_bits(), want.bandwidth.to_bits());
            }
        }
    }

    #[test]
    fn allocate_map_keys_by_downloader() {
        let alloc = BandwidthAllocator::new(AllocationPolicy::EqualSplit);
        let reqs = [request(7, 0.5), request(9, 0.5)];
        let map = alloc.allocate_map(1.0, &reqs);
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(&PeerId(7)));
        assert!((map[&PeerId(9)].bandwidth - 0.5).abs() < 1e-12);
    }

    #[test]
    fn high_reputation_peer_beats_equal_split() {
        // The incentive at work: with differentiation the contributor gets
        // more than under the equal split, the free-rider less.
        let reqs = [request(0, 0.05), request(1, 0.05), request(2, 0.9)];
        let with =
            BandwidthAllocator::new(AllocationPolicy::WeightedByReputation).allocate(1.0, &reqs);
        let without = BandwidthAllocator::new(AllocationPolicy::EqualSplit).allocate(1.0, &reqs);
        assert!(with[2].bandwidth > without[2].bandwidth);
        assert!(with[0].bandwidth < without[0].bandwidth);
    }
}
