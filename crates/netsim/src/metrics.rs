//! Network-level metrics.
//!
//! The evaluation of the paper reports *percentages of shared files and
//! bandwidth per user* (and per rational user), plus the constructive /
//! destructive edit ratios. [`NetworkMetrics`] accumulates the per-step
//! observations the simulation engine emits and computes those aggregates;
//! it is deliberately dependency-free so the same sink can be filled from
//! the incentive simulation, the baselines and the ablations.

use serde::{Deserialize, Serialize};

/// A single peer's observation for one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StepObservation {
    /// Fraction of upload bandwidth the peer shared this step (0..=1).
    pub shared_bandwidth_fraction: f64,
    /// Fraction of its article capacity the peer offered this step (0..=1).
    pub shared_articles_fraction: f64,
    /// Bandwidth the peer received from downloads this step.
    pub downloaded: f64,
    /// Whether the peer attempted a constructive edit this step.
    pub constructive_edit: bool,
    /// Whether the peer attempted a destructive edit this step.
    pub destructive_edit: bool,
    /// Whether the peer cast a vote this step.
    pub voted: bool,
}

/// Streaming mean helper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated network metrics over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkMetrics {
    shared_bandwidth: RunningMean,
    shared_articles: RunningMean,
    downloaded: RunningMean,
    constructive_edits: u64,
    destructive_edits: u64,
    votes: u64,
    steps: u64,
}

impl NetworkMetrics {
    /// Creates an empty metrics sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one peer-step observation.
    pub fn record(&mut self, obs: &StepObservation) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&obs.shared_bandwidth_fraction));
        debug_assert!((0.0..=1.0 + 1e-9).contains(&obs.shared_articles_fraction));
        self.shared_bandwidth.push(obs.shared_bandwidth_fraction);
        self.shared_articles.push(obs.shared_articles_fraction);
        self.downloaded.push(obs.downloaded);
        if obs.constructive_edit {
            self.constructive_edits += 1;
        }
        if obs.destructive_edit {
            self.destructive_edits += 1;
        }
        if obs.voted {
            self.votes += 1;
        }
        self.steps += 1;
    }

    /// Merges another sink into this one (used when per-thread sinks are
    /// combined after a parallel sweep).
    pub fn merge(&mut self, other: &NetworkMetrics) {
        self.shared_bandwidth.sum += other.shared_bandwidth.sum;
        self.shared_bandwidth.count += other.shared_bandwidth.count;
        self.shared_articles.sum += other.shared_articles.sum;
        self.shared_articles.count += other.shared_articles.count;
        self.downloaded.sum += other.downloaded.sum;
        self.downloaded.count += other.downloaded.count;
        self.constructive_edits += other.constructive_edits;
        self.destructive_edits += other.destructive_edits;
        self.votes += other.votes;
        self.steps += other.steps;
    }

    /// Number of peer-step observations recorded.
    pub fn observations(&self) -> u64 {
        self.steps
    }

    /// Mean fraction of shared bandwidth per peer-step — the paper's
    /// "percentage of shared bandwidth per user".
    pub fn mean_shared_bandwidth(&self) -> f64 {
        self.shared_bandwidth.mean()
    }

    /// Mean fraction of shared articles per peer-step — the paper's
    /// "percentage of shared files per user".
    pub fn mean_shared_articles(&self) -> f64 {
        self.shared_articles.mean()
    }

    /// Mean downloaded bandwidth per peer-step.
    pub fn mean_downloaded(&self) -> f64 {
        self.downloaded.mean()
    }

    /// Total constructive edit attempts observed.
    pub fn constructive_edits(&self) -> u64 {
        self.constructive_edits
    }

    /// Total destructive edit attempts observed.
    pub fn destructive_edits(&self) -> u64 {
        self.destructive_edits
    }

    /// Total votes observed.
    pub fn votes(&self) -> u64 {
        self.votes
    }

    /// Fraction of edit attempts that were constructive (0 when no edits).
    pub fn constructive_edit_fraction(&self) -> f64 {
        let total = self.constructive_edits + self.destructive_edits;
        if total == 0 {
            0.0
        } else {
            self.constructive_edits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bandwidth: f64, articles: f64) -> StepObservation {
        StepObservation {
            shared_bandwidth_fraction: bandwidth,
            shared_articles_fraction: articles,
            downloaded: 0.0,
            constructive_edit: false,
            destructive_edit: false,
            voted: false,
        }
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = NetworkMetrics::new();
        assert_eq!(m.observations(), 0);
        assert_eq!(m.mean_shared_bandwidth(), 0.0);
        assert_eq!(m.mean_shared_articles(), 0.0);
        assert_eq!(m.constructive_edit_fraction(), 0.0);
    }

    #[test]
    fn means_average_over_observations() {
        let mut m = NetworkMetrics::new();
        m.record(&obs(1.0, 0.0));
        m.record(&obs(0.0, 1.0));
        m.record(&obs(0.5, 0.5));
        assert_eq!(m.observations(), 3);
        assert!((m.mean_shared_bandwidth() - 0.5).abs() < 1e-12);
        assert!((m.mean_shared_articles() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edit_and_vote_counters() {
        let mut m = NetworkMetrics::new();
        m.record(&StepObservation {
            constructive_edit: true,
            voted: true,
            ..obs(0.0, 0.0)
        });
        m.record(&StepObservation {
            destructive_edit: true,
            ..obs(0.0, 0.0)
        });
        m.record(&StepObservation {
            constructive_edit: true,
            ..obs(0.0, 0.0)
        });
        assert_eq!(m.constructive_edits(), 2);
        assert_eq!(m.destructive_edits(), 1);
        assert_eq!(m.votes(), 1);
        assert!((m.constructive_edit_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_sinks() {
        let mut a = NetworkMetrics::new();
        a.record(&obs(1.0, 1.0));
        let mut b = NetworkMetrics::new();
        b.record(&obs(0.0, 0.0));
        b.record(&StepObservation {
            destructive_edit: true,
            downloaded: 2.0,
            ..obs(0.0, 0.0)
        });
        a.merge(&b);
        assert_eq!(a.observations(), 3);
        assert!((a.mean_shared_bandwidth() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.destructive_edits(), 1);
        assert!((a.mean_downloaded() - 2.0 / 3.0).abs() < 1e-12);
    }
}
