//! Peer churn: joins, departures and whitewashing.
//!
//! The paper's simulation uses a fixed population of 100 peers, but its
//! design discussion depends on churn: the minimum reputation `R_min` must
//! be low enough that *whitewashing* — leaving and rejoining under a fresh
//! identity to shed a bad reputation — does not pay off. The churn model
//! generates join/leave/whitewash events per time step so the scheme can be
//! exercised under a dynamic population, and so the whitewashing ablation
//! has a concrete adversary to measure.

use crate::peer::PeerId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A brand-new peer joins the network.
    Join,
    /// An existing peer goes offline.
    Leave(PeerId),
    /// An existing peer whitewashes: it leaves and immediately rejoins with
    /// a fresh identity (the old identifier goes offline, a new one joins).
    Whitewash(PeerId),
}

/// Per-step churn probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Probability that a new peer joins in a given step.
    pub join_probability: f64,
    /// Per-peer probability of leaving in a given step.
    pub leave_probability: f64,
    /// Per-peer probability of whitewashing in a given step.
    pub whitewash_probability: f64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        // The paper's own simulation is churn-free; these defaults keep that
        // behaviour unless an experiment opts in.
        Self::stable()
    }
}

impl ChurnModel {
    /// No churn at all (the paper's setting).
    pub fn stable() -> Self {
        Self {
            join_probability: 0.0,
            leave_probability: 0.0,
            whitewash_probability: 0.0,
        }
    }

    /// A mild churn regime: occasional joins and departures.
    pub fn mild() -> Self {
        Self {
            join_probability: 0.05,
            leave_probability: 0.002,
            whitewash_probability: 0.0,
        }
    }

    /// An adversarial regime where free-riders whitewash aggressively.
    pub fn whitewashing(probability: f64) -> Self {
        Self {
            join_probability: 0.0,
            leave_probability: 0.0,
            whitewash_probability: probability,
        }
    }

    /// Validates the probability ranges, naming the offending field in the
    /// error message.
    pub fn check(&self) -> Result<(), String> {
        for (name, p) in [
            ("join", self.join_probability),
            ("leave", self.leave_probability),
            ("whitewash", self.whitewash_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability must lie in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// Panicking shim around [`ChurnModel::check`] for callers that treat a
    /// bad model as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }

    /// Whether this model produces no events at all.
    pub fn is_stable(&self) -> bool {
        self.join_probability == 0.0
            && self.leave_probability == 0.0
            && self.whitewash_probability == 0.0
    }

    /// Samples the churn events for one time step given the currently
    /// online peers. At most one event per online peer plus at most one
    /// join is generated per step.
    pub fn sample_step<R: Rng + ?Sized>(
        &self,
        online_peers: &[PeerId],
        rng: &mut R,
    ) -> Vec<ChurnEvent> {
        self.validate();
        let mut events = Vec::new();
        if self.is_stable() {
            return events;
        }
        if rng.gen_bool(self.join_probability) {
            events.push(ChurnEvent::Join);
        }
        for &peer in online_peers {
            if self.whitewash_probability > 0.0 && rng.gen_bool(self.whitewash_probability) {
                events.push(ChurnEvent::Whitewash(peer));
            } else if self.leave_probability > 0.0 && rng.gen_bool(self.leave_probability) {
                events.push(ChurnEvent::Leave(peer));
            }
        }
        events
    }
}

/// A deterministic queue of *timed* re-entries: "peer `p` comes back online
/// at step `t`".
///
/// The probabilistic [`ChurnModel`] covers background churn; adversarial
/// strategies (timed whitewashing, lie-low-then-return cycles) need churn
/// events at *chosen* times instead. The schedule is a plain insertion-order
/// queue — no randomness, no hashing — so draining it is a pure function of
/// the schedule calls, which keeps strategy-driven churn bit-reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReentrySchedule {
    entries: Vec<(u64, PeerId)>,
}

impl ReentrySchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `peer` to re-enter at step `at` (multiple entries per peer
    /// are allowed; each fires once).
    pub fn schedule(&mut self, at: u64, peer: PeerId) {
        self.entries.push((at, peer));
    }

    /// Moves every entry due at or before `now` into `out`, in scheduling
    /// order. Entries that are not yet due stay queued.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<PeerId>) {
        let mut kept = 0usize;
        for i in 0..self.entries.len() {
            let (at, peer) = self.entries[i];
            if at <= now {
                out.push(peer);
            } else {
                self.entries[kept] = (at, peer);
                kept += 1;
            }
        }
        self.entries.truncate(kept);
    }

    /// The earliest step any queued entry is due at.
    pub fn next_due(&self) -> Option<u64> {
        self.entries.iter().map(|&(at, _)| at).min()
    }

    /// Whether `peer` has at least one queued entry.
    pub fn is_scheduled(&self, peer: PeerId) -> bool {
        self.entries.iter().any(|&(_, p)| p == peer)
    }

    /// The queued `(due step, peer)` entries in scheduling order, for
    /// checkpointing.
    pub fn entries(&self) -> &[(u64, PeerId)] {
        &self.entries
    }

    /// Rebuilds a schedule from checkpointed entries, preserving order.
    pub fn from_entries(entries: Vec<(u64, PeerId)>) -> Self {
        Self { entries }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn peers(n: u32) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn stable_model_generates_nothing() {
        let model = ChurnModel::stable();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(model.sample_step(&peers(50), &mut rng).is_empty());
        }
        assert!(model.is_stable());
    }

    #[test]
    fn certain_leave_empties_the_network() {
        let model = ChurnModel {
            join_probability: 0.0,
            leave_probability: 1.0,
            whitewash_probability: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let events = model.sample_step(&peers(5), &mut rng);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| matches!(e, ChurnEvent::Leave(_))));
    }

    #[test]
    fn whitewash_takes_priority_over_leave() {
        let model = ChurnModel {
            join_probability: 0.0,
            leave_probability: 1.0,
            whitewash_probability: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let events = model.sample_step(&peers(4), &mut rng);
        assert!(events.iter().all(|e| matches!(e, ChurnEvent::Whitewash(_))));
    }

    #[test]
    fn joins_are_at_most_one_per_step() {
        let model = ChurnModel {
            join_probability: 1.0,
            leave_probability: 0.0,
            whitewash_probability: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let events = model.sample_step(&peers(10), &mut rng);
        assert_eq!(events, vec![ChurnEvent::Join]);
    }

    #[test]
    fn mild_model_event_rate_is_low() {
        let model = ChurnModel::mild();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0usize;
        for _ in 0..200 {
            total += model.sample_step(&peers(100), &mut rng).len();
        }
        // Expected ≈ 200 * (0.05 + 100*0.002) = 50; allow generous slack.
        assert!(total > 10 && total < 120, "total events {total}");
    }

    #[test]
    fn fixed_seed_reproduces_the_exact_event_stream() {
        let model = ChurnModel {
            join_probability: 0.3,
            leave_probability: 0.05,
            whitewash_probability: 0.02,
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stream = Vec::new();
            for _ in 0..300 {
                stream.extend(model.sample_step(&peers(40), &mut rng));
            }
            stream
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds must diverge");
    }

    #[test]
    fn events_reference_only_online_peers_in_input_order() {
        let model = ChurnModel {
            join_probability: 0.0,
            leave_probability: 0.5,
            whitewash_probability: 0.3,
        };
        let online: Vec<PeerId> = [3u32, 7, 11, 19].map(PeerId).to_vec();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let events = model.sample_step(&online, &mut rng);
            let mut last_index = 0usize;
            for event in events {
                let peer = match event {
                    ChurnEvent::Leave(p) | ChurnEvent::Whitewash(p) => p,
                    ChurnEvent::Join => panic!("join probability is zero"),
                };
                let index = online.iter().position(|&p| p == peer).expect("known peer");
                assert!(index >= last_index, "events must follow input order");
                last_index = index;
            }
        }
    }

    #[test]
    fn join_rate_matches_probability() {
        let model = ChurnModel {
            join_probability: 0.25,
            leave_probability: 0.0,
            whitewash_probability: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let steps = 4000;
        let joins: usize = (0..steps)
            .map(|_| model.sample_step(&peers(10), &mut rng).len())
            .sum();
        let rate = joins as f64 / steps as f64;
        assert!(
            (rate - 0.25).abs() < 0.03,
            "join rate {rate} should approximate 0.25"
        );
    }

    #[test]
    fn leave_and_whitewash_rates_match_probabilities() {
        let model = ChurnModel {
            join_probability: 0.0,
            leave_probability: 0.04,
            whitewash_probability: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let population = 200u32;
        let steps = 500;
        let mut leaves = 0usize;
        let mut whitewashes = 0usize;
        for _ in 0..steps {
            for event in model.sample_step(&peers(population), &mut rng) {
                match event {
                    ChurnEvent::Leave(_) => leaves += 1,
                    ChurnEvent::Whitewash(_) => whitewashes += 1,
                    ChurnEvent::Join => panic!("join probability is zero"),
                }
            }
        }
        let trials = (steps * population as usize) as f64;
        let whitewash_rate = whitewashes as f64 / trials;
        // A leave is only sampled when the whitewash coin came up tails.
        let leave_rate = leaves as f64 / (trials * (1.0 - 0.01));
        assert!(
            (whitewash_rate - 0.01).abs() < 0.005,
            "whitewash rate {whitewash_rate} should approximate 0.01"
        );
        assert!(
            (leave_rate - 0.04).abs() < 0.01,
            "leave rate {leave_rate} should approximate 0.04"
        );
    }

    #[test]
    fn whitewashing_constructor_is_pure_whitewash() {
        let model = ChurnModel::whitewashing(0.7);
        assert_eq!(model.whitewash_probability, 0.7);
        assert_eq!(model.join_probability, 0.0);
        assert_eq!(model.leave_probability, 0.0);
        assert!(!model.is_stable());
        model.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let model = ChurnModel {
            join_probability: 1.5,
            leave_probability: 0.0,
            whitewash_probability: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(6);
        model.sample_step(&peers(1), &mut rng);
    }

    #[test]
    fn reentry_schedule_drains_due_entries_in_scheduling_order() {
        let mut schedule = ReentrySchedule::new();
        assert!(schedule.is_empty());
        assert_eq!(schedule.next_due(), None);
        schedule.schedule(10, PeerId(3));
        schedule.schedule(5, PeerId(1));
        schedule.schedule(10, PeerId(2));
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.next_due(), Some(5));
        assert!(schedule.is_scheduled(PeerId(1)));
        assert!(!schedule.is_scheduled(PeerId(9)));

        let mut due = Vec::new();
        schedule.drain_due(4, &mut due);
        assert!(due.is_empty(), "nothing due before step 5");
        schedule.drain_due(5, &mut due);
        assert_eq!(due, vec![PeerId(1)]);
        due.clear();
        // Both step-10 entries fire together, in the order they were queued.
        schedule.drain_due(11, &mut due);
        assert_eq!(due, vec![PeerId(3), PeerId(2)]);
        assert!(schedule.is_empty());
    }

    #[test]
    fn reentry_schedule_allows_repeated_entries_per_peer() {
        let mut schedule = ReentrySchedule::new();
        schedule.schedule(2, PeerId(7));
        schedule.schedule(4, PeerId(7));
        let mut due = Vec::new();
        schedule.drain_due(2, &mut due);
        assert_eq!(due, vec![PeerId(7)]);
        assert!(
            schedule.is_scheduled(PeerId(7)),
            "second entry still queued"
        );
        due.clear();
        schedule.drain_due(4, &mut due);
        assert_eq!(due, vec![PeerId(7)]);
    }
}
