//! Peer identities and per-peer resource state.
//!
//! The paper normalises every peer's download and upload bandwidth to 1 and
//! every file size to 1 (Section III-D); peers choose per step how much of
//! their bandwidth and how many of their files to share (0 %, 50 % or 100 %
//! in the simulation model). [`Peer`] carries that resource state plus the
//! online flag the churn model toggles; [`PeerRegistry`] owns the population
//! and hands out dense [`PeerId`]s.

use crate::fault::ConnectionState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense peer identifier.
///
/// `PeerId`s are indices into the [`PeerRegistry`]; they stay stable for the
/// lifetime of a simulation (whitewashing creates a *new* identity rather
/// than reusing an old one, matching how real P2P identities work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Per-peer resource state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Peer {
    /// The peer's identifier.
    pub id: PeerId,
    /// Total upload bandwidth capacity (normalised to 1.0 in the paper).
    pub upload_capacity: f64,
    /// Total download bandwidth capacity (normalised to 1.0 in the paper).
    pub download_capacity: f64,
    /// Storage capacity in articles (the simulation uses 100).
    pub storage_capacity: u32,
    /// Fraction of upload bandwidth currently offered to the network (0..=1).
    pub shared_upload_fraction: f64,
    /// Number of articles currently offered for download.
    pub shared_articles: u32,
    /// Whether the peer is currently online.
    pub online: bool,
    /// Link-quality state of the peer's network attachment, driven by the
    /// configured [`LinkModel`](crate::fault::LinkModel)'s connection
    /// lifecycle. Always [`ConnectionState::Connected`] under the ideal
    /// model (the lifecycle never runs there).
    pub connection: ConnectionState,
    /// Time step at which the peer joined the network.
    pub joined_at: u64,
}

impl Peer {
    /// Creates a peer with the paper's normalised capacities.
    pub fn new(id: PeerId, joined_at: u64) -> Self {
        Self {
            id,
            upload_capacity: 1.0,
            download_capacity: 1.0,
            storage_capacity: 100,
            shared_upload_fraction: 0.0,
            shared_articles: 0,
            online: true,
            connection: ConnectionState::Connected,
            joined_at,
        }
    }

    /// Creates a peer with explicit capacities (heterogeneous-population
    /// extension; the paper itself uses homogeneous peers).
    pub fn with_capacities(
        id: PeerId,
        joined_at: u64,
        upload_capacity: f64,
        download_capacity: f64,
        storage_capacity: u32,
    ) -> Self {
        assert!(upload_capacity >= 0.0, "upload capacity must be >= 0");
        assert!(download_capacity >= 0.0, "download capacity must be >= 0");
        Self {
            id,
            upload_capacity,
            download_capacity,
            storage_capacity,
            shared_upload_fraction: 0.0,
            shared_articles: 0,
            online: true,
            connection: ConnectionState::Connected,
            joined_at,
        }
    }

    /// The absolute upload bandwidth the peer currently offers:
    /// `shared_upload_fraction · upload_capacity`.
    pub fn offered_upload(&self) -> f64 {
        if self.online {
            self.shared_upload_fraction * self.upload_capacity
        } else {
            0.0
        }
    }

    /// Fraction of storage currently used for shared articles.
    pub fn storage_utilisation(&self) -> f64 {
        if self.storage_capacity == 0 {
            0.0
        } else {
            f64::from(self.shared_articles) / f64::from(self.storage_capacity)
        }
    }

    /// Whether the peer currently offers anything for download.
    pub fn is_sharing(&self) -> bool {
        self.online && (self.shared_articles > 0 || self.offered_upload() > 0.0)
    }

    /// Sets the shared upload fraction, clamped to `[0, 1]`.
    pub fn set_shared_upload_fraction(&mut self, fraction: f64) {
        self.shared_upload_fraction = fraction.clamp(0.0, 1.0);
    }

    /// Sets the number of shared articles, clamped to the storage capacity.
    pub fn set_shared_articles(&mut self, count: u32) {
        self.shared_articles = count.min(self.storage_capacity);
    }
}

/// The population of peers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PeerRegistry {
    peers: Vec<Peer>,
}

impl PeerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from checkpointed peers. Peers must be listed in
    /// dense-id order (the order [`PeerRegistry::iter`] yields them in).
    ///
    /// # Panics
    ///
    /// Panics if any peer's id does not match its position.
    pub fn from_peers(peers: Vec<Peer>) -> Self {
        for (index, peer) in peers.iter().enumerate() {
            assert_eq!(peer.id.index(), index, "peer ids must be dense");
        }
        Self { peers }
    }

    /// Creates a registry pre-populated with `count` homogeneous peers that
    /// joined at time step 0.
    pub fn with_population(count: usize) -> Self {
        let mut registry = Self::new();
        for _ in 0..count {
            registry.join(0);
        }
        registry
    }

    /// Number of peers ever registered (including offline ones).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Adds a new peer joining at `now` and returns its identifier.
    pub fn join(&mut self, now: u64) -> PeerId {
        let id = PeerId(u32::try_from(self.peers.len()).expect("too many peers"));
        self.peers.push(Peer::new(id, now));
        id
    }

    /// Adds a new peer with explicit capacities.
    pub fn join_with_capacities(
        &mut self,
        now: u64,
        upload_capacity: f64,
        download_capacity: f64,
        storage_capacity: u32,
    ) -> PeerId {
        let id = PeerId(u32::try_from(self.peers.len()).expect("too many peers"));
        self.peers.push(Peer::with_capacities(
            id,
            now,
            upload_capacity,
            download_capacity,
            storage_capacity,
        ));
        id
    }

    /// Immutable access to a peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer does not exist.
    pub fn peer(&self, id: PeerId) -> &Peer {
        &self.peers[id.index()]
    }

    /// Mutable access to a peer.
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        &mut self.peers[id.index()]
    }

    /// Iterator over all peers.
    pub fn iter(&self) -> impl Iterator<Item = &Peer> {
        self.peers.iter()
    }

    /// Iterator over all currently online peers.
    pub fn online(&self) -> impl Iterator<Item = &Peer> {
        self.peers.iter().filter(|p| p.online)
    }

    /// Identifiers of all peers currently offering at least one article or
    /// some upload bandwidth — the set `N_S` whose size determines the
    /// per-step download probability `P = 1 / N_S` in the simulation model.
    pub fn sharing_peers(&self) -> Vec<PeerId> {
        self.peers
            .iter()
            .filter(|p| p.is_sharing())
            .map(|p| p.id)
            .collect()
    }

    /// Marks a peer offline (churn).
    pub fn set_online(&mut self, id: PeerId, online: bool) {
        self.peers[id.index()].online = online;
    }

    /// Average shared upload fraction over online peers (a headline metric
    /// of the paper's Figures 3–5).
    pub fn mean_shared_upload_fraction(&self) -> f64 {
        let online: Vec<_> = self.online().collect();
        if online.is_empty() {
            return 0.0;
        }
        online.iter().map(|p| p.shared_upload_fraction).sum::<f64>() / online.len() as f64
    }

    /// Average storage utilisation over online peers.
    pub fn mean_storage_utilisation(&self) -> f64 {
        let online: Vec<_> = self.online().collect();
        if online.is_empty() {
            return 0.0;
        }
        online.iter().map(|p| p.storage_utilisation()).sum::<f64>() / online.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_dense_ids() {
        let mut r = PeerRegistry::new();
        assert!(r.is_empty());
        let a = r.join(0);
        let b = r.join(5);
        assert_eq!(a, PeerId(0));
        assert_eq!(b, PeerId(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.peer(b).joined_at, 5);
    }

    #[test]
    fn default_capacities_match_paper_normalisation() {
        let p = Peer::new(PeerId(0), 0);
        assert_eq!(p.upload_capacity, 1.0);
        assert_eq!(p.download_capacity, 1.0);
        assert_eq!(p.storage_capacity, 100);
        assert!(p.online);
        assert_eq!(p.connection, ConnectionState::Connected);
        assert!(!p.is_sharing());
    }

    #[test]
    fn offered_upload_scales_with_fraction() {
        let mut p = Peer::new(PeerId(0), 0);
        p.set_shared_upload_fraction(0.5);
        assert_eq!(p.offered_upload(), 0.5);
        p.online = false;
        assert_eq!(p.offered_upload(), 0.0);
    }

    #[test]
    fn shared_upload_fraction_is_clamped() {
        let mut p = Peer::new(PeerId(0), 0);
        p.set_shared_upload_fraction(1.7);
        assert_eq!(p.shared_upload_fraction, 1.0);
        p.set_shared_upload_fraction(-0.3);
        assert_eq!(p.shared_upload_fraction, 0.0);
    }

    #[test]
    fn shared_articles_clamped_to_capacity() {
        let mut p = Peer::new(PeerId(0), 0);
        p.set_shared_articles(250);
        assert_eq!(p.shared_articles, 100);
        assert_eq!(p.storage_utilisation(), 1.0);
        p.set_shared_articles(50);
        assert_eq!(p.storage_utilisation(), 0.5);
    }

    #[test]
    fn sharing_peers_listed_correctly() {
        let mut r = PeerRegistry::with_population(4);
        r.peer_mut(PeerId(1)).set_shared_articles(10);
        r.peer_mut(PeerId(2)).set_shared_upload_fraction(0.5);
        r.peer_mut(PeerId(3)).set_shared_articles(10);
        r.set_online(PeerId(3), false);
        let sharing = r.sharing_peers();
        assert_eq!(sharing, vec![PeerId(1), PeerId(2)]);
    }

    #[test]
    fn mean_metrics_ignore_offline_peers() {
        let mut r = PeerRegistry::with_population(3);
        r.peer_mut(PeerId(0)).set_shared_upload_fraction(1.0);
        r.peer_mut(PeerId(1)).set_shared_upload_fraction(0.0);
        r.peer_mut(PeerId(2)).set_shared_upload_fraction(1.0);
        r.set_online(PeerId(2), false);
        assert!((r.mean_shared_upload_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_metrics_empty_registry() {
        let r = PeerRegistry::new();
        assert_eq!(r.mean_shared_upload_fraction(), 0.0);
        assert_eq!(r.mean_storage_utilisation(), 0.0);
    }

    #[test]
    fn heterogeneous_capacities() {
        let mut r = PeerRegistry::new();
        let id = r.join_with_capacities(0, 2.0, 4.0, 10);
        let p = r.peer(id);
        assert_eq!(p.upload_capacity, 2.0);
        assert_eq!(p.download_capacity, 4.0);
        assert_eq!(p.storage_capacity, 10);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", PeerId(7)), "peer#7");
    }
}
