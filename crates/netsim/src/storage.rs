//! Per-peer article stores and replication bookkeeping.
//!
//! Sharing storage space is one of the two "classic" resources of the
//! collaboration network (next to bandwidth): a peer decides how many of the
//! articles it holds to offer for download, and the network as a whole needs
//! every article to stay available even though individual peers churn.
//! [`ArticleStore`] tracks which peer holds which article replicas and how
//! many it currently *offers*, and computes the availability metrics the
//! experiments report.

use crate::article::ArticleId;
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Replica placement and offering state across the population.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArticleStore {
    /// peer → articles it physically holds.
    held: HashMap<PeerId, HashSet<ArticleId>>,
    /// peer → articles it currently offers for download (subset of held).
    offered: HashMap<PeerId, HashSet<ArticleId>>,
    /// article → peers holding it (inverse index).
    holders: HashMap<ArticleId, HashSet<PeerId>>,
}

impl ArticleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `peer` holds a replica of `article`.
    pub fn add_replica(&mut self, peer: PeerId, article: ArticleId) {
        self.held.entry(peer).or_default().insert(article);
        self.holders.entry(article).or_default().insert(peer);
    }

    /// Removes `peer`'s replica of `article` (also stops offering it).
    pub fn remove_replica(&mut self, peer: PeerId, article: ArticleId) {
        if let Some(set) = self.held.get_mut(&peer) {
            set.remove(&article);
        }
        if let Some(set) = self.offered.get_mut(&peer) {
            set.remove(&article);
        }
        if let Some(set) = self.holders.get_mut(&article) {
            set.remove(&peer);
        }
    }

    /// Drops every replica held by `peer` (the peer left the network).
    pub fn drop_peer(&mut self, peer: PeerId) {
        if let Some(articles) = self.held.remove(&peer) {
            for article in articles {
                if let Some(set) = self.holders.get_mut(&article) {
                    set.remove(&peer);
                }
            }
        }
        self.offered.remove(&peer);
    }

    /// Number of replicas `peer` holds.
    pub fn held_count(&self, peer: PeerId) -> usize {
        self.held.get(&peer).map_or(0, HashSet::len)
    }

    /// Number of replicas `peer` currently offers.
    pub fn offered_count(&self, peer: PeerId) -> usize {
        self.offered.get(&peer).map_or(0, HashSet::len)
    }

    /// Whether `peer` holds `article`.
    pub fn holds(&self, peer: PeerId, article: ArticleId) -> bool {
        self.held
            .get(&peer)
            .is_some_and(|set| set.contains(&article))
    }

    /// Whether `peer` currently offers `article`.
    pub fn offers(&self, peer: PeerId, article: ArticleId) -> bool {
        self.offered
            .get(&peer)
            .is_some_and(|set| set.contains(&article))
    }

    /// Sets how many of its held articles `peer` offers: the first
    /// `count` articles in identifier order are offered (a deterministic
    /// stand-in for "the peer picks which files to share"). Returns the
    /// number actually offered (bounded by what the peer holds).
    pub fn set_offered_count(&mut self, peer: PeerId, count: usize) -> usize {
        let offered = self.compute_offered(peer, count);
        self.set_offered(peer, offered)
    }

    /// Computes — without mutating the store — the offered set that
    /// [`ArticleStore::set_offered_count`] would install: the first `count`
    /// held articles in identifier order. Read-only, so parallel collect
    /// workers can precompute offered sets for many peers at once and a
    /// sequential apply stage can install them via
    /// [`ArticleStore::set_offered`].
    pub fn compute_offered(&self, peer: PeerId, count: usize) -> HashSet<ArticleId> {
        let mut held: Vec<ArticleId> = self
            .held
            .get(&peer)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        held.sort_unstable();
        held.into_iter().take(count).collect()
    }

    /// Installs a precomputed offered set for `peer` (see
    /// [`ArticleStore::compute_offered`]) and returns its size.
    pub fn set_offered(&mut self, peer: PeerId, offered: HashSet<ArticleId>) -> usize {
        let n = offered.len();
        self.offered.insert(peer, offered);
        n
    }

    /// Articles currently offered by `peer`, sorted.
    pub fn offered_by(&self, peer: PeerId) -> Vec<ArticleId> {
        let mut articles: Vec<ArticleId> = self
            .offered
            .get(&peer)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        articles.sort_unstable();
        articles
    }

    /// Peers currently offering `article`, sorted.
    pub fn offering_peers(&self, article: ArticleId) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self
            .holders
            .get(&article)
            .map(|holders| {
                holders
                    .iter()
                    .copied()
                    .filter(|&p| self.offers(p, article))
                    .collect()
            })
            .unwrap_or_default();
        peers.sort_unstable();
        peers
    }

    /// Peers holding `article` (offering or not), sorted.
    pub fn holding_peers(&self, article: ArticleId) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self
            .holders
            .get(&article)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        peers.sort_unstable();
        peers
    }

    /// Replication factor of an article (number of holders).
    pub fn replication(&self, article: ArticleId) -> usize {
        self.holders.get(&article).map_or(0, HashSet::len)
    }

    /// Fraction of the given articles that have at least one *offering*
    /// holder — the availability metric.
    pub fn availability(&self, articles: &[ArticleId]) -> f64 {
        if articles.is_empty() {
            return 1.0;
        }
        let available = articles
            .iter()
            .filter(|&&a| !self.offering_peers(a).is_empty())
            .count();
        available as f64 / articles.len() as f64
    }

    /// Total number of offered replicas across the network.
    pub fn total_offered(&self) -> usize {
        self.offered.values().map(HashSet::len).sum()
    }

    /// Total number of held replicas across the network.
    pub fn total_held(&self) -> usize {
        self.held.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ArticleId> {
        (0..n).map(ArticleId).collect()
    }

    #[test]
    fn add_and_query_replicas() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(1));
        s.add_replica(PeerId(0), ArticleId(2));
        s.add_replica(PeerId(1), ArticleId(1));
        assert_eq!(s.held_count(PeerId(0)), 2);
        assert!(s.holds(PeerId(1), ArticleId(1)));
        assert!(!s.holds(PeerId(1), ArticleId(2)));
        assert_eq!(s.replication(ArticleId(1)), 2);
        assert_eq!(s.holding_peers(ArticleId(1)), vec![PeerId(0), PeerId(1)]);
        assert_eq!(s.total_held(), 3);
    }

    #[test]
    fn offering_is_a_subset_of_holding() {
        let mut s = ArticleStore::new();
        for a in ids(5) {
            s.add_replica(PeerId(0), a);
        }
        let offered = s.set_offered_count(PeerId(0), 3);
        assert_eq!(offered, 3);
        assert_eq!(s.offered_count(PeerId(0)), 3);
        assert!(s.offers(PeerId(0), ArticleId(0)));
        assert!(!s.offers(PeerId(0), ArticleId(4)));
        // Requesting more than held clamps.
        assert_eq!(s.set_offered_count(PeerId(0), 99), 5);
    }

    #[test]
    fn set_offered_zero_withdraws_everything() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(0));
        s.set_offered_count(PeerId(0), 1);
        assert_eq!(s.total_offered(), 1);
        s.set_offered_count(PeerId(0), 0);
        assert_eq!(s.total_offered(), 0);
        assert_eq!(s.offering_peers(ArticleId(0)), Vec::<PeerId>::new());
    }

    #[test]
    fn remove_replica_updates_both_indexes() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(0));
        s.set_offered_count(PeerId(0), 1);
        s.remove_replica(PeerId(0), ArticleId(0));
        assert_eq!(s.held_count(PeerId(0)), 0);
        assert_eq!(s.replication(ArticleId(0)), 0);
        assert!(!s.offers(PeerId(0), ArticleId(0)));
    }

    #[test]
    fn drop_peer_removes_all_its_replicas() {
        let mut s = ArticleStore::new();
        for a in ids(3) {
            s.add_replica(PeerId(0), a);
            s.add_replica(PeerId(1), a);
        }
        s.drop_peer(PeerId(0));
        assert_eq!(s.held_count(PeerId(0)), 0);
        for a in ids(3) {
            assert_eq!(s.replication(a), 1);
        }
    }

    #[test]
    fn availability_counts_only_offered_articles() {
        let mut s = ArticleStore::new();
        let articles = ids(4);
        s.add_replica(PeerId(0), articles[0]);
        s.add_replica(PeerId(0), articles[1]);
        s.add_replica(PeerId(1), articles[2]);
        s.set_offered_count(PeerId(0), 2);
        // articles[2] held but not offered; articles[3] nowhere at all.
        assert!((s.availability(&articles) - 0.5).abs() < 1e-12);
        assert_eq!(s.availability(&[]), 1.0);
    }

    #[test]
    fn offering_peers_sorted_and_filtered() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(2), ArticleId(7));
        s.add_replica(PeerId(0), ArticleId(7));
        s.add_replica(PeerId(1), ArticleId(7));
        s.set_offered_count(PeerId(2), 1);
        s.set_offered_count(PeerId(0), 1);
        assert_eq!(s.offering_peers(ArticleId(7)), vec![PeerId(0), PeerId(2)]);
    }
}
