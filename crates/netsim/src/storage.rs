//! Per-peer article stores and replication bookkeeping.
//!
//! Sharing storage space is one of the two "classic" resources of the
//! collaboration network (next to bandwidth): a peer decides how many of the
//! articles it holds to offer for download, and the network as a whole needs
//! every article to stay available even though individual peers churn.
//! [`ArticleStore`] tracks which peer holds which article replicas and how
//! many it currently *offers*, and computes the availability metrics the
//! experiments report.
//!
//! Held and offered sets are stored as **sorted vectors**: every consumer
//! (the sharing phase's offered-prefix rule, the download phase's article
//! pick, the availability metrics) wants identifier order anyway, and the
//! sorted representation makes the per-step re-offer a prefix `memcpy`
//! into a reused buffer instead of a fresh hash set per peer per step —
//! the former allocation hot spot of the sharing phase.
//!
//! All three indexes are **dense vectors** addressed by the identifier:
//! peer and article ids are small dense integers, so hashing them (the
//! store's former `HashMap` representation) only paid SipHash on every
//! `holds`/`offered_by`/`set_offered_count` call of the download and
//! sharing hot loops. Rows grow on demand; a missing row reads as empty,
//! exactly like an absent map entry did. The holder sets are kept sorted,
//! so [`ArticleStore::holding_peers`] and
//! [`ArticleStore::offering_peers`] return identifier order without a
//! sort, matching the ordering the hash-set representation produced by
//! sorting after collection.

use crate::article::ArticleId;
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// Replica placement and offering state across the population.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArticleStore {
    /// peer index → articles it physically holds, sorted by identifier.
    held: Vec<Vec<ArticleId>>,
    /// peer index → articles it currently offers for download (a subset of
    /// held, sorted). The vectors are reused in place by
    /// [`ArticleStore::set_offered_count`], so steady-state re-offering
    /// performs no allocation.
    offered: Vec<Vec<ArticleId>>,
    /// article index → peers holding it (inverse index, sorted).
    holders: Vec<Vec<PeerId>>,
}

/// The row at `index`, or the empty slice when the table has no such row.
fn row<T>(rows: &[Vec<T>], index: usize) -> &[T] {
    rows.get(index).map_or(&[], Vec::as_slice)
}

/// The growable row at `index`, extending the table with empty rows as
/// needed.
fn row_mut<T>(rows: &mut Vec<Vec<T>>, index: usize) -> &mut Vec<T> {
    if rows.len() <= index {
        rows.resize_with(index + 1, Vec::new);
    }
    &mut rows[index]
}

impl ArticleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The held table (peer index → sorted held articles), for
    /// checkpointing.
    pub fn held_rows(&self) -> &[Vec<ArticleId>] {
        &self.held
    }

    /// The offered table, row-aligned with [`ArticleStore::held_rows`].
    pub fn offered_rows(&self) -> &[Vec<ArticleId>] {
        &self.offered
    }

    /// Rebuilds a store from checkpointed held/offered tables. The inverse
    /// holder index is recomputed from the held rows (iterating peers in
    /// ascending order keeps every holder row sorted).
    pub fn from_rows(held: Vec<Vec<ArticleId>>, offered: Vec<Vec<ArticleId>>) -> Self {
        let mut holders: Vec<Vec<PeerId>> = Vec::new();
        for (peer, articles) in held.iter().enumerate() {
            for article in articles {
                row_mut(&mut holders, article.index())
                    .push(PeerId(u32::try_from(peer).expect("too many peers")));
            }
        }
        Self {
            held,
            offered,
            holders,
        }
    }

    /// Records that `peer` holds a replica of `article`.
    pub fn add_replica(&mut self, peer: PeerId, article: ArticleId) {
        let held = row_mut(&mut self.held, peer.index());
        if let Err(pos) = held.binary_search(&article) {
            held.insert(pos, article);
        }
        let holders = row_mut(&mut self.holders, article.index());
        if let Err(pos) = holders.binary_search(&peer) {
            holders.insert(pos, peer);
        }
    }

    /// Removes `peer`'s replica of `article` (also stops offering it).
    pub fn remove_replica(&mut self, peer: PeerId, article: ArticleId) {
        if let Some(held) = self.held.get_mut(peer.index()) {
            if let Ok(pos) = held.binary_search(&article) {
                held.remove(pos);
            }
        }
        if let Some(offered) = self.offered.get_mut(peer.index()) {
            if let Ok(pos) = offered.binary_search(&article) {
                offered.remove(pos);
            }
        }
        if let Some(holders) = self.holders.get_mut(article.index()) {
            if let Ok(pos) = holders.binary_search(&peer) {
                holders.remove(pos);
            }
        }
    }

    /// Drops every replica held by `peer` (the peer left the network).
    pub fn drop_peer(&mut self, peer: PeerId) {
        if let Some(articles) = self.held.get_mut(peer.index()) {
            for article in std::mem::take(articles) {
                if let Some(holders) = self.holders.get_mut(article.index()) {
                    if let Ok(pos) = holders.binary_search(&peer) {
                        holders.remove(pos);
                    }
                }
            }
        }
        if let Some(offered) = self.offered.get_mut(peer.index()) {
            offered.clear();
        }
    }

    /// Number of replicas `peer` holds.
    pub fn held_count(&self, peer: PeerId) -> usize {
        row(&self.held, peer.index()).len()
    }

    /// Number of replicas `peer` currently offers.
    pub fn offered_count(&self, peer: PeerId) -> usize {
        row(&self.offered, peer.index()).len()
    }

    /// Whether `peer` holds `article`.
    pub fn holds(&self, peer: PeerId, article: ArticleId) -> bool {
        row(&self.held, peer.index())
            .binary_search(&article)
            .is_ok()
    }

    /// Whether `peer` currently offers `article`.
    pub fn offers(&self, peer: PeerId, article: ArticleId) -> bool {
        row(&self.offered, peer.index())
            .binary_search(&article)
            .is_ok()
    }

    /// Sets how many of its held articles `peer` offers: the first
    /// `count` articles in identifier order are offered (a deterministic
    /// stand-in for "the peer picks which files to share"). Returns the
    /// number actually offered (bounded by what the peer holds).
    ///
    /// The offered vector is rewritten in place, so calling this every
    /// step (as the sharing phase does) allocates nothing once the buffer
    /// has grown to its steady-state size.
    pub fn set_offered_count(&mut self, peer: PeerId, count: usize) -> usize {
        let Self { held, offered, .. } = self;
        let held = row(held, peer.index());
        let n = count.min(held.len());
        let offered = row_mut(offered, peer.index());
        offered.clear();
        offered.extend_from_slice(&held[..n]);
        n
    }

    /// Articles currently offered by `peer`, sorted by identifier.
    pub fn offered_by(&self, peer: PeerId) -> &[ArticleId] {
        row(&self.offered, peer.index())
    }

    /// Peers currently offering `article`, sorted.
    pub fn offering_peers(&self, article: ArticleId) -> Vec<PeerId> {
        row(&self.holders, article.index())
            .iter()
            .copied()
            .filter(|&p| self.offers(p, article))
            .collect()
    }

    /// Peers holding `article` (offering or not), sorted.
    pub fn holding_peers(&self, article: ArticleId) -> Vec<PeerId> {
        row(&self.holders, article.index()).to_vec()
    }

    /// Replication factor of an article (number of holders).
    pub fn replication(&self, article: ArticleId) -> usize {
        row(&self.holders, article.index()).len()
    }

    /// Fraction of the given articles that have at least one *offering*
    /// holder — the availability metric.
    pub fn availability(&self, articles: &[ArticleId]) -> f64 {
        if articles.is_empty() {
            return 1.0;
        }
        let available = articles
            .iter()
            .filter(|&&a| !self.offering_peers(a).is_empty())
            .count();
        available as f64 / articles.len() as f64
    }

    /// Total number of offered replicas across the network.
    pub fn total_offered(&self) -> usize {
        self.offered.iter().map(Vec::len).sum()
    }

    /// Total number of held replicas across the network.
    pub fn total_held(&self) -> usize {
        self.held.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ArticleId> {
        (0..n).map(ArticleId).collect()
    }

    #[test]
    fn add_and_query_replicas() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(1));
        s.add_replica(PeerId(0), ArticleId(2));
        s.add_replica(PeerId(1), ArticleId(1));
        assert_eq!(s.held_count(PeerId(0)), 2);
        assert!(s.holds(PeerId(1), ArticleId(1)));
        assert!(!s.holds(PeerId(1), ArticleId(2)));
        assert_eq!(s.replication(ArticleId(1)), 2);
        assert_eq!(s.holding_peers(ArticleId(1)), vec![PeerId(0), PeerId(1)]);
        assert_eq!(s.total_held(), 3);
    }

    #[test]
    fn duplicate_add_replica_is_idempotent() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(3));
        s.add_replica(PeerId(0), ArticleId(3));
        assert_eq!(s.held_count(PeerId(0)), 1);
        assert_eq!(s.total_held(), 1);
    }

    #[test]
    fn offering_is_a_subset_of_holding() {
        let mut s = ArticleStore::new();
        for a in ids(5) {
            s.add_replica(PeerId(0), a);
        }
        let offered = s.set_offered_count(PeerId(0), 3);
        assert_eq!(offered, 3);
        assert_eq!(s.offered_count(PeerId(0)), 3);
        assert!(s.offers(PeerId(0), ArticleId(0)));
        assert!(!s.offers(PeerId(0), ArticleId(4)));
        // Requesting more than held clamps.
        assert_eq!(s.set_offered_count(PeerId(0), 99), 5);
    }

    #[test]
    fn offered_by_is_the_sorted_prefix_of_held() {
        let mut s = ArticleStore::new();
        for a in [ArticleId(9), ArticleId(2), ArticleId(5)] {
            s.add_replica(PeerId(0), a);
        }
        s.set_offered_count(PeerId(0), 2);
        assert_eq!(s.offered_by(PeerId(0)), &[ArticleId(2), ArticleId(5)]);
        assert_eq!(s.offered_by(PeerId(7)), &[] as &[ArticleId]);
    }

    #[test]
    fn set_offered_zero_withdraws_everything() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(0));
        s.set_offered_count(PeerId(0), 1);
        assert_eq!(s.total_offered(), 1);
        s.set_offered_count(PeerId(0), 0);
        assert_eq!(s.total_offered(), 0);
        assert_eq!(s.offering_peers(ArticleId(0)), Vec::<PeerId>::new());
    }

    #[test]
    fn remove_replica_updates_both_indexes() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(0), ArticleId(0));
        s.set_offered_count(PeerId(0), 1);
        s.remove_replica(PeerId(0), ArticleId(0));
        assert_eq!(s.held_count(PeerId(0)), 0);
        assert_eq!(s.replication(ArticleId(0)), 0);
        assert!(!s.offers(PeerId(0), ArticleId(0)));
    }

    #[test]
    fn drop_peer_removes_all_its_replicas() {
        let mut s = ArticleStore::new();
        for a in ids(3) {
            s.add_replica(PeerId(0), a);
            s.add_replica(PeerId(1), a);
        }
        s.drop_peer(PeerId(0));
        assert_eq!(s.held_count(PeerId(0)), 0);
        for a in ids(3) {
            assert_eq!(s.replication(a), 1);
        }
    }

    #[test]
    fn availability_counts_only_offered_articles() {
        let mut s = ArticleStore::new();
        let articles = ids(4);
        s.add_replica(PeerId(0), articles[0]);
        s.add_replica(PeerId(0), articles[1]);
        s.add_replica(PeerId(1), articles[2]);
        s.set_offered_count(PeerId(0), 2);
        // articles[2] held but not offered; articles[3] nowhere at all.
        assert!((s.availability(&articles) - 0.5).abs() < 1e-12);
        assert_eq!(s.availability(&[]), 1.0);
    }

    #[test]
    fn offering_peers_sorted_and_filtered() {
        let mut s = ArticleStore::new();
        s.add_replica(PeerId(2), ArticleId(7));
        s.add_replica(PeerId(0), ArticleId(7));
        s.add_replica(PeerId(1), ArticleId(7));
        s.set_offered_count(PeerId(2), 1);
        s.set_offered_count(PeerId(0), 1);
        assert_eq!(s.offering_peers(ArticleId(7)), vec![PeerId(0), PeerId(2)]);
    }
}
