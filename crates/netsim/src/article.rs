//! Articles, revisions and the edit life cycle.
//!
//! The collaboration network's shared objects are articles (the paper's
//! running example is a decentralized wiki, following the authors' earlier
//! AIMS 2007 work on "peer-to-peer large-scale collaborative storage
//! networks"). An article carries a revision history; peers propose *edits*
//! which are either constructive (improve the article) or destructive
//! (vandalism), and the voting mechanism decides whether a pending edit is
//! accepted into a new revision or declined.
//!
//! The netsim layer records only the mechanics (who authored what, which
//! edit is pending, which revision is current); whether an edit *should* be
//! accepted is policy and lives in the incentive layer.

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an article.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArticleId(pub u32);

impl ArticleId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArticleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "article#{}", self.0)
    }
}

/// Identifier of an edit (unique across all articles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EditId(pub u64);

/// Whether an edit improves or damages the article.
///
/// In a real network this is unknowable a priori — it is what the voting
/// process estimates. The simulation, like the paper's, labels edits by the
/// intent of the acting peer (altruistic/rational peers acting
/// constructively vs. irrational peers vandalising) so the evaluation can
/// report the constructive/destructive ratios of Figures 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EditKind {
    /// The edit improves the article's quality.
    Constructive,
    /// The edit is vandalism.
    Destructive,
}

impl EditKind {
    /// Short label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            EditKind::Constructive => "constructive",
            EditKind::Destructive => "destructive",
        }
    }
}

/// Life-cycle state of an edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EditStatus {
    /// Submitted, waiting for the vote to conclude.
    Pending,
    /// Accepted by the (weighted) majority and merged into a new revision.
    Accepted,
    /// Declined by the vote.
    Declined,
}

/// A proposed change to an article.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edit {
    /// Unique identifier.
    pub id: EditId,
    /// The article being edited.
    pub article: ArticleId,
    /// The peer proposing the edit.
    pub author: PeerId,
    /// Constructive or destructive intent.
    pub kind: EditKind,
    /// Current status.
    pub status: EditStatus,
    /// Time step at which the edit was submitted.
    pub submitted_at: u64,
    /// Time step at which the vote concluded (if it has).
    pub decided_at: Option<u64>,
}

/// An article with its revision history and pending edit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Article {
    /// Identifier.
    pub id: ArticleId,
    /// The peer that created the article.
    pub creator: PeerId,
    /// Time step of creation.
    pub created_at: u64,
    /// Authors of accepted revisions, in acceptance order (the creator is
    /// revision 0). Successful editors gain the right to vote on future
    /// changes of this article (Section III-C2).
    pub revision_authors: Vec<PeerId>,
    /// The distinct revision authors, sorted — `revision_authors` as a set,
    /// maintained incrementally so the per-edit voter-pool build
    /// ([`Article::eligible_voters_into`]) is a filtered copy instead of a
    /// sort + dedup of the full revision history on every vote.
    voter_set: Vec<PeerId>,
    /// Number of accepted destructive edits (quality damage that slipped
    /// through the vote).
    pub accepted_destructive: u32,
    /// Identifier of the edit currently awaiting a vote, if any. The model
    /// serialises edits per article: a new edit can only be submitted once
    /// the pending one is decided.
    pub pending_edit: Option<EditId>,
}

impl Article {
    /// Creates an article with the creator as the sole revision author.
    pub fn new(id: ArticleId, creator: PeerId, created_at: u64) -> Self {
        Self {
            id,
            creator,
            created_at,
            revision_authors: vec![creator],
            voter_set: vec![creator],
            accepted_destructive: 0,
            pending_edit: None,
        }
    }

    /// Rebuilds an article from its checkpointed parts. The derived voter
    /// set is recomputed from the revision history (sorted, de-duplicated),
    /// exactly as the incremental maintenance would have left it.
    pub fn from_parts(
        id: ArticleId,
        creator: PeerId,
        created_at: u64,
        revision_authors: Vec<PeerId>,
        accepted_destructive: u32,
        pending_edit: Option<EditId>,
    ) -> Self {
        let mut voter_set = revision_authors.clone();
        voter_set.sort_unstable();
        voter_set.dedup();
        Self {
            id,
            creator,
            created_at,
            revision_authors,
            voter_set,
            accepted_destructive,
            pending_edit,
        }
    }

    /// Records an accepted revision by `author` (history plus voter set).
    fn record_revision(&mut self, author: PeerId) {
        self.revision_authors.push(author);
        if let Err(pos) = self.voter_set.binary_search(&author) {
            self.voter_set.insert(pos, author);
        }
    }

    /// Number of accepted revisions (including the initial one).
    pub fn revision_count(&self) -> usize {
        self.revision_authors.len()
    }

    /// Whether `peer` has successfully edited (or created) this article and
    /// therefore holds voting rights on its changes.
    pub fn is_successful_editor(&self, peer: PeerId) -> bool {
        self.voter_set.binary_search(&peer).is_ok()
    }

    /// The set of peers eligible to vote on changes of this article,
    /// de-duplicated, excluding the author of the edit under vote.
    pub fn eligible_voters(&self, edit_author: PeerId) -> Vec<PeerId> {
        let mut voters = Vec::new();
        self.eligible_voters_into(edit_author, &mut voters);
        voters
    }

    /// [`Article::eligible_voters`] into a caller-owned buffer (cleared
    /// first), so per-edit hot loops reuse one allocation. Identical
    /// contents and order.
    pub fn eligible_voters_into(&self, edit_author: PeerId, out: &mut Vec<PeerId>) {
        out.clear();
        out.extend(self.voter_set.iter().copied().filter(|&p| p != edit_author));
    }

    /// A simple quality score in `[0, 1]`: the fraction of accepted
    /// revisions that were constructive. New articles start at 1.
    pub fn quality(&self) -> f64 {
        let total = self.revision_count() as f64 + f64::from(self.accepted_destructive);
        self.revision_count() as f64 / total
    }
}

/// The registry of all articles and edits in the network.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArticleRegistry {
    articles: Vec<Article>,
    edits: Vec<Edit>,
    /// Pending edits per author, to let the policy layer limit concurrent
    /// edits per peer cheaply.
    pending_by_author: HashMap<PeerId, Vec<EditId>>,
    /// Articles without a pending edit, sorted by identifier. Maintained
    /// incrementally on every status change (article creation, edit
    /// submission, edit resolution), so the edit-vote phase's per-peer
    /// candidate lookup is a slice borrow instead of a fresh `Vec` scan of
    /// the whole registry per peer per step.
    editable: Vec<ArticleId>,
}

impl ArticleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from checkpointed articles and edits. The
    /// derived caches (pending edits per author, editable articles) are
    /// recomputed: iterating edits in id order reproduces the per-author
    /// push order, and article ids are dense so the editable filter is
    /// already sorted.
    pub fn from_parts(articles: Vec<Article>, edits: Vec<Edit>) -> Self {
        let mut pending_by_author: HashMap<PeerId, Vec<EditId>> = HashMap::new();
        for edit in &edits {
            if edit.status == EditStatus::Pending {
                pending_by_author
                    .entry(edit.author)
                    .or_default()
                    .push(edit.id);
            }
        }
        let editable = articles
            .iter()
            .filter(|article| article.pending_edit.is_none())
            .map(|article| article.id)
            .collect();
        Self {
            articles,
            edits,
            pending_by_author,
            editable,
        }
    }

    /// Number of articles.
    pub fn article_count(&self) -> usize {
        self.articles.len()
    }

    /// Number of edits ever submitted.
    pub fn edit_count(&self) -> usize {
        self.edits.len()
    }

    /// Creates a new article and returns its identifier.
    pub fn create_article(&mut self, creator: PeerId, now: u64) -> ArticleId {
        let id = ArticleId(u32::try_from(self.articles.len()).expect("too many articles"));
        self.articles.push(Article::new(id, creator, now));
        // A new identifier is always the largest, so a push keeps the
        // editable cache sorted.
        self.editable.push(id);
        id
    }

    /// Immutable access to an article.
    pub fn article(&self, id: ArticleId) -> &Article {
        &self.articles[id.index()]
    }

    /// Mutable access to an article.
    pub fn article_mut(&mut self, id: ArticleId) -> &mut Article {
        &mut self.articles[id.index()]
    }

    /// Immutable access to an edit.
    pub fn edit(&self, id: EditId) -> &Edit {
        &self.edits[id.0 as usize]
    }

    /// Iterator over all articles.
    pub fn articles(&self) -> impl Iterator<Item = &Article> {
        self.articles.iter()
    }

    /// Iterator over all edits.
    pub fn edits(&self) -> impl Iterator<Item = &Edit> {
        self.edits.iter()
    }

    /// Submits an edit to an article. Returns `None` (and records nothing)
    /// if the article already has a pending edit.
    pub fn submit_edit(
        &mut self,
        article: ArticleId,
        author: PeerId,
        kind: EditKind,
        now: u64,
    ) -> Option<EditId> {
        if self.articles[article.index()].pending_edit.is_some() {
            return None;
        }
        let id = EditId(self.edits.len() as u64);
        self.edits.push(Edit {
            id,
            article,
            author,
            kind,
            status: EditStatus::Pending,
            submitted_at: now,
            decided_at: None,
        });
        self.articles[article.index()].pending_edit = Some(id);
        self.pending_by_author.entry(author).or_default().push(id);
        if let Ok(pos) = self.editable.binary_search(&article) {
            self.editable.remove(pos);
        }
        Some(id)
    }

    /// Resolves a pending edit: accepted edits append their author to the
    /// article's revision history (and count quality damage if they were
    /// destructive); declined edits simply close.
    ///
    /// # Panics
    ///
    /// Panics if the edit is not pending.
    pub fn resolve_edit(&mut self, id: EditId, accepted: bool, now: u64) {
        let edit = &mut self.edits[id.0 as usize];
        assert_eq!(edit.status, EditStatus::Pending, "edit already resolved");
        edit.status = if accepted {
            EditStatus::Accepted
        } else {
            EditStatus::Declined
        };
        edit.decided_at = Some(now);
        let author = edit.author;
        let kind = edit.kind;
        let article_id = edit.article;

        let article = &mut self.articles[article_id.index()];
        debug_assert_eq!(article.pending_edit, Some(id));
        article.pending_edit = None;
        if accepted {
            article.record_revision(author);
            if kind == EditKind::Destructive {
                article.accepted_destructive += 1;
            }
        }
        if let Some(pending) = self.pending_by_author.get_mut(&author) {
            pending.retain(|&e| e != id);
        }
        if let Err(pos) = self.editable.binary_search(&article_id) {
            self.editable.insert(pos, article_id);
        }
    }

    /// Number of edits a peer currently has pending across all articles.
    pub fn pending_edits_by(&self, author: PeerId) -> usize {
        self.pending_by_author
            .get(&author)
            .map_or(0, |pending| pending.len())
    }

    /// Articles without a pending edit (candidates for a new edit), sorted
    /// by identifier. A borrow of the incrementally maintained cache —
    /// invalidated on every edit-status change — so calling it per peer
    /// per step allocates nothing.
    pub fn editable_articles(&self) -> &[ArticleId] {
        &self.editable
    }

    /// Counts of (accepted constructive, accepted destructive, declined
    /// constructive, declined destructive) edits — the raw numbers behind
    /// Figures 6 and 7.
    pub fn edit_outcome_counts(&self) -> EditOutcomeCounts {
        let mut counts = EditOutcomeCounts::default();
        for edit in &self.edits {
            match (edit.status, edit.kind) {
                (EditStatus::Accepted, EditKind::Constructive) => counts.accepted_constructive += 1,
                (EditStatus::Accepted, EditKind::Destructive) => counts.accepted_destructive += 1,
                (EditStatus::Declined, EditKind::Constructive) => counts.declined_constructive += 1,
                (EditStatus::Declined, EditKind::Destructive) => counts.declined_destructive += 1,
                (EditStatus::Pending, _) => counts.pending += 1,
            }
        }
        counts
    }

    /// Mean quality over all articles.
    pub fn mean_quality(&self) -> f64 {
        if self.articles.is_empty() {
            return 1.0;
        }
        self.articles.iter().map(Article::quality).sum::<f64>() / self.articles.len() as f64
    }
}

/// Aggregated edit outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EditOutcomeCounts {
    /// Constructive edits accepted by the vote.
    pub accepted_constructive: u64,
    /// Destructive edits that slipped through the vote.
    pub accepted_destructive: u64,
    /// Constructive edits wrongly declined.
    pub declined_constructive: u64,
    /// Destructive edits correctly declined.
    pub declined_destructive: u64,
    /// Edits still awaiting a decision.
    pub pending: u64,
}

impl EditOutcomeCounts {
    /// Fraction of decided constructive edits that were accepted.
    pub fn constructive_acceptance_rate(&self) -> f64 {
        let total = self.accepted_constructive + self.declined_constructive;
        if total == 0 {
            0.0
        } else {
            self.accepted_constructive as f64 / total as f64
        }
    }

    /// Fraction of decided destructive edits that were (wrongly) accepted.
    pub fn destructive_acceptance_rate(&self) -> f64 {
        let total = self.accepted_destructive + self.declined_destructive;
        if total == 0 {
            0.0
        } else {
            self.accepted_destructive as f64 / total as f64
        }
    }

    /// Total number of decided edits.
    pub fn decided(&self) -> u64 {
        self.accepted_constructive
            + self.accepted_destructive
            + self.declined_constructive
            + self.declined_destructive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_article_registers_creator_as_revision_author() {
        let mut reg = ArticleRegistry::new();
        let id = reg.create_article(PeerId(3), 7);
        let article = reg.article(id);
        assert_eq!(article.creator, PeerId(3));
        assert_eq!(article.created_at, 7);
        assert_eq!(article.revision_count(), 1);
        assert!(article.is_successful_editor(PeerId(3)));
        assert_eq!(article.quality(), 1.0);
    }

    #[test]
    fn submit_and_accept_edit_extends_revision_history() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let e = reg
            .submit_edit(a, PeerId(1), EditKind::Constructive, 1)
            .unwrap();
        assert_eq!(reg.pending_edits_by(PeerId(1)), 1);
        reg.resolve_edit(e, true, 2);
        let article = reg.article(a);
        assert_eq!(article.revision_count(), 2);
        assert!(article.is_successful_editor(PeerId(1)));
        assert_eq!(reg.edit(e).status, EditStatus::Accepted);
        assert_eq!(reg.edit(e).decided_at, Some(2));
        assert_eq!(reg.pending_edits_by(PeerId(1)), 0);
    }

    #[test]
    fn declined_edit_does_not_extend_history() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let e = reg
            .submit_edit(a, PeerId(1), EditKind::Constructive, 1)
            .unwrap();
        reg.resolve_edit(e, false, 2);
        assert_eq!(reg.article(a).revision_count(), 1);
        assert!(!reg.article(a).is_successful_editor(PeerId(1)));
        assert_eq!(reg.edit(e).status, EditStatus::Declined);
    }

    #[test]
    fn only_one_pending_edit_per_article() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let first = reg.submit_edit(a, PeerId(1), EditKind::Constructive, 1);
        assert!(first.is_some());
        let second = reg.submit_edit(a, PeerId(2), EditKind::Destructive, 1);
        assert!(second.is_none());
        reg.resolve_edit(first.unwrap(), true, 2);
        assert!(reg
            .submit_edit(a, PeerId(2), EditKind::Destructive, 3)
            .is_some());
    }

    #[test]
    fn accepted_destructive_edit_lowers_quality() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let e = reg
            .submit_edit(a, PeerId(1), EditKind::Destructive, 1)
            .unwrap();
        reg.resolve_edit(e, true, 2);
        let article = reg.article(a);
        assert_eq!(article.accepted_destructive, 1);
        assert!(article.quality() < 1.0);
        assert!((reg.mean_quality() - article.quality()).abs() < 1e-12);
    }

    #[test]
    fn eligible_voters_are_past_authors_minus_editor() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        for peer in [1u32, 2, 1] {
            let e = reg
                .submit_edit(a, PeerId(peer), EditKind::Constructive, 1)
                .unwrap();
            reg.resolve_edit(e, true, 2);
        }
        let voters = reg.article(a).eligible_voters(PeerId(1));
        assert_eq!(voters, vec![PeerId(0), PeerId(2)]);
        let voters = reg.article(a).eligible_voters(PeerId(9));
        assert_eq!(voters, vec![PeerId(0), PeerId(1), PeerId(2)]);
    }

    #[test]
    fn editable_articles_excludes_pending() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let b = reg.create_article(PeerId(0), 0);
        let e = reg
            .submit_edit(a, PeerId(1), EditKind::Constructive, 1)
            .unwrap();
        assert_eq!(reg.editable_articles(), &[b][..]);
        // Resolution re-inserts the article at its sorted position.
        reg.resolve_edit(e, false, 2);
        assert_eq!(reg.editable_articles(), &[a, b][..]);
        // The cache always matches a fresh scan of the registry.
        let scanned: Vec<ArticleId> = reg
            .articles()
            .filter(|article| article.pending_edit.is_none())
            .map(|article| article.id)
            .collect();
        assert_eq!(reg.editable_articles(), &scanned[..]);
    }

    #[test]
    fn outcome_counts_and_rates() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let e1 = reg
            .submit_edit(a, PeerId(1), EditKind::Constructive, 1)
            .unwrap();
        reg.resolve_edit(e1, true, 2);
        let e2 = reg
            .submit_edit(a, PeerId(2), EditKind::Destructive, 3)
            .unwrap();
        reg.resolve_edit(e2, false, 4);
        let e3 = reg
            .submit_edit(a, PeerId(3), EditKind::Constructive, 5)
            .unwrap();
        reg.resolve_edit(e3, false, 6);
        let b = reg.create_article(PeerId(0), 7);
        reg.submit_edit(b, PeerId(4), EditKind::Destructive, 8);

        let counts = reg.edit_outcome_counts();
        assert_eq!(counts.accepted_constructive, 1);
        assert_eq!(counts.declined_destructive, 1);
        assert_eq!(counts.declined_constructive, 1);
        assert_eq!(counts.pending, 1);
        assert_eq!(counts.decided(), 3);
        assert!((counts.constructive_acceptance_rate() - 0.5).abs() < 1e-12);
        assert_eq!(counts.destructive_acceptance_rate(), 0.0);
    }

    #[test]
    fn empty_counts_rates_are_zero() {
        let counts = EditOutcomeCounts::default();
        assert_eq!(counts.constructive_acceptance_rate(), 0.0);
        assert_eq!(counts.destructive_acceptance_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "already resolved")]
    fn double_resolution_panics() {
        let mut reg = ArticleRegistry::new();
        let a = reg.create_article(PeerId(0), 0);
        let e = reg
            .submit_edit(a, PeerId(1), EditKind::Constructive, 1)
            .unwrap();
        reg.resolve_edit(e, true, 2);
        reg.resolve_edit(e, true, 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ArticleId(4)), "article#4");
        assert_eq!(EditKind::Constructive.label(), "constructive");
        assert_eq!(EditKind::Destructive.label(), "destructive");
    }
}
