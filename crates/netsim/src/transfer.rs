//! Multi-step download sessions.
//!
//! The paper normalises file sizes to 1 and bandwidth to 1, so a peer
//! receiving the full upload bandwidth of a source finishes a download in a
//! single time step, while a peer receiving only a fraction needs several
//! steps. [`TransferManager`] tracks in-flight transfers, applies the
//! per-step bandwidth grants produced by the allocator, and reports
//! completions — the completion latency distribution is how service
//! differentiation becomes visible to the downloading peers.

use crate::article::ArticleId;
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// Status of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferStatus {
    /// Still transferring.
    InProgress,
    /// All bytes received.
    Completed,
    /// Cancelled (source went offline or withdrew the article).
    Cancelled,
}

/// A single article download by one peer from one source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Unique transfer identifier.
    pub id: u64,
    /// The downloading peer.
    pub downloader: PeerId,
    /// The source peer.
    pub source: PeerId,
    /// The article being transferred.
    pub article: ArticleId,
    /// Total size (1.0 in the paper's normalisation).
    pub size: f64,
    /// Amount received so far.
    pub received: f64,
    /// Step at which the transfer started.
    pub started_at: u64,
    /// Step at which it completed or was cancelled.
    pub finished_at: Option<u64>,
    /// Current status.
    pub status: TransferStatus,
}

impl Transfer {
    /// Fraction of the article received so far.
    pub fn progress(&self) -> f64 {
        if self.size <= 0.0 {
            1.0
        } else {
            (self.received / self.size).min(1.0)
        }
    }

    /// Number of steps the transfer took (only meaningful once finished).
    pub fn duration(&self) -> Option<u64> {
        self.finished_at
            .map(|end| end.saturating_sub(self.started_at))
    }
}

/// Manager for all in-flight and historical transfers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TransferManager {
    transfers: Vec<Transfer>,
}

impl TransferManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new transfer of a unit-size article and returns its id.
    pub fn start(
        &mut self,
        downloader: PeerId,
        source: PeerId,
        article: ArticleId,
        now: u64,
    ) -> u64 {
        self.start_sized(downloader, source, article, 1.0, now)
    }

    /// Starts a transfer with an explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    pub fn start_sized(
        &mut self,
        downloader: PeerId,
        source: PeerId,
        article: ArticleId,
        size: f64,
        now: u64,
    ) -> u64 {
        assert!(size > 0.0, "transfer size must be positive");
        let id = self.transfers.len() as u64;
        self.transfers.push(Transfer {
            id,
            downloader,
            source,
            article,
            size,
            received: 0.0,
            started_at: now,
            finished_at: None,
            status: TransferStatus::InProgress,
        });
        id
    }

    /// Access to a transfer by id.
    pub fn transfer(&self, id: u64) -> &Transfer {
        &self.transfers[id as usize]
    }

    /// All transfers (any status).
    pub fn all(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Identifiers of in-progress transfers, optionally filtered by source.
    pub fn in_progress(&self, source: Option<PeerId>) -> Vec<u64> {
        self.transfers
            .iter()
            .filter(|t| t.status == TransferStatus::InProgress)
            .filter(|t| source.is_none_or(|s| t.source == s))
            .map(|t| t.id)
            .collect()
    }

    /// Applies a bandwidth grant to a transfer for the current step; marks
    /// it completed when the full size has been received. Returns the new
    /// status.
    ///
    /// # Panics
    ///
    /// Panics if the grant is negative or the transfer is not in progress.
    pub fn apply_grant(&mut self, id: u64, bandwidth: f64, now: u64) -> TransferStatus {
        assert!(bandwidth >= 0.0, "bandwidth grant must be >= 0");
        let t = &mut self.transfers[id as usize];
        assert_eq!(
            t.status,
            TransferStatus::InProgress,
            "grant applied to a finished transfer"
        );
        t.received += bandwidth;
        if t.received + 1e-12 >= t.size {
            t.received = t.size;
            t.status = TransferStatus::Completed;
            t.finished_at = Some(now);
        }
        t.status
    }

    /// Cancels an in-progress transfer (no effect if already finished).
    pub fn cancel(&mut self, id: u64, now: u64) {
        let t = &mut self.transfers[id as usize];
        if t.status == TransferStatus::InProgress {
            t.status = TransferStatus::Cancelled;
            t.finished_at = Some(now);
        }
    }

    /// Number of completed transfers.
    pub fn completed_count(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.status == TransferStatus::Completed)
            .count()
    }

    /// Mean duration (in steps) of completed transfers.
    pub fn mean_completion_steps(&self) -> f64 {
        let durations: Vec<u64> = self
            .transfers
            .iter()
            .filter(|t| t.status == TransferStatus::Completed)
            .filter_map(Transfer::duration)
            .collect();
        if durations.is_empty() {
            return 0.0;
        }
        durations.iter().sum::<u64>() as f64 / durations.len() as f64
    }

    /// Total bandwidth delivered to a downloader over all its transfers.
    pub fn total_received_by(&self, downloader: PeerId) -> f64 {
        self.transfers
            .iter()
            .filter(|t| t.downloader == downloader)
            .map(|t| t.received)
            .sum()
    }

    /// Total bandwidth served by a source over all its transfers.
    pub fn total_served_by(&self, source: PeerId) -> f64 {
        self.transfers
            .iter()
            .filter(|t| t.source == source)
            .map(|t| t.received)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_transfer_completes_with_full_bandwidth() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 10);
        assert_eq!(m.transfer(id).progress(), 0.0);
        let status = m.apply_grant(id, 1.0, 10);
        assert_eq!(status, TransferStatus::Completed);
        assert_eq!(m.transfer(id).duration(), Some(0));
        assert_eq!(m.completed_count(), 1);
    }

    #[test]
    fn partial_grants_accumulate_over_steps() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        assert_eq!(m.apply_grant(id, 0.3, 0), TransferStatus::InProgress);
        assert_eq!(m.apply_grant(id, 0.3, 1), TransferStatus::InProgress);
        assert!((m.transfer(id).progress() - 0.6).abs() < 1e-12);
        assert_eq!(m.apply_grant(id, 0.4, 2), TransferStatus::Completed);
        assert_eq!(m.transfer(id).duration(), Some(2));
        assert!((m.mean_completion_steps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn low_bandwidth_share_means_longer_download() {
        // Service differentiation in action: the low-reputation downloader's
        // 0.1 share takes 10 steps; the high-reputation one's 0.9 takes 2.
        let mut m = TransferManager::new();
        let slow = m.start(PeerId(0), PeerId(9), ArticleId(0), 0);
        let fast = m.start(PeerId(1), PeerId(9), ArticleId(0), 0);
        let mut now = 0;
        while m.transfer(fast).status == TransferStatus::InProgress {
            m.apply_grant(fast, 0.9, now);
            m.apply_grant(slow, 0.1, now);
            now += 1;
        }
        while m.transfer(slow).status == TransferStatus::InProgress {
            m.apply_grant(slow, 0.1, now);
            now += 1;
        }
        assert!(m.transfer(slow).duration().unwrap() > m.transfer(fast).duration().unwrap());
    }

    #[test]
    fn cancel_stops_a_transfer() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.cancel(id, 3);
        assert_eq!(m.transfer(id).status, TransferStatus::Cancelled);
        assert_eq!(m.transfer(id).finished_at, Some(3));
        // Cancel after completion is a no-op.
        let done = m.start(PeerId(0), PeerId(1), ArticleId(1), 4);
        m.apply_grant(done, 1.0, 4);
        m.cancel(done, 5);
        assert_eq!(m.transfer(done).status, TransferStatus::Completed);
    }

    #[test]
    fn in_progress_filter_by_source() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        let b = m.start(PeerId(0), PeerId(2), ArticleId(1), 0);
        let c = m.start(PeerId(3), PeerId(1), ArticleId(2), 0);
        m.apply_grant(a, 1.0, 0);
        assert_eq!(m.in_progress(None), vec![b, c]);
        assert_eq!(m.in_progress(Some(PeerId(1))), vec![c]);
    }

    #[test]
    fn totals_by_peer() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        let b = m.start(PeerId(0), PeerId(2), ArticleId(1), 0);
        m.apply_grant(a, 0.5, 0);
        m.apply_grant(b, 0.25, 0);
        assert!((m.total_received_by(PeerId(0)) - 0.75).abs() < 1e-12);
        assert!((m.total_served_by(PeerId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(m.total_served_by(PeerId(9)), 0.0);
    }

    #[test]
    #[should_panic(expected = "finished transfer")]
    fn grant_after_completion_panics() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.apply_grant(id, 1.0, 0);
        m.apply_grant(id, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_transfer_panics() {
        let mut m = TransferManager::new();
        m.start_sized(PeerId(0), PeerId(1), ArticleId(0), 0.0, 0);
    }
}
