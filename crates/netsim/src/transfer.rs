//! Multi-step download sessions.
//!
//! The paper normalises file sizes to 1 and bandwidth to 1, so a peer
//! receiving the full upload bandwidth of a source finishes a download in a
//! single time step, while a peer receiving only a fraction needs several
//! steps. [`TransferManager`] tracks in-flight transfers, applies the
//! per-step bandwidth grants produced by the allocator, and reports
//! completions — the completion latency distribution is how service
//! differentiation becomes visible to the downloading peers.
//!
//! The manager is a **slot arena with a free list**: finished transfers
//! are folded into aggregate statistics (completion counts, durations,
//! per-peer byte totals) and their slots are [`released`](
//! TransferManager::release) for reuse, so the arena's footprint is
//! bounded by the number of *concurrently live* transfers — at most one
//! per downloading peer — instead of growing by one slot per download over
//! a 12 000-step run. [`TransferManager::apply_grants`] is the batched
//! entry point of the download phase: it applies a whole step's grants and
//! drains the resulting completions into a reusable buffer.

use crate::article::ArticleId;
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
/// The growable accumulator slot at `index`, zero-extending as needed.
fn grow_slot(totals: &mut Vec<f64>, index: usize) -> &mut f64 {
    if totals.len() <= index {
        totals.resize(index + 1, 0.0);
    }
    &mut totals[index]
}

/// Status of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferStatus {
    /// Still transferring.
    InProgress,
    /// All bytes received.
    Completed,
    /// Cancelled (source went offline or withdrew the article).
    Cancelled,
}

/// A single article download by one peer from one source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Slot identifier. Unique among *live* transfers; slots of released
    /// (finished and drained) transfers are reused.
    pub id: u64,
    /// The downloading peer.
    pub downloader: PeerId,
    /// The source peer.
    pub source: PeerId,
    /// The article being transferred.
    pub article: ArticleId,
    /// Total size (1.0 in the paper's normalisation).
    pub size: f64,
    /// Amount received so far.
    pub received: f64,
    /// Step at which the transfer started.
    pub started_at: u64,
    /// Step at which it completed or was cancelled.
    pub finished_at: Option<u64>,
    /// Current status.
    pub status: TransferStatus,
    /// Grants lost to the fault layer so far (bounded by the retry budget;
    /// always 0 on an ideal network).
    pub failures: u32,
    /// First step at which the transfer may request bandwidth again after
    /// a lost grant (exponential backoff; 0 = not backing off).
    pub backoff_until: u64,
    /// Last step at which bytes actually arrived (starts at `started_at`);
    /// the fault layer's timeout measures idle steps from here.
    pub last_progress_at: u64,
}

impl Transfer {
    /// Fraction of the article received so far.
    pub fn progress(&self) -> f64 {
        if self.size <= 0.0 {
            1.0
        } else {
            (self.received / self.size).min(1.0)
        }
    }

    /// Number of steps the transfer took (only meaningful once finished).
    pub fn duration(&self) -> Option<u64> {
        self.finished_at
            .map(|end| end.saturating_sub(self.started_at))
    }
}

/// Manager for all in-flight transfers plus the aggregate statistics of
/// every transfer that ever ran.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TransferManager {
    transfers: Vec<Transfer>,
    /// Whether each slot currently holds a live (not yet released)
    /// transfer; parallel to `transfers`.
    in_use: Vec<bool>,
    /// Released slot ids available for reuse (LIFO, deterministic).
    free: Vec<u32>,
    /// Completed transfers ever (released ones included).
    completed: u64,
    /// Summed duration (steps) of completed transfers ever.
    completed_duration_sum: u64,
    /// Bytes received per downloader over *released* transfers, indexed by
    /// peer id (dense ids make a vector strictly cheaper than the hash map
    /// this used to be — `release` runs once per completed transfer).
    retired_received: Vec<f64>,
    /// Bytes served per source over *released* transfers, indexed like
    /// `retired_received`.
    retired_served: Vec<f64>,
}

/// The complete arena state of a [`TransferManager`], exported verbatim
/// for checkpointing — including the free list and `in_use` flags, so slot
/// recycling after a restore proceeds exactly as it would have in the
/// original process.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransferArenaState {
    /// Every slot, live or released, in slot order.
    pub transfers: Vec<Transfer>,
    /// Liveness flag per slot.
    pub in_use: Vec<bool>,
    /// Released slot ids in stack order.
    pub free: Vec<u32>,
    /// Completed transfers ever.
    pub completed: u64,
    /// Summed duration of completed transfers ever.
    pub completed_duration_sum: u64,
    /// Retired bytes received per downloader.
    pub retired_received: Vec<f64>,
    /// Retired bytes served per source.
    pub retired_served: Vec<f64>,
}

impl TransferManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exports the full arena state for checkpointing.
    pub fn export_state(&self) -> TransferArenaState {
        TransferArenaState {
            transfers: self.transfers.clone(),
            in_use: self.in_use.clone(),
            free: self.free.clone(),
            completed: self.completed,
            completed_duration_sum: self.completed_duration_sum,
            retired_received: self.retired_received.clone(),
            retired_served: self.retired_served.clone(),
        }
    }

    /// Rebuilds a manager from an exported arena state, verbatim.
    pub fn from_state(state: TransferArenaState) -> Self {
        Self {
            transfers: state.transfers,
            in_use: state.in_use,
            free: state.free,
            completed: state.completed,
            completed_duration_sum: state.completed_duration_sum,
            retired_received: state.retired_received,
            retired_served: state.retired_served,
        }
    }

    /// Starts a new transfer of a unit-size article and returns its id.
    pub fn start(
        &mut self,
        downloader: PeerId,
        source: PeerId,
        article: ArticleId,
        now: u64,
    ) -> u64 {
        self.start_sized(downloader, source, article, 1.0, now)
    }

    /// Starts a transfer with an explicit size, reusing a released slot if
    /// one is available.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    pub fn start_sized(
        &mut self,
        downloader: PeerId,
        source: PeerId,
        article: ArticleId,
        size: f64,
        now: u64,
    ) -> u64 {
        assert!(size > 0.0, "transfer size must be positive");
        let id = match self.free.pop() {
            Some(slot) => u64::from(slot),
            None => {
                self.transfers.push(Transfer {
                    id: 0,
                    downloader,
                    source,
                    article,
                    size,
                    received: 0.0,
                    started_at: now,
                    finished_at: None,
                    status: TransferStatus::InProgress,
                    failures: 0,
                    backoff_until: 0,
                    last_progress_at: now,
                });
                self.in_use.push(false);
                self.transfers.len() as u64 - 1
            }
        };
        self.transfers[id as usize] = Transfer {
            id,
            downloader,
            source,
            article,
            size,
            received: 0.0,
            started_at: now,
            finished_at: None,
            status: TransferStatus::InProgress,
            failures: 0,
            backoff_until: 0,
            last_progress_at: now,
        };
        self.in_use[id as usize] = true;
        id
    }

    /// Whether the given slot currently holds a live transfer.
    pub fn is_live(&self, id: u64) -> bool {
        self.in_use.get(id as usize).copied().unwrap_or(false)
    }

    /// Access to a live transfer by id.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been released.
    pub fn transfer(&self, id: u64) -> &Transfer {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        &self.transfers[id as usize]
    }

    /// Iterator over all live (not yet released) transfers, in slot order.
    pub fn live(&self) -> impl Iterator<Item = &Transfer> {
        self.transfers
            .iter()
            .zip(self.in_use.iter())
            .filter(|&(_, &in_use)| in_use)
            .map(|(t, _)| t)
    }

    /// Number of live transfers.
    pub fn live_count(&self) -> usize {
        self.in_use.iter().filter(|&&u| u).count()
    }

    /// Number of transfer slots the arena holds (live plus recyclable).
    /// Bounded by the peak number of concurrent transfers, not by the
    /// total number ever started.
    pub fn slot_count(&self) -> usize {
        self.transfers.len()
    }

    /// Number of released slots awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Identifiers of in-progress transfers, optionally filtered by source.
    pub fn in_progress(&self, source: Option<PeerId>) -> Vec<u64> {
        self.live()
            .filter(|t| t.status == TransferStatus::InProgress)
            .filter(|t| source.is_none_or(|s| t.source == s))
            .map(|t| t.id)
            .collect()
    }

    /// Applies a bandwidth grant to a transfer for the current step; marks
    /// it completed when the full size has been received. Returns the new
    /// status.
    ///
    /// # Panics
    ///
    /// Panics if the grant is negative or the transfer is not in progress.
    pub fn apply_grant(&mut self, id: u64, bandwidth: f64, now: u64) -> TransferStatus {
        assert!(bandwidth >= 0.0, "bandwidth grant must be >= 0");
        assert!(self.in_use[id as usize], "transfer slot has been released");
        let t = &mut self.transfers[id as usize];
        assert_eq!(
            t.status,
            TransferStatus::InProgress,
            "grant applied to a finished transfer"
        );
        t.received += bandwidth;
        if bandwidth > 0.0 {
            t.last_progress_at = now;
        }
        if t.received + 1e-12 >= t.size {
            t.received = t.size;
            t.status = TransferStatus::Completed;
            t.finished_at = Some(now);
            self.completed += 1;
            self.completed_duration_sum += now.saturating_sub(t.started_at);
        }
        t.status
    }

    /// Batched grant application — the download phase's entry point.
    /// Applies every `(transfer id, bandwidth)` grant in order and pushes
    /// the ids of transfers that completed under this batch onto
    /// `completions` (cleared first), in grant order, so the caller can
    /// drain completion effects and [`release`](TransferManager::release)
    /// the slots.
    pub fn apply_grants(&mut self, grants: &[(u64, f64)], now: u64, completions: &mut Vec<u64>) {
        completions.clear();
        for &(id, bandwidth) in grants {
            if self.apply_grant(id, bandwidth, now) == TransferStatus::Completed {
                completions.push(id);
            }
        }
    }

    /// Cancels an in-progress transfer (no effect if already finished).
    pub fn cancel(&mut self, id: u64, now: u64) {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        let t = &mut self.transfers[id as usize];
        if t.status == TransferStatus::InProgress {
            t.status = TransferStatus::Cancelled;
            t.finished_at = Some(now);
        }
    }

    /// Records a lost grant on an in-progress transfer: increments its
    /// failure count and opens an exponential backoff window of
    /// `backoff_base << (failures - 1)` steps starting at `now`. Returns
    /// the new failure count so the caller can enforce a retry budget.
    ///
    /// # Panics
    ///
    /// Panics if the transfer is not in progress.
    pub fn fail_grant(&mut self, id: u64, now: u64, backoff_base: u64) -> u32 {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        let t = &mut self.transfers[id as usize];
        assert_eq!(
            t.status,
            TransferStatus::InProgress,
            "lost grant recorded on a finished transfer"
        );
        t.failures += 1;
        t.backoff_until = now + (backoff_base << (t.failures - 1).min(16));
        t.failures
    }

    /// Whether the transfer is inside a backoff window at `now` (it should
    /// not request bandwidth this step).
    pub fn in_backoff(&self, id: u64, now: u64) -> bool {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        now < self.transfers[id as usize].backoff_until
    }

    /// Whether the transfer has gone `timeout` or more steps without
    /// receiving bytes at `now`.
    pub fn timed_out(&self, id: u64, now: u64, timeout: u64) -> bool {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        now.saturating_sub(self.transfers[id as usize].last_progress_at) >= timeout
    }

    /// Lost-grant count of a live transfer.
    pub fn failures(&self, id: u64) -> u32 {
        assert!(self.in_use[id as usize], "transfer slot has been released");
        self.transfers[id as usize].failures
    }

    /// Releases a finished transfer's slot for reuse. Its contribution to
    /// the aggregate statistics (completion counts and durations, per-peer
    /// byte totals) is retained.
    ///
    /// # Panics
    ///
    /// Panics if the transfer is still in progress or already released.
    pub fn release(&mut self, id: u64) {
        assert!(self.in_use[id as usize], "transfer slot already released");
        let t = self.transfers[id as usize];
        assert_ne!(
            t.status,
            TransferStatus::InProgress,
            "cannot release an in-progress transfer"
        );
        if t.received != 0.0 {
            *grow_slot(&mut self.retired_received, t.downloader.index()) += t.received;
            *grow_slot(&mut self.retired_served, t.source.index()) += t.received;
        }
        self.in_use[id as usize] = false;
        self.free.push(id as u32);
    }

    /// Number of completed transfers ever (released ones included).
    pub fn completed_count(&self) -> usize {
        self.completed as usize
    }

    /// Mean duration (in steps) of completed transfers ever.
    pub fn mean_completion_steps(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.completed_duration_sum as f64 / self.completed as f64
    }

    /// Total bandwidth delivered to a downloader over all its transfers,
    /// released ones included.
    pub fn total_received_by(&self, downloader: PeerId) -> f64 {
        let retired = self
            .retired_received
            .get(downloader.index())
            .copied()
            .unwrap_or(0.0);
        retired
            + self
                .live()
                .filter(|t| t.downloader == downloader)
                .map(|t| t.received)
                .sum::<f64>()
    }

    /// Total bandwidth served by a source over all its transfers, released
    /// ones included.
    pub fn total_served_by(&self, source: PeerId) -> f64 {
        let retired = self
            .retired_served
            .get(source.index())
            .copied()
            .unwrap_or(0.0);
        retired
            + self
                .live()
                .filter(|t| t.source == source)
                .map(|t| t.received)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_transfer_completes_with_full_bandwidth() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 10);
        assert_eq!(m.transfer(id).progress(), 0.0);
        let status = m.apply_grant(id, 1.0, 10);
        assert_eq!(status, TransferStatus::Completed);
        assert_eq!(m.transfer(id).duration(), Some(0));
        assert_eq!(m.completed_count(), 1);
    }

    #[test]
    fn partial_grants_accumulate_over_steps() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        assert_eq!(m.apply_grant(id, 0.3, 0), TransferStatus::InProgress);
        assert_eq!(m.apply_grant(id, 0.3, 1), TransferStatus::InProgress);
        assert!((m.transfer(id).progress() - 0.6).abs() < 1e-12);
        assert_eq!(m.apply_grant(id, 0.4, 2), TransferStatus::Completed);
        assert_eq!(m.transfer(id).duration(), Some(2));
        assert!((m.mean_completion_steps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn low_bandwidth_share_means_longer_download() {
        // Service differentiation in action: the low-reputation downloader's
        // 0.1 share takes 10 steps; the high-reputation one's 0.9 takes 2.
        let mut m = TransferManager::new();
        let slow = m.start(PeerId(0), PeerId(9), ArticleId(0), 0);
        let fast = m.start(PeerId(1), PeerId(9), ArticleId(0), 0);
        let mut now = 0;
        while m.transfer(fast).status == TransferStatus::InProgress {
            m.apply_grant(fast, 0.9, now);
            m.apply_grant(slow, 0.1, now);
            now += 1;
        }
        while m.transfer(slow).status == TransferStatus::InProgress {
            m.apply_grant(slow, 0.1, now);
            now += 1;
        }
        assert!(m.transfer(slow).duration().unwrap() > m.transfer(fast).duration().unwrap());
    }

    #[test]
    fn cancel_stops_a_transfer() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.cancel(id, 3);
        assert_eq!(m.transfer(id).status, TransferStatus::Cancelled);
        assert_eq!(m.transfer(id).finished_at, Some(3));
        // Cancel after completion is a no-op.
        let done = m.start(PeerId(0), PeerId(1), ArticleId(1), 4);
        m.apply_grant(done, 1.0, 4);
        m.cancel(done, 5);
        assert_eq!(m.transfer(done).status, TransferStatus::Completed);
    }

    #[test]
    fn in_progress_filter_by_source() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        let b = m.start(PeerId(0), PeerId(2), ArticleId(1), 0);
        let c = m.start(PeerId(3), PeerId(1), ArticleId(2), 0);
        m.apply_grant(a, 1.0, 0);
        assert_eq!(m.in_progress(None), vec![b, c]);
        assert_eq!(m.in_progress(Some(PeerId(1))), vec![c]);
    }

    #[test]
    fn totals_by_peer() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        let b = m.start(PeerId(0), PeerId(2), ArticleId(1), 0);
        m.apply_grant(a, 0.5, 0);
        m.apply_grant(b, 0.25, 0);
        assert!((m.total_received_by(PeerId(0)) - 0.75).abs() < 1e-12);
        assert!((m.total_served_by(PeerId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(m.total_served_by(PeerId(9)), 0.0);
    }

    #[test]
    fn batched_grants_drain_completions_in_grant_order() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(9), ArticleId(0), 0);
        let b = m.start(PeerId(1), PeerId(9), ArticleId(1), 0);
        let c = m.start(PeerId(2), PeerId(9), ArticleId(2), 0);
        let mut completions = vec![42]; // stale content must be cleared
        m.apply_grants(&[(a, 1.0), (b, 0.5), (c, 1.0)], 3, &mut completions);
        assert_eq!(completions, vec![a, c]);
        assert_eq!(m.transfer(b).status, TransferStatus::InProgress);
        assert_eq!(m.completed_count(), 2);
    }

    #[test]
    fn released_slots_are_reused_lifo_with_fresh_state() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.apply_grant(a, 1.0, 2);
        m.release(a);
        assert_eq!(m.slot_count(), 1);
        assert_eq!(m.free_count(), 1);
        assert_eq!(m.live_count(), 0);
        // The slot comes back with a brand-new transfer: nothing of the
        // completed predecessor (status, bytes, timestamps) survives.
        let b = m.start(PeerId(5), PeerId(6), ArticleId(9), 7);
        assert_eq!(b, a, "released slot must be reused");
        assert_eq!(m.slot_count(), 1, "arena must not grow");
        let t = m.transfer(b);
        assert_eq!(t.status, TransferStatus::InProgress);
        assert_eq!(t.received, 0.0);
        assert_eq!(t.started_at, 7);
        assert_eq!(t.finished_at, None);
        assert_eq!(t.downloader, PeerId(5));
        // Aggregates still remember the released transfer.
        assert_eq!(m.completed_count(), 1);
        assert!((m.mean_completion_steps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn release_retains_per_peer_byte_totals() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.apply_grant(a, 0.4, 0);
        m.cancel(a, 1);
        m.release(a);
        // Partial bytes of the cancelled, released transfer still count.
        assert!((m.total_received_by(PeerId(0)) - 0.4).abs() < 1e-12);
        assert!((m.total_served_by(PeerId(1)) - 0.4).abs() < 1e-12);
        // A reused slot adds on top instead of resurrecting old state.
        let b = m.start(PeerId(0), PeerId(1), ArticleId(1), 2);
        m.apply_grant(b, 0.5, 2);
        assert!((m.total_received_by(PeerId(0)) - 0.9).abs() < 1e-12);
        assert!((m.total_served_by(PeerId(1)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn live_iteration_skips_released_slots() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        let b = m.start(PeerId(2), PeerId(3), ArticleId(1), 0);
        m.apply_grant(a, 1.0, 0);
        m.release(a);
        let live: Vec<u64> = m.live().map(|t| t.id).collect();
        assert_eq!(live, vec![b]);
        assert_eq!(m.in_progress(None), vec![b]);
    }

    #[test]
    #[should_panic(expected = "in-progress")]
    fn releasing_an_in_progress_transfer_panics() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.release(id);
    }

    #[test]
    #[should_panic(expected = "released")]
    fn double_release_panics() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.cancel(id, 0);
        m.release(id);
        m.release(id);
    }

    #[test]
    #[should_panic(expected = "released")]
    fn grant_to_a_released_slot_panics() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.apply_grant(id, 1.0, 0);
        m.release(id);
        m.apply_grant(id, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "finished transfer")]
    fn grant_after_completion_panics() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.apply_grant(id, 1.0, 0);
        m.apply_grant(id, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_transfer_panics() {
        let mut m = TransferManager::new();
        m.start_sized(PeerId(0), PeerId(1), ArticleId(0), 0.0, 0);
    }

    #[test]
    fn lost_grants_back_off_exponentially() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        assert_eq!(m.failures(id), 0);
        assert!(!m.in_backoff(id, 0));
        // First loss: 2-step window.
        assert_eq!(m.fail_grant(id, 0, 2), 1);
        assert!(m.in_backoff(id, 1));
        assert!(!m.in_backoff(id, 2));
        // Second loss: 4-step window.
        assert_eq!(m.fail_grant(id, 2, 2), 2);
        assert!(m.in_backoff(id, 5));
        assert!(!m.in_backoff(id, 6));
        // Third loss: 8-step window.
        assert_eq!(m.fail_grant(id, 6, 2), 3);
        assert_eq!(m.transfer(id).backoff_until, 14);
    }

    #[test]
    fn timeout_measures_idle_steps_since_last_progress() {
        let mut m = TransferManager::new();
        let id = m.start(PeerId(0), PeerId(1), ArticleId(0), 10);
        assert!(!m.timed_out(id, 10, 16));
        assert!(m.timed_out(id, 26, 16));
        // Received bytes reset the idle clock; a zero-bandwidth grant
        // does not.
        m.apply_grant(id, 0.2, 20);
        assert!(!m.timed_out(id, 26, 16));
        m.apply_grant(id, 0.0, 30);
        assert!(m.timed_out(id, 36, 16));
    }

    #[test]
    fn reused_slots_reset_fault_state() {
        let mut m = TransferManager::new();
        let a = m.start(PeerId(0), PeerId(1), ArticleId(0), 0);
        m.fail_grant(a, 0, 2);
        m.cancel(a, 1);
        m.release(a);
        let b = m.start(PeerId(2), PeerId(3), ArticleId(1), 5);
        assert_eq!(b, a, "released slot must be reused");
        assert_eq!(m.failures(b), 0);
        assert!(!m.in_backoff(b, 5));
        assert_eq!(m.transfer(b).last_progress_at, 5);
    }
}
