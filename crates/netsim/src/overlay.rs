//! The unstructured overlay connecting the peers.
//!
//! A "fully decentralized" collaboration network needs some neighbourhood
//! structure: peers learn about sources, gossip reputation values and route
//! article lookups through their overlay neighbours. The paper does not fix
//! a topology (its simulation lets every peer reach every other), so the
//! overlay supports three options: a fully connected graph (the paper's
//! implicit choice for 100 peers), an Erdős–Rényi random graph, and a
//! Watts–Strogatz small-world ring — the latter two for scaling experiments
//! beyond the paper.

use crate::peer::PeerId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Overlay topology families.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every peer is a neighbour of every other peer.
    FullMesh,
    /// Erdős–Rényi: each undirected edge exists independently with
    /// probability `p`.
    Random {
        /// Edge probability.
        p: f64,
    },
    /// Watts–Strogatz: a ring lattice with `k` neighbours per side, each
    /// edge rewired with probability `beta`.
    SmallWorld {
        /// Neighbours per side on the initial ring (total degree `2k`).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
}

/// An undirected overlay graph over a fixed peer population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overlay {
    peers: usize,
    /// Adjacency lists, sorted, no self-loops, no duplicates.
    neighbors: Vec<Vec<PeerId>>,
    topology: Topology,
}

impl Overlay {
    /// Builds an overlay over `peers` peers with the requested topology.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is zero or topology parameters are invalid.
    pub fn build<R: Rng + ?Sized>(peers: usize, topology: Topology, rng: &mut R) -> Self {
        assert!(peers > 0, "overlay needs at least one peer");
        let mut neighbors = vec![Vec::new(); peers];
        match topology {
            Topology::FullMesh => {
                for (i, adjacent) in neighbors.iter_mut().enumerate() {
                    for j in 0..peers {
                        if i != j {
                            adjacent.push(PeerId(j as u32));
                        }
                    }
                }
            }
            Topology::Random { p } => {
                assert!((0.0..=1.0).contains(&p), "edge probability out of range");
                for i in 0..peers {
                    for j in (i + 1)..peers {
                        if rng.gen_bool(p) {
                            neighbors[i].push(PeerId(j as u32));
                            neighbors[j].push(PeerId(i as u32));
                        }
                    }
                }
            }
            Topology::SmallWorld { k, beta } => {
                assert!(k >= 1, "small world needs k >= 1");
                assert!((0.0..=1.0).contains(&beta), "beta out of range");
                assert!(peers > 2 * k, "small world needs more than 2k peers");
                // Ring lattice.
                let mut edges: Vec<(usize, usize)> = Vec::new();
                for i in 0..peers {
                    for offset in 1..=k {
                        let j = (i + offset) % peers;
                        edges.push((i, j));
                    }
                }
                // Rewire.
                let finalized: Vec<(usize, usize)> = edges
                    .iter()
                    .map(|&(i, j)| {
                        if rng.gen_bool(beta) {
                            // Rewire the far endpoint to a uniformly random
                            // peer that is neither i nor the current j.
                            let mut candidates: Vec<usize> =
                                (0..peers).filter(|&c| c != i && c != j).collect();
                            candidates.shuffle(rng);
                            (i, candidates[0])
                        } else {
                            (i, j)
                        }
                    })
                    .collect();
                for (i, j) in finalized {
                    neighbors[i].push(PeerId(j as u32));
                    neighbors[j].push(PeerId(i as u32));
                }
            }
        }
        for (i, list) in neighbors.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            list.retain(|p| p.index() != i);
        }
        Self {
            peers,
            neighbors,
            topology,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers
    }

    /// Always false; the constructor rejects empty overlays.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The topology this overlay was built with.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Neighbours of a peer, sorted by identifier.
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        &self.neighbors[peer.index()]
    }

    /// Degree of a peer.
    pub fn degree(&self, peer: PeerId) -> usize {
        self.neighbors[peer.index()].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether two peers are neighbours.
    pub fn are_neighbors(&self, a: PeerId, b: PeerId) -> bool {
        self.neighbors[a.index()].binary_search(&b).is_ok()
    }

    /// Breadth-first shortest path length (in hops) between two peers, or
    /// `None` if they are disconnected.
    pub fn hop_distance(&self, from: PeerId, to: PeerId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut visited = vec![false; self.peers];
        let mut queue = VecDeque::new();
        visited[from.index()] = true;
        queue.push_back((from, 0usize));
        while let Some((node, dist)) = queue.pop_front() {
            for &next in self.neighbors(node) {
                if next == to {
                    return Some(dist + 1);
                }
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    queue.push_back((next, dist + 1));
                }
            }
        }
        None
    }

    /// Whether the overlay is connected.
    pub fn is_connected(&self) -> bool {
        if self.peers <= 1 {
            return true;
        }
        let mut visited = vec![false; self.peers];
        let mut queue = VecDeque::new();
        visited[0] = true;
        queue.push_back(PeerId(0));
        let mut seen = 1usize;
        while let Some(node) = queue.pop_front() {
            for &next in self.neighbors(node) {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    seen += 1;
                    queue.push_back(next);
                }
            }
        }
        seen == self.peers
    }

    /// Mean degree over all peers.
    pub fn mean_degree(&self) -> f64 {
        if self.peers == 0 {
            return 0.0;
        }
        self.neighbors.iter().map(Vec::len).sum::<usize>() as f64 / self.peers as f64
    }

    /// A uniformly random neighbour of `peer`, if it has any.
    pub fn random_neighbor<R: Rng + ?Sized>(&self, peer: PeerId, rng: &mut R) -> Option<PeerId> {
        self.neighbors(peer).choose(rng).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12)
    }

    #[test]
    fn full_mesh_connects_everyone() {
        let o = Overlay::build(10, Topology::FullMesh, &mut rng());
        assert_eq!(o.len(), 10);
        assert_eq!(o.edge_count(), 45);
        assert!(o.is_connected());
        for i in 0..10 {
            assert_eq!(o.degree(PeerId(i)), 9);
            assert!(!o.are_neighbors(PeerId(i), PeerId(i)));
        }
        assert_eq!(o.hop_distance(PeerId(0), PeerId(9)), Some(1));
    }

    #[test]
    fn random_graph_extreme_probabilities() {
        let empty = Overlay::build(8, Topology::Random { p: 0.0 }, &mut rng());
        assert_eq!(empty.edge_count(), 0);
        assert!(!empty.is_connected());
        let full = Overlay::build(8, Topology::Random { p: 1.0 }, &mut rng());
        assert_eq!(full.edge_count(), 28);
        assert!(full.is_connected());
    }

    #[test]
    fn random_graph_density_tracks_probability() {
        let o = Overlay::build(60, Topology::Random { p: 0.3 }, &mut rng());
        let possible = 60.0 * 59.0 / 2.0;
        let density = o.edge_count() as f64 / possible;
        assert!((density - 0.3).abs() < 0.06, "density {density}");
    }

    #[test]
    fn small_world_without_rewiring_is_a_ring_lattice() {
        let o = Overlay::build(20, Topology::SmallWorld { k: 2, beta: 0.0 }, &mut rng());
        assert!(o.is_connected());
        for i in 0..20 {
            assert_eq!(o.degree(PeerId(i)), 4, "peer {i}");
        }
        // Opposite peers on the ring are several hops apart.
        assert!(o.hop_distance(PeerId(0), PeerId(10)).unwrap() >= 3);
    }

    #[test]
    fn small_world_rewiring_shortens_paths_on_average() {
        let ring = Overlay::build(60, Topology::SmallWorld { k: 2, beta: 0.0 }, &mut rng());
        let rewired = Overlay::build(60, Topology::SmallWorld { k: 2, beta: 0.3 }, &mut rng());
        let sample: Vec<(u32, u32)> = vec![(0, 30), (5, 35), (10, 40), (15, 45), (20, 50)];
        let mean = |o: &Overlay| {
            sample
                .iter()
                .filter_map(|&(a, b)| o.hop_distance(PeerId(a), PeerId(b)))
                .map(|d| d as f64)
                .sum::<f64>()
                / sample.len() as f64
        };
        assert!(mean(&rewired) <= mean(&ring));
    }

    #[test]
    fn hop_distance_handles_disconnected_and_self() {
        let o = Overlay::build(4, Topology::Random { p: 0.0 }, &mut rng());
        assert_eq!(o.hop_distance(PeerId(0), PeerId(0)), Some(0));
        assert_eq!(o.hop_distance(PeerId(0), PeerId(3)), None);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let o = Overlay::build(10, Topology::FullMesh, &mut rng());
        let mut r = rng();
        for _ in 0..20 {
            let n = o.random_neighbor(PeerId(3), &mut r).unwrap();
            assert!(o.are_neighbors(PeerId(3), n));
        }
        let lonely = Overlay::build(2, Topology::Random { p: 0.0 }, &mut rng());
        assert!(lonely.random_neighbor(PeerId(0), &mut r).is_none());
    }

    #[test]
    fn mean_degree_full_mesh() {
        let o = Overlay::build(5, Topology::FullMesh, &mut rng());
        assert!((o.mean_degree() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more than 2k")]
    fn small_world_needs_enough_peers() {
        let _ = Overlay::build(4, Topology::SmallWorld { k: 2, beta: 0.1 }, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_overlay_panics() {
        let _ = Overlay::build(0, Topology::FullMesh, &mut rng());
    }
}
