//! # collabsim-netsim
//!
//! The P2P collaboration-network substrate for the collabsim reproduction of
//! Bocek et al. (IPDPS 2008). The paper's incentive scheme runs on top of a
//! "large-scale, fully decentralized P2P collaboration network" in which
//! peers share storage (articles), upload bandwidth, edits of articles and
//! votes on edits. The authors do not publish their network substrate, so
//! this crate builds one from scratch:
//!
//! * [`peer`] — peer identities and per-peer resource state (bandwidth,
//!   storage, online status),
//! * [`article`] — articles, revisions, pending edits and their life cycle,
//! * [`overlay`] — the unstructured overlay graph connecting the peers
//!   (random and Watts–Strogatz small-world topologies),
//! * [`dht`] — a structured key-based article-location layer (XOR-metric
//!   lookup à la Kademlia) realizing the "fully decentralized" storage of
//!   article replicas,
//! * [`bandwidth`] — upload-bandwidth allocation among concurrent
//!   downloaders (the resource the incentive scheme differentiates),
//! * [`transfer`] — multi-step download sessions driven by the allocator,
//! * [`storage`] — per-peer article stores with capacity accounting and
//!   replication bookkeeping,
//! * [`churn`] — peer join/leave/whitewash dynamics,
//! * [`fault`] — fault injection: spec-selectable link models (latency,
//!   loss, regional clusters) and the peer connection-state lifecycle,
//! * [`clock`] — the discrete time-step clock shared by all components,
//! * [`metrics`] — network-level counters (shared articles, shared
//!   bandwidth, transfer completions) the evaluation reads out.
//!
//! The substrate is deliberately independent of the reputation/incentive
//! layer: it exposes *mechanism* (who can upload how much to whom), while
//! the `collabsim` core crate supplies *policy* (how bandwidth shares are
//! differentiated, who may edit, how votes are weighted).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod article;
pub mod bandwidth;
pub mod churn;
pub mod clock;
pub mod dht;
pub mod fault;
pub mod metrics;
pub mod overlay;
pub mod peer;
pub mod storage;
pub mod transfer;

pub use article::{Article, ArticleId, ArticleRegistry, Edit, EditId, EditKind, EditStatus};
pub use bandwidth::{
    AllocScratch, Allocation, AllocationPolicy, BandwidthAllocator, DownloadRequest,
};
pub use churn::{ChurnEvent, ChurnModel};
pub use clock::SimClock;
pub use dht::{Dht, DhtKey};
pub use fault::{
    step_connections, ConnectionRates, ConnectionState, LinkModel, LinkModelError,
    BACKOFF_BASE_STEPS, MAX_TRANSFER_RETRIES, TRANSFER_TIMEOUT_STEPS,
};
pub use metrics::NetworkMetrics;
pub use overlay::{Overlay, Topology};
pub use peer::{Peer, PeerId, PeerRegistry};
pub use storage::ArticleStore;
pub use transfer::{Transfer, TransferManager, TransferStatus};
