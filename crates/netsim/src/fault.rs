//! Fault-injected network substrate: link models, per-link latency and
//! loss, and the peer connection-state lifecycle.
//!
//! The paper evaluates its incentive scheme on an *ideal* network — every
//! allocated transfer completes deterministically at full bandwidth. This
//! module supplies the spec-selectable [`LinkModel`]s that relax that
//! assumption: per-link latency (uniform or lognormal-bucketed), iid
//! message loss, and a regional two-cluster topology with an inter-cluster
//! penalty. The download phase consults the model when applying bandwidth
//! grants, so a lossy or high-latency network delays and fails transfers
//! without touching the allocator or the collect-stage RNG stream.
//!
//! Determinism contract:
//!
//! * Per-link **latency** is a pure hash of `(seed, downloader, source)` —
//!   no RNG stream is consumed, so a link's latency is stable across the
//!   whole run and across worker-thread counts.
//! * **Loss** draws and **connection-state transitions** come from the
//!   dedicated `net_rng` stream owned by the simulation world, never from
//!   the step RNG — the ideal model draws *nothing*, which is what keeps
//!   `network = ideal` bit-identical to the pre-fault engine.

use crate::peer::{PeerId, PeerRegistry};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bounded retry budget per transfer: a transfer whose grant is lost more
/// than this many times is failed permanently (slot refunded to the free
/// list; the downloader re-draws a source next step).
pub const MAX_TRANSFER_RETRIES: u32 = 3;

/// Exponential-backoff base, in steps: after the `n`-th lost grant the
/// transfer holds off for `BACKOFF_BASE_STEPS << (n - 1)` steps before
/// requesting bandwidth again.
pub const BACKOFF_BASE_STEPS: u64 = 2;

/// Steps without received bytes after which a transfer times out, is
/// cancelled and refunds its slot (the downloader re-draws next step).
pub const TRANSFER_TIMEOUT_STEPS: u64 = 16;

/// Lognormal octile bucketing: the standard-normal quantile midpoints of
/// the eight octiles, so hashed links land on a latency distribution that
/// matches the configured `exp(μ + σ·z)` shape without consuming RNG.
const OCTILE_Z: [f64; 8] = [-1.534, -0.887, -0.489, -0.157, 0.157, 0.489, 0.887, 1.534];

/// A typed error from [`LinkModel::from_label`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkModelError {
    /// The model name before the first comma is not a known link model.
    UnknownModel {
        /// The unrecognised name.
        name: String,
    },
    /// The model name is known but its parameter list is malformed.
    InvalidParameter {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LinkModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkModelError::UnknownModel { name } => {
                write!(f, "unknown network model `{name}`")
            }
            LinkModelError::InvalidParameter { message } => {
                write!(f, "invalid network model parameter: {message}")
            }
        }
    }
}

impl std::error::Error for LinkModelError {}

/// Per-step connection-state transition probabilities of a non-ideal link
/// model, drawn from the dedicated `net_rng` stream (one draw per peer per
/// step, online or not, so the draw count never depends on network state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectionRates {
    /// P(Connected → Degraded) per step.
    pub degrade: f64,
    /// P(Degraded → Connected) per step.
    pub recover: f64,
    /// P(Degraded → Disconnected) per step.
    pub drop: f64,
    /// P(Disconnected → Connected) per step.
    pub reconnect: f64,
}

/// Link-quality state of a peer's network attachment, driven by
/// [`step_connections`] under a non-ideal [`LinkModel`].
///
/// `Connected` is the only state an ideal network ever sees. `Degraded`
/// doubles the loss probability of grants served by the peer;
/// `Disconnected` removes the peer from the upload-source pool entirely
/// (its downloaders re-draw from the remaining sources instead of
/// stalling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConnectionState {
    /// Fully reachable (the only state under `network = ideal`).
    #[default]
    Connected,
    /// Reachable but flaky: grants from this peer fail twice as often.
    Degraded,
    /// Unreachable: excluded from the upload-source pool until it
    /// reconnects.
    Disconnected,
}

/// A spec-selectable model of link behaviour, consulted by the download
/// phase when applying bandwidth grants.
///
/// The text form is `<model>[,param…]` (see [`LinkModel::label`] /
/// [`LinkModel::from_label`]); `ideal` is the default and is guaranteed to
/// be bit-identical to the engine without any fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LinkModel {
    /// No latency, no loss, no connection churn — the paper's network.
    #[default]
    Ideal,
    /// Per-link latency drawn uniformly (via a link hash) from
    /// `min..=max` steps; no loss.
    UniformLatency {
        /// Minimum per-link latency in steps.
        min: u64,
        /// Maximum per-link latency in steps (≥ `min`).
        max: u64,
    },
    /// Per-link latency `exp(μ + σ·z)` steps with `z` hashed onto the
    /// eight octile midpoints of the standard normal; no loss.
    LognormalLatency {
        /// Log-space location parameter μ.
        mu: f64,
        /// Log-space scale parameter σ (> 0).
        sigma: f64,
    },
    /// Independent, identically distributed loss: every applied grant is
    /// lost with probability `loss`; no latency.
    IidLoss {
        /// Per-grant loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Two regional clusters (peer-id halves): intra-cluster links are
    /// ideal, inter-cluster links pay `penalty` steps of latency and lose
    /// grants with probability `loss`.
    TwoClusters {
        /// Inter-cluster per-grant loss probability in `[0, 1]`.
        loss: f64,
        /// Inter-cluster latency penalty in steps.
        penalty: u64,
    },
}

/// SplitMix64-style avalanche over `(seed, downloader, source)`: the pure
/// per-link hash behind latency bucketing. Stable for the whole run.
fn link_hash(seed: u64, downloader: PeerId, source: PeerId) -> u64 {
    let mut x = seed ^ ((u64::from(downloader.0) << 32) | u64::from(source.0));
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The regional cluster of a peer under [`LinkModel::TwoClusters`]: the
/// lower half of the id range is cluster 0, the upper half cluster 1.
pub fn cluster_of(peer: PeerId, population: usize) -> usize {
    usize::from(peer.index() * 2 >= population)
}

impl LinkModel {
    /// Whether this is the ideal (fault-free) model. The download phase
    /// skips every fault branch — and `net_rng` is never drawn from — when
    /// this returns `true`.
    pub fn is_ideal(&self) -> bool {
        matches!(self, LinkModel::Ideal)
    }

    /// Stable text form: `<model>[,param…]`, parseable by
    /// [`LinkModel::from_label`] and round-tripping exactly (parameters
    /// render via the shortest round-trippable float form).
    pub fn label(&self) -> String {
        match self {
            LinkModel::Ideal => "ideal".to_string(),
            LinkModel::UniformLatency { min, max } => format!("uniform,{min},{max}"),
            LinkModel::LognormalLatency { mu, sigma } => format!("lognormal,{mu},{sigma}"),
            LinkModel::IidLoss { loss } => format!("lossy,{loss}"),
            LinkModel::TwoClusters { loss, penalty } => format!("clustered,{loss},{penalty}"),
        }
    }

    /// Parses a model from its [`LinkModel::label`] form.
    pub fn from_label(text: &str) -> Result<Self, LinkModelError> {
        let mut parts = text.split(',').map(str::trim);
        let name = parts.next().unwrap_or("");
        let params: Vec<&str> = parts.collect();
        let arity = |n: usize| -> Result<(), LinkModelError> {
            if params.len() == n {
                Ok(())
            } else {
                Err(LinkModelError::InvalidParameter {
                    message: format!("`{name}` takes {n} parameter(s), got {}", params.len()),
                })
            }
        };
        fn num<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, LinkModelError> {
            value.parse().map_err(|_| LinkModelError::InvalidParameter {
                message: format!("`{name}`: cannot parse `{value}`"),
            })
        }
        match name {
            "ideal" => {
                arity(0)?;
                Ok(LinkModel::Ideal)
            }
            "uniform" => {
                arity(2)?;
                Ok(LinkModel::UniformLatency {
                    min: num(name, params[0])?,
                    max: num(name, params[1])?,
                })
            }
            "lognormal" => {
                arity(2)?;
                Ok(LinkModel::LognormalLatency {
                    mu: num(name, params[0])?,
                    sigma: num(name, params[1])?,
                })
            }
            "lossy" => {
                arity(1)?;
                Ok(LinkModel::IidLoss {
                    loss: num(name, params[0])?,
                })
            }
            "clustered" => {
                arity(2)?;
                Ok(LinkModel::TwoClusters {
                    loss: num(name, params[0])?,
                    penalty: num(name, params[1])?,
                })
            }
            other => Err(LinkModelError::UnknownModel {
                name: other.to_string(),
            }),
        }
    }

    /// Validates the model parameters; the message names what is out of
    /// range.
    pub fn check(&self) -> Result<(), String> {
        match *self {
            LinkModel::Ideal => Ok(()),
            LinkModel::UniformLatency { min, max } => {
                if max < min {
                    Err("uniform latency needs max >= min".to_string())
                } else {
                    Ok(())
                }
            }
            LinkModel::LognormalLatency { mu, sigma } => {
                if !mu.is_finite() {
                    Err("lognormal mu must be finite".to_string())
                } else if !(sigma > 0.0 && sigma.is_finite()) {
                    Err("lognormal sigma must be positive and finite".to_string())
                } else {
                    Ok(())
                }
            }
            LinkModel::IidLoss { loss } => {
                if (0.0..=1.0).contains(&loss) {
                    Ok(())
                } else {
                    Err("loss probability must lie in [0, 1]".to_string())
                }
            }
            LinkModel::TwoClusters { loss, penalty } => {
                if !(0.0..=1.0).contains(&loss) {
                    Err("inter-cluster loss probability must lie in [0, 1]".to_string())
                } else if penalty == 0 {
                    Err("inter-cluster penalty must be at least 1 step".to_string())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Panicking shim around [`LinkModel::check`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }

    /// Per-link latency in steps: how long after a transfer starts its
    /// grants begin to arrive. A pure function of `(seed, downloader,
    /// source)` — no RNG stream is consumed, so the latency of a link is
    /// stable for the whole run.
    pub fn link_latency(
        &self,
        seed: u64,
        downloader: PeerId,
        source: PeerId,
        population: usize,
    ) -> u64 {
        match *self {
            LinkModel::Ideal | LinkModel::IidLoss { .. } => 0,
            LinkModel::UniformLatency { min, max } => {
                let h = link_hash(seed, downloader, source);
                min + h % (max - min + 1)
            }
            LinkModel::LognormalLatency { mu, sigma } => {
                let h = link_hash(seed, downloader, source);
                let z = OCTILE_Z[(h % 8) as usize];
                (mu + sigma * z).exp().round().max(0.0) as u64
            }
            LinkModel::TwoClusters { penalty, .. } => {
                if cluster_of(downloader, population) == cluster_of(source, population) {
                    0
                } else {
                    penalty
                }
            }
        }
    }

    /// Per-grant loss probability of the `downloader ← source` link
    /// (before the degraded-source doubling the download phase applies).
    pub fn link_loss(&self, downloader: PeerId, source: PeerId, population: usize) -> f64 {
        match *self {
            LinkModel::Ideal
            | LinkModel::UniformLatency { .. }
            | LinkModel::LognormalLatency { .. } => 0.0,
            LinkModel::IidLoss { loss } => loss,
            LinkModel::TwoClusters { loss, .. } => {
                if cluster_of(downloader, population) == cluster_of(source, population) {
                    0.0
                } else {
                    loss
                }
            }
        }
    }

    /// Connection-state transition rates of this model, or `None` for the
    /// ideal model (whose lifecycle never runs — every peer stays
    /// [`ConnectionState::Connected`] and `net_rng` is untouched).
    pub fn connection_rates(&self) -> Option<ConnectionRates> {
        match *self {
            LinkModel::Ideal => None,
            LinkModel::UniformLatency { .. } | LinkModel::LognormalLatency { .. } => {
                Some(ConnectionRates {
                    degrade: 0.01,
                    recover: 0.3,
                    drop: 0.002,
                    reconnect: 0.25,
                })
            }
            LinkModel::IidLoss { loss } | LinkModel::TwoClusters { loss, .. } => {
                Some(ConnectionRates {
                    degrade: (0.01 + loss * 0.2).min(1.0),
                    recover: 0.3,
                    drop: (loss * 0.05).min(0.05),
                    reconnect: 0.25,
                })
            }
        }
    }
}

/// Advances every peer's connection state by one step under `rates`,
/// drawing exactly one uniform variate per registry slot from `rng`
/// (online or not, connected or not), so the stream position after a step
/// depends only on the population — never on the network's current state.
///
/// Returns `(degraded, disconnected)` counts over online peers, for
/// observers and benches.
pub fn step_connections<R: Rng + ?Sized>(
    peers: &mut PeerRegistry,
    rates: &ConnectionRates,
    rng: &mut R,
) -> (usize, usize) {
    let mut degraded = 0usize;
    let mut disconnected = 0usize;
    for index in 0..peers.len() {
        let u: f64 = rng.gen();
        let peer = peers.peer_mut(PeerId(index as u32));
        peer.connection = match peer.connection {
            ConnectionState::Connected => {
                if u < rates.degrade {
                    ConnectionState::Degraded
                } else {
                    ConnectionState::Connected
                }
            }
            ConnectionState::Degraded => {
                if u < rates.recover {
                    ConnectionState::Connected
                } else if u < rates.recover + rates.drop {
                    ConnectionState::Disconnected
                } else {
                    ConnectionState::Degraded
                }
            }
            ConnectionState::Disconnected => {
                if u < rates.reconnect {
                    ConnectionState::Connected
                } else {
                    ConnectionState::Disconnected
                }
            }
        };
        if peer.online {
            match peer.connection {
                ConnectionState::Degraded => degraded += 1,
                ConnectionState::Disconnected => disconnected += 1,
                ConnectionState::Connected => {}
            }
        }
    }
    (degraded, disconnected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_round_trip_for_every_model() {
        let models = [
            LinkModel::Ideal,
            LinkModel::UniformLatency { min: 1, max: 5 },
            LinkModel::LognormalLatency {
                mu: 1.2,
                sigma: 0.5,
            },
            LinkModel::IidLoss { loss: 0.05 },
            LinkModel::TwoClusters {
                loss: 0.1,
                penalty: 4,
            },
        ];
        for model in models {
            let label = model.label();
            assert_eq!(LinkModel::from_label(&label), Ok(model), "label: {label}");
            model.validate();
        }
    }

    #[test]
    fn unknown_model_names_are_typed_errors() {
        assert_eq!(
            LinkModel::from_label("wormhole,3"),
            Err(LinkModelError::UnknownModel {
                name: "wormhole".to_string()
            })
        );
        let rendered = LinkModel::from_label("wormhole").unwrap_err().to_string();
        assert!(rendered.contains("unknown network model `wormhole`"));
    }

    #[test]
    fn malformed_parameters_are_rejected() {
        assert!(matches!(
            LinkModel::from_label("lossy"),
            Err(LinkModelError::InvalidParameter { .. })
        ));
        assert!(matches!(
            LinkModel::from_label("lossy,0.05,9"),
            Err(LinkModelError::InvalidParameter { .. })
        ));
        assert!(matches!(
            LinkModel::from_label("uniform,a,b"),
            Err(LinkModelError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn out_of_range_parameters_fail_check() {
        assert!(LinkModel::UniformLatency { min: 5, max: 1 }
            .check()
            .is_err());
        assert!(LinkModel::LognormalLatency {
            mu: 0.0,
            sigma: 0.0
        }
        .check()
        .is_err());
        assert!(LinkModel::IidLoss { loss: 1.5 }.check().is_err());
        assert!(LinkModel::TwoClusters {
            loss: 0.1,
            penalty: 0
        }
        .check()
        .is_err());
    }

    #[test]
    fn ideal_model_is_faultless() {
        let m = LinkModel::Ideal;
        assert!(m.is_ideal());
        assert_eq!(m.link_latency(7, PeerId(0), PeerId(1), 100), 0);
        assert_eq!(m.link_loss(PeerId(0), PeerId(1), 100), 0.0);
        assert!(m.connection_rates().is_none());
    }

    #[test]
    fn uniform_latency_is_stable_and_in_range() {
        let m = LinkModel::UniformLatency { min: 2, max: 6 };
        for d in 0..20u32 {
            for s in 0..20u32 {
                let l = m.link_latency(42, PeerId(d), PeerId(s), 40);
                assert!((2..=6).contains(&l), "latency {l} out of range");
                assert_eq!(l, m.link_latency(42, PeerId(d), PeerId(s), 40));
            }
        }
        // Different links see different latencies (the hash avalanches).
        let distinct: std::collections::HashSet<u64> = (0..20u32)
            .map(|s| m.link_latency(42, PeerId(0), PeerId(s), 40))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn lognormal_latency_follows_the_octile_buckets() {
        let m = LinkModel::LognormalLatency {
            mu: 1.5,
            sigma: 0.5,
        };
        let lo = (1.5f64 + 0.5 * OCTILE_Z[0]).exp().round() as u64;
        let hi = (1.5f64 + 0.5 * OCTILE_Z[7]).exp().round() as u64;
        for s in 0..50u32 {
            let l = m.link_latency(7, PeerId(99), PeerId(s), 100);
            assert!((lo..=hi).contains(&l), "latency {l} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn clustered_links_penalise_inter_cluster_traffic_only() {
        let m = LinkModel::TwoClusters {
            loss: 0.2,
            penalty: 5,
        };
        // Peers 0..50 are cluster 0, peers 50..100 cluster 1.
        assert_eq!(m.link_latency(1, PeerId(3), PeerId(7), 100), 0);
        assert_eq!(m.link_latency(1, PeerId(3), PeerId(70), 100), 5);
        assert_eq!(m.link_loss(PeerId(3), PeerId(7), 100), 0.0);
        assert_eq!(m.link_loss(PeerId(3), PeerId(70), 100), 0.2);
        assert_eq!(cluster_of(PeerId(49), 100), 0);
        assert_eq!(cluster_of(PeerId(50), 100), 1);
    }

    #[test]
    fn connection_lifecycle_reaches_every_state_and_is_deterministic() {
        let mut peers = PeerRegistry::with_population(200);
        let rates = ConnectionRates {
            degrade: 0.3,
            recover: 0.2,
            drop: 0.2,
            reconnect: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_degraded = false;
        let mut seen_disconnected = false;
        for _ in 0..50 {
            let (deg, disc) = step_connections(&mut peers, &rates, &mut rng);
            seen_degraded |= deg > 0;
            seen_disconnected |= disc > 0;
        }
        assert!(seen_degraded && seen_disconnected);
        // Same seed reproduces the same final states.
        let mut peers_b = PeerRegistry::with_population(200);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            step_connections(&mut peers_b, &rates, &mut rng_b);
        }
        for p in 0..200u32 {
            assert_eq!(
                peers.peer(PeerId(p)).connection,
                peers_b.peer(PeerId(p)).connection
            );
        }
    }

    #[test]
    fn connection_rates_scale_with_loss() {
        let mild = LinkModel::IidLoss { loss: 0.01 }
            .connection_rates()
            .unwrap();
        let harsh = LinkModel::IidLoss { loss: 0.5 }.connection_rates().unwrap();
        assert!(harsh.degrade > mild.degrade);
        assert!(harsh.drop >= mild.drop);
        let latency_only = LinkModel::UniformLatency { min: 1, max: 3 }
            .connection_rates()
            .unwrap();
        assert!(latency_only.degrade > 0.0);
    }
}
