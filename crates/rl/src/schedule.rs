//! Temperature and learning-rate schedules.
//!
//! The paper uses a hard two-phase temperature schedule: during the
//! 10 000-step training phase the Boltzmann temperature is "set to the
//! highest possible floating-point value" (uniform exploration, so no agent
//! ends up with a degenerated Q-matrix), and afterwards it is set to `T = 1`
//! so agents exploit what they learned. [`TwoPhaseSchedule`] reproduces
//! that; the other schedules (constant, linear decay, exponential decay) are
//! the standard alternatives used in the ablation benches.

use serde::{Deserialize, Serialize};

/// A scalar schedule over discrete time steps.
pub trait Schedule: Send + Sync {
    /// Value of the scheduled quantity at time step `t`.
    fn value(&self, t: u64) -> f64;

    /// Short name used in logs and ablation tables.
    fn name(&self) -> &'static str;
}

/// A constant schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantSchedule {
    /// The constant value.
    pub value: f64,
}

impl ConstantSchedule {
    /// Creates a constant schedule.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl Schedule for ConstantSchedule {
    fn value(&self, _t: u64) -> f64 {
        self.value
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Linear interpolation from `start` to `end` over `duration` steps, then
/// constant at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDecay {
    /// Value at step 0.
    pub start: f64,
    /// Value at and after step `duration`.
    pub end: f64,
    /// Number of steps over which to interpolate.
    pub duration: u64,
}

impl LinearDecay {
    /// Creates a linear decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn new(start: f64, end: f64, duration: u64) -> Self {
        assert!(duration > 0, "duration must be positive");
        Self {
            start,
            end,
            duration,
        }
    }
}

impl Schedule for LinearDecay {
    fn value(&self, t: u64) -> f64 {
        if t >= self.duration {
            return self.end;
        }
        let frac = t as f64 / self.duration as f64;
        self.start + (self.end - self.start) * frac
    }

    fn name(&self) -> &'static str {
        "linear-decay"
    }
}

/// Exponential decay `start · rate^t`, floored at `floor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialDecay {
    /// Value at step 0.
    pub start: f64,
    /// Per-step multiplicative decay rate in `(0, 1]`.
    pub rate: f64,
    /// Lower bound the schedule never goes below.
    pub floor: f64,
}

impl ExponentialDecay {
    /// Creates an exponential decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `rate ∉ (0, 1]` or `floor > start`.
    pub fn new(start: f64, rate: f64, floor: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must lie in (0, 1]");
        assert!(floor <= start, "floor must not exceed the starting value");
        Self { start, rate, floor }
    }
}

impl Schedule for ExponentialDecay {
    fn value(&self, t: u64) -> f64 {
        // Clamp the exponent so extreme step counts cannot underflow to a
        // subnormal before the floor is applied.
        let exponent = t.min(1 << 20) as f64;
        (self.start * self.rate.powf(exponent)).max(self.floor)
    }

    fn name(&self) -> &'static str {
        "exponential-decay"
    }
}

/// The paper's two-phase schedule: `training_value` for the first
/// `training_steps` steps, `evaluation_value` afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPhaseSchedule {
    /// Value during the training phase.
    pub training_value: f64,
    /// Value after the training phase.
    pub evaluation_value: f64,
    /// Length of the training phase in steps.
    pub training_steps: u64,
}

impl TwoPhaseSchedule {
    /// Creates a two-phase schedule.
    pub fn new(training_value: f64, evaluation_value: f64, training_steps: u64) -> Self {
        Self {
            training_value,
            evaluation_value,
            training_steps,
        }
    }

    /// The paper's temperature schedule: `T = f64::MAX` for the 10 000-step
    /// training phase, then `T = 1`.
    pub fn paper_temperature() -> Self {
        Self::new(f64::MAX, 1.0, 10_000)
    }

    /// Whether step `t` is still in the training phase.
    pub fn in_training(&self, t: u64) -> bool {
        t < self.training_steps
    }
}

impl Schedule for TwoPhaseSchedule {
    fn value(&self, t: u64) -> f64 {
        if self.in_training(t) {
            self.training_value
        } else {
            self.evaluation_value
        }
    }

    fn name(&self) -> &'static str {
        "two-phase"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantSchedule::new(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn linear_decay_interpolates() {
        let s = LinearDecay::new(1.0, 0.0, 10);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(10), 0.0);
        assert_eq!(s.value(100), 0.0);
    }

    #[test]
    fn linear_decay_can_increase() {
        let s = LinearDecay::new(0.0, 2.0, 4);
        assert!((s.value(2) - 1.0).abs() < 1e-12);
        assert_eq!(s.value(4), 2.0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn linear_zero_duration_panics() {
        let _ = LinearDecay::new(1.0, 0.0, 0);
    }

    #[test]
    fn exponential_decay_respects_floor() {
        let s = ExponentialDecay::new(1.0, 0.5, 0.1);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(1) - 0.5).abs() < 1e-12);
        assert!((s.value(2) - 0.25).abs() < 1e-12);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(u64::MAX), 0.1);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn exponential_bad_rate_panics() {
        let _ = ExponentialDecay::new(1.0, 1.5, 0.0);
    }

    #[test]
    fn two_phase_switches_at_boundary() {
        let s = TwoPhaseSchedule::new(100.0, 1.0, 10);
        assert_eq!(s.value(0), 100.0);
        assert_eq!(s.value(9), 100.0);
        assert_eq!(s.value(10), 1.0);
        assert_eq!(s.value(11), 1.0);
        assert!(s.in_training(9));
        assert!(!s.in_training(10));
    }

    #[test]
    fn paper_temperature_matches_section_4b() {
        let s = TwoPhaseSchedule::paper_temperature();
        assert_eq!(s.value(0), f64::MAX);
        assert_eq!(s.value(9_999), f64::MAX);
        assert_eq!(s.value(10_000), 1.0);
    }

    #[test]
    fn schedules_have_distinct_names() {
        let names = [
            ConstantSchedule::new(1.0).name(),
            LinearDecay::new(1.0, 0.0, 1).name(),
            ExponentialDecay::new(1.0, 0.9, 0.0).name(),
            TwoPhaseSchedule::paper_temperature().name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            4
        );
    }
}
