//! The tabular Q-learning agent.
//!
//! Implements exactly the update rule the paper quotes (Section IV-A,
//! following Sutton & Barto):
//!
//! ```text
//! Q(s, a) ← (1 − α) · Q(s, a) + α · (r + γ · max_b Q(s′, b))
//! ```
//!
//! with learning rate `α`, discount factor `γ` and Boltzmann action
//! selection. The agent itself is policy-agnostic: the caller supplies any
//! [`Policy`] (the simulation switches from uniform exploration during the
//! training phase to a `T = 1` Boltzmann policy afterwards).

use crate::policy::Policy;
use crate::qtable::QTable;
use crate::space::{ActionSpace, StateSpace};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Q-learning update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QLearningParams {
    /// Learning rate `α ∈ (0, 1]`.
    pub learning_rate: f64,
    /// Discount factor `γ ∈ [0, 1]`.
    pub discount: f64,
    /// Initial Q-value for every state/action pair.
    pub initial_q: f64,
}

impl Default for QLearningParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            discount: 0.9,
            initial_q: 0.0,
        }
    }
}

impl QLearningParams {
    /// Validates the parameter ranges, naming the offending field in the
    /// error message.
    pub fn check(&self) -> Result<(), String> {
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err("learning rate must lie in (0, 1]".to_string());
        }
        if !(0.0..=1.0).contains(&self.discount) {
            return Err("discount must lie in [0, 1]".to_string());
        }
        if !self.initial_q.is_finite() {
            return Err("initial Q must be finite".to_string());
        }
        Ok(())
    }

    /// Panicking shim around [`QLearningParams::check`].
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate ∉ (0, 1]` or `discount ∉ [0, 1]`.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }
}

/// A tabular Q-learning agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearningAgent {
    params: QLearningParams,
    table: QTable,
    updates: u64,
}

impl QLearningAgent {
    /// Creates an agent over the given state and action spaces.
    pub fn new(states: StateSpace, actions: ActionSpace, params: QLearningParams) -> Self {
        params.validate();
        Self {
            table: QTable::new(states, actions, params.initial_q),
            params,
            updates: 0,
        }
    }

    /// The agent's hyper-parameters.
    pub fn params(&self) -> &QLearningParams {
        &self.params
    }

    /// Adjusts the learning rate mid-run (used by annealing schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f64) {
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must lie in (0, 1]"
        );
        self.params.learning_rate = learning_rate;
    }

    /// Read access to the Q-table.
    pub fn table(&self) -> &QTable {
        &self.table
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Selects an action in `state` using the supplied policy.
    pub fn select_action(
        &self,
        state: usize,
        policy: &dyn Policy,
        rng: &mut dyn rand::RngCore,
    ) -> usize {
        policy.select_action(self.table.row(state), rng)
    }

    /// Applies one Q-learning update for the transition
    /// `(state, action) → (reward, next_state)`.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        debug_assert!(reward.is_finite(), "reward must be finite");
        let alpha = self.params.learning_rate;
        let gamma = self.params.discount;
        let old = self.table.get(state, action);
        let future = self.table.max_value(next_state);
        let new = (1.0 - alpha) * old + alpha * (reward + gamma * future);
        self.table.set(state, action, new);
        self.updates += 1;
    }

    /// Applies a terminal update (no future value): the paper's simulation
    /// has no terminal states, but the library supports episodic tasks.
    pub fn update_terminal(&mut self, state: usize, action: usize, reward: f64) {
        let alpha = self.params.learning_rate;
        let old = self.table.get(state, action);
        let new = (1.0 - alpha) * old + alpha * reward;
        self.table.set(state, action, new);
        self.updates += 1;
    }

    /// The greedy action for a state.
    pub fn greedy_action(&self, state: usize) -> usize {
        self.table.greedy_action(state)
    }

    /// Resets every Q-value to the configured initial value while keeping
    /// the hyper-parameters. The paper *resets reputation values but keeps
    /// the Q-matrices* between phases; this method exists for the opposite
    /// ablation (forgetting agents).
    pub fn reset_table(&mut self) {
        self.table.fill(self.params.initial_q);
        self.updates = 0;
    }

    /// Greatest absolute Q-value, used as a convergence diagnostic.
    pub fn max_abs_q(&self) -> f64 {
        self.table
            .iter()
            .map(|(_, _, v)| v.abs())
            .fold(0.0, f64::max)
    }
}

/// Upper bound on the magnitude any Q-value can reach for bounded rewards:
/// `|Q| ≤ r_max / (1 − γ)` (for `γ < 1`). Exposed for property tests.
pub fn q_value_bound(max_abs_reward: f64, discount: f64) -> f64 {
    assert!((0.0..1.0).contains(&discount), "bound requires γ < 1");
    max_abs_reward / (1.0 - discount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boltzmann::BoltzmannPolicy;
    use crate::policy::GreedyPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agent() -> QLearningAgent {
        QLearningAgent::new(
            StateSpace::new(3),
            ActionSpace::new(2),
            QLearningParams::default(),
        )
    }

    #[test]
    fn update_matches_formula() {
        let mut a = agent();
        // Pre-set some future value.
        a.update(1, 0, 10.0, 1); // Q(1,0) = 0.9*0 + 0.1*(10 + 0.9*0) = 1.0
        assert!((a.table().get(1, 0) - 1.0).abs() < 1e-12);
        // Now update (0, 1) with next state 1 whose max is 1.0.
        a.update(0, 1, 2.0, 1);
        let expected = 0.9 * 0.0 + 0.1 * (2.0 + 0.9 * 1.0);
        assert!((a.table().get(0, 1) - expected).abs() < 1e-12);
        assert_eq!(a.updates(), 2);
    }

    #[test]
    fn terminal_update_ignores_future() {
        let mut a = agent();
        a.update(2, 1, 100.0, 2);
        let mut b = agent();
        b.update_terminal(2, 1, 100.0);
        // Terminal update should equal the non-terminal one only when the
        // future value is zero, which it is here.
        assert_eq!(a.table().get(2, 1), b.table().get(2, 1));
    }

    #[test]
    fn repeated_reward_converges_to_fixed_point() {
        // A single state, single action, constant reward r: the fixed point
        // of the update is Q* = r / (1 - γ).
        let params = QLearningParams {
            learning_rate: 0.5,
            discount: 0.9,
            initial_q: 0.0,
        };
        let mut a = QLearningAgent::new(StateSpace::new(1), ActionSpace::new(1), params);
        for _ in 0..2_000 {
            a.update(0, 0, 1.0, 0);
        }
        let fixed_point = 1.0 / (1.0 - 0.9);
        assert!(
            (a.table().get(0, 0) - fixed_point).abs() < 1e-6,
            "Q = {}",
            a.table().get(0, 0)
        );
    }

    #[test]
    fn q_values_respect_theoretical_bound() {
        let params = QLearningParams {
            learning_rate: 0.3,
            discount: 0.8,
            initial_q: 0.0,
        };
        let mut a = QLearningAgent::new(StateSpace::new(4), ActionSpace::new(3), params);
        let mut rng = StdRng::seed_from_u64(20);
        let bound = q_value_bound(1.0, 0.8);
        use rand::Rng;
        let mut state = 0usize;
        for _ in 0..10_000 {
            let action = rng.gen_range(0..3);
            let reward = rng.gen_range(-1.0..1.0);
            let next = rng.gen_range(0..4);
            a.update(state, action, reward, next);
            state = next;
        }
        assert!(a.max_abs_q() <= bound + 1e-9);
        assert!(a.table().is_finite());
    }

    #[test]
    fn greedy_learner_finds_better_action() {
        // Two actions in a single state: action 1 always pays 1, action 0
        // pays 0. After uniform exploration the greedy action must be 1.
        let mut a = QLearningAgent::new(
            StateSpace::new(1),
            ActionSpace::new(2),
            QLearningParams::default(),
        );
        let mut rng = StdRng::seed_from_u64(8);
        let explore = BoltzmannPolicy::training_phase();
        for _ in 0..500 {
            let action = a.select_action(0, &explore, &mut rng);
            let reward = if action == 1 { 1.0 } else { 0.0 };
            a.update(0, action, reward, 0);
        }
        assert_eq!(a.greedy_action(0), 1);
        // And the greedy policy then exploits it.
        assert_eq!(a.select_action(0, &GreedyPolicy, &mut rng), 1);
    }

    #[test]
    fn reset_clears_table_and_counter() {
        let mut a = agent();
        a.update(0, 0, 5.0, 1);
        a.reset_table();
        assert_eq!(a.updates(), 0);
        assert_eq!(a.table().get(0, 0), 0.0);
    }

    #[test]
    fn set_learning_rate_changes_params() {
        let mut a = agent();
        a.set_learning_rate(0.5);
        assert_eq!(a.params().learning_rate, 0.5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_learning_rate_panics() {
        let params = QLearningParams {
            learning_rate: 0.0,
            ..Default::default()
        };
        let _ = QLearningAgent::new(StateSpace::new(1), ActionSpace::new(1), params);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn invalid_discount_panics() {
        let params = QLearningParams {
            discount: 1.5,
            ..Default::default()
        };
        let _ = QLearningAgent::new(StateSpace::new(1), ActionSpace::new(1), params);
    }

    #[test]
    fn bound_helper_matches_geometric_series() {
        assert!((q_value_bound(2.0, 0.5) - 4.0).abs() < 1e-12);
    }
}
