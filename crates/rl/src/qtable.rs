//! Dense tabular Q-value storage.
//!
//! The paper's agents keep a full "Q-Matrix" over 10 states × the composite
//! action space; the training phase explicitly avoids "degenerated
//! Q-Matrices" by exploring uniformly. [`QTable`] is that matrix: a dense,
//! row-major `Vec<f64>` with accessor helpers for the greedy action and the
//! row maxima the Q-learning update needs.

use crate::space::{ActionSpace, StateSpace};
use serde::{Deserialize, Serialize};

/// A dense table of Q-values indexed by `(state, action)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    states: usize,
    actions: usize,
    values: Vec<f64>,
}

impl QTable {
    /// Creates a table with all Q-values initialised to `initial`.
    pub fn new(states: StateSpace, actions: ActionSpace, initial: f64) -> Self {
        Self {
            states: states.len(),
            actions: actions.len(),
            values: vec![initial; states.len() * actions.len()],
        }
    }

    /// Creates a zero-initialised table from raw dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeroed(states: usize, actions: usize) -> Self {
        assert!(states > 0 && actions > 0, "Q-table must be non-empty");
        Self {
            states,
            actions,
            values: vec![0.0; states * actions],
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.actions
    }

    #[inline]
    fn index(&self, state: usize, action: usize) -> usize {
        debug_assert!(state < self.states, "state out of range");
        debug_assert!(action < self.actions, "action out of range");
        state * self.actions + action
    }

    /// Q-value of a state/action pair.
    #[inline]
    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.values[self.index(state, action)]
    }

    /// Sets the Q-value of a state/action pair.
    #[inline]
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        let i = self.index(state, action);
        self.values[i] = value;
    }

    /// Adds `delta` to the Q-value of a state/action pair.
    #[inline]
    pub fn add(&mut self, state: usize, action: usize, delta: f64) {
        let i = self.index(state, action);
        self.values[i] += delta;
    }

    /// The full row of Q-values for a state.
    #[inline]
    pub fn row(&self, state: usize) -> &[f64] {
        let start = self.index(state, 0);
        &self.values[start..start + self.actions]
    }

    /// Maximum Q-value over all actions in a state — the `max_b Q(s', b)`
    /// term of the Q-learning update.
    pub fn max_value(&self, state: usize) -> f64 {
        self.row(state)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The greedy action for a state; ties are broken towards the smallest
    /// action index so the result is deterministic.
    pub fn greedy_action(&self, state: usize) -> usize {
        let row = self.row(state);
        let mut best = 0usize;
        let mut best_value = row[0];
        for (a, &v) in row.iter().enumerate().skip(1) {
            if v > best_value {
                best = a;
                best_value = v;
            }
        }
        best
    }

    /// Resets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        self.values.iter_mut().for_each(|v| *v = value);
    }

    /// Whether every Q-value is finite (no NaN / infinity crept in through a
    /// divergent reward signal). Used by property tests and debug assertions.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Mean of all Q-values — a cheap scalar summary used in convergence
    /// diagnostics.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Iterator over `(state, action, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let actions = self.actions;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / actions, i % actions, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> QTable {
        QTable::zeroed(3, 4)
    }

    #[test]
    fn new_initialises_with_value() {
        let t = QTable::new(StateSpace::new(2), ActionSpace::new(3), 1.5);
        for s in 0..2 {
            for a in 0..3 {
                assert_eq!(t.get(s, a), 1.5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dimension_panics() {
        let _ = QTable::zeroed(0, 4);
    }

    #[test]
    fn set_get_add() {
        let mut t = table();
        t.set(1, 2, 3.0);
        assert_eq!(t.get(1, 2), 3.0);
        t.add(1, 2, -1.0);
        assert_eq!(t.get(1, 2), 2.0);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn row_is_contiguous_slice() {
        let mut t = table();
        t.set(1, 0, 10.0);
        t.set(1, 3, 13.0);
        assert_eq!(t.row(1), &[10.0, 0.0, 0.0, 13.0]);
        assert_eq!(t.row(0), &[0.0; 4]);
    }

    #[test]
    fn max_and_greedy() {
        let mut t = table();
        t.set(2, 1, 5.0);
        t.set(2, 3, 4.0);
        assert_eq!(t.max_value(2), 5.0);
        assert_eq!(t.greedy_action(2), 1);
    }

    #[test]
    fn greedy_tie_breaks_to_lowest_index() {
        let mut t = table();
        t.set(0, 1, 2.0);
        t.set(0, 2, 2.0);
        assert_eq!(t.greedy_action(0), 1);
    }

    #[test]
    fn fill_resets_everything() {
        let mut t = table();
        t.set(0, 0, 9.0);
        t.fill(0.5);
        assert!(t.iter().all(|(_, _, v)| v == 0.5));
    }

    #[test]
    fn finiteness_check_detects_nan() {
        let mut t = table();
        assert!(t.is_finite());
        t.set(0, 0, f64::NAN);
        assert!(!t.is_finite());
    }

    #[test]
    fn mean_is_average() {
        let mut t = QTable::zeroed(1, 4);
        t.set(0, 0, 4.0);
        assert_eq!(t.mean(), 1.0);
    }

    #[test]
    fn iter_yields_every_cell() {
        let t = table();
        assert_eq!(t.iter().count(), 12);
    }
}
