//! Action-selection policies.
//!
//! The simulation's rational agents use the Boltzmann policy
//! ([`crate::boltzmann::BoltzmannPolicy`]); the additional policies here
//! (greedy, ε-greedy, uniform-random) are used as ablation baselines and in
//! tests, and give downstream users the standard menu of tabular
//! exploration strategies.

use serde::{Deserialize, Serialize};

/// An action-selection policy over a row of Q-values.
///
/// Policies are object-safe so a simulation can hold heterogeneous policies
/// behind `Box<dyn Policy>`; randomness comes in through a `dyn RngCore` to
/// keep the trait object-safe while remaining deterministic under seeding.
pub trait Policy: Send + Sync {
    /// Selects an action index given the Q-values of the current state.
    fn select_action(&self, q_row: &[f64], rng: &mut dyn rand::RngCore) -> usize;

    /// Short name used in logs and ablation tables.
    fn name(&self) -> &'static str;
}

/// Draws a uniform `f64` in `[0, 1)` from a raw RNG.
pub(crate) fn uniform_f64(rng: &mut dyn rand::RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Always selects the greedy (highest-Q) action, breaking ties towards the
/// smallest index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn select_action(&self, q_row: &[f64], _rng: &mut dyn rand::RngCore) -> usize {
        assert!(!q_row.is_empty(), "cannot select from an empty Q-row");
        let mut best = 0usize;
        let mut best_value = q_row[0];
        for (a, &v) in q_row.iter().enumerate().skip(1) {
            if v > best_value {
                best = a;
                best_value = v;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Selects uniformly at random, ignoring Q-values entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformRandomPolicy;

impl Policy for UniformRandomPolicy {
    fn select_action(&self, q_row: &[f64], rng: &mut dyn rand::RngCore) -> usize {
        assert!(!q_row.is_empty(), "cannot select from an empty Q-row");
        let n = q_row.len() as u64;
        (rng.next_u64() % n) as usize
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// ε-greedy: with probability `epsilon` selects uniformly at random,
/// otherwise greedily.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedyPolicy {
    /// Exploration probability.
    pub epsilon: f64,
}

impl EpsilonGreedyPolicy {
    /// Creates an ε-greedy policy.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` lies outside `[0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        Self { epsilon }
    }
}

impl Default for EpsilonGreedyPolicy {
    fn default() -> Self {
        Self::new(0.1)
    }
}

impl Policy for EpsilonGreedyPolicy {
    fn select_action(&self, q_row: &[f64], rng: &mut dyn rand::RngCore) -> usize {
        assert!(!q_row.is_empty(), "cannot select from an empty Q-row");
        if uniform_f64(rng) < self.epsilon {
            UniformRandomPolicy.select_action(q_row, rng)
        } else {
            GreedyPolicy.select_action(q_row, rng)
        }
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn greedy_picks_maximum() {
        let q = [1.0, 5.0, 3.0];
        assert_eq!(GreedyPolicy.select_action(&q, &mut rng()), 1);
    }

    #[test]
    fn greedy_tie_break_lowest_index() {
        let q = [2.0, 2.0, 1.0];
        assert_eq!(GreedyPolicy.select_action(&q, &mut rng()), 0);
    }

    #[test]
    fn uniform_covers_all_actions() {
        let q = [0.0; 4];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[UniformRandomPolicy.select_action(&q, &mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_zero_is_pure_greedy() {
        let policy = EpsilonGreedyPolicy::new(0.0);
        let q = [0.0, 1.0, 0.5];
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(policy.select_action(&q, &mut r), 1);
        }
    }

    #[test]
    fn epsilon_one_is_pure_random() {
        let policy = EpsilonGreedyPolicy::new(1.0);
        let q = [0.0, 100.0, 0.0];
        let mut r = rng();
        let non_greedy = (0..2_000)
            .filter(|_| policy.select_action(&q, &mut r) != 1)
            .count();
        // Uniform over 3 actions means ~2/3 of selections are non-greedy.
        assert!(non_greedy > 1_000, "non-greedy only {non_greedy}/2000");
    }

    #[test]
    fn epsilon_intermediate_mixes() {
        let policy = EpsilonGreedyPolicy::new(0.5);
        let q = [0.0, 10.0];
        let mut r = rng();
        let greedy = (0..4_000)
            .filter(|_| policy.select_action(&q, &mut r) == 1)
            .count();
        // Expected greedy fraction: 0.5 + 0.5 * 0.5 = 0.75.
        let frac = greedy as f64 / 4_000.0;
        assert!((frac - 0.75).abs() < 0.05, "greedy fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_out_of_range_panics() {
        let _ = EpsilonGreedyPolicy::new(1.2);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            GreedyPolicy.name(),
            UniformRandomPolicy.name(),
            EpsilonGreedyPolicy::default().name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn greedy_empty_row_panics() {
        let _ = GreedyPolicy.select_action(&[], &mut rng());
    }
}
