//! Boltzmann (softmax) exploration.
//!
//! The paper solves the exploration/exploitation problem by sampling actions
//! from a Boltzmann distribution over the Q-values of the current state:
//!
//! ```text
//! p_s(a) = exp(Q(s,a) / T) / Σ_b exp(Q(s,b) / T)
//! ```
//!
//! `T` ("temperature") controls the amount of exploration: for very high `T`
//! the distribution is nearly uniform (the training phase of the simulation
//! sets `T` to the largest representable floating-point value), for low `T`
//! the highest-valued action dominates. Figure 2 of the paper plots the
//! distribution for Q-values 1..10 at `T = 2` and `T = 1000`; the
//! `fig2_boltzmann` bench binary regenerates exactly that series from
//! [`boltzmann_distribution`].

use crate::policy::Policy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Computes the Boltzmann distribution over a slice of Q-values at
/// temperature `t`.
///
/// The computation subtracts the maximum Q-value before exponentiating
/// (softmax shift-invariance), so it is numerically stable for arbitrarily
/// large Q-values and very small temperatures. For non-finite or enormous
/// temperatures the distribution degenerates to uniform, matching the
/// paper's training-phase convention of setting `T` to the highest possible
/// floating-point value.
///
/// # Panics
///
/// Panics if `values` is empty or `t` is not strictly positive.
pub fn boltzmann_distribution(values: &[f64], t: f64) -> Vec<f64> {
    let mut probs = Vec::new();
    boltzmann_distribution_into(values, t, &mut probs);
    probs
}

/// Allocation-free variant of [`boltzmann_distribution`]: writes the
/// distribution into `out` (cleared first), reusing its capacity. The hot
/// selection loop of the simulation calls this through a per-state cache so
/// steady-state steps perform no allocation.
///
/// Produces bit-identical results to [`boltzmann_distribution`].
///
/// # Panics
///
/// Panics if `values` is empty or `t` is not strictly positive.
pub fn boltzmann_distribution_into(values: &[f64], t: f64, out: &mut Vec<f64>) {
    assert!(!values.is_empty(), "need at least one Q-value");
    assert!(t > 0.0, "temperature must be strictly positive");
    let n = values.len();
    out.clear();
    if !t.is_finite() || t >= 1e300 {
        out.resize(n, 1.0 / n as f64);
        return;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.extend(values.iter().map(|&q| ((q - max) / t).exp()));
    let sum: f64 = out.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // All exponents underflowed (extremely small temperature with large
        // spread); fall back to greedy with deterministic tie-breaking.
        let greedy = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.iter_mut().for_each(|p| *p = 0.0);
        out[greedy] = 1.0;
        return;
    }
    out.iter_mut().for_each(|p| *p /= sum);
}

/// Samples an index from an explicit probability distribution through a
/// [`rand::RngCore`] trait object, consuming exactly one `next_u64` call.
///
/// This is the draw [`BoltzmannPolicy::select_action`] performs: the raw
/// 64-bit output is turned into a uniform double in `[0, 1)` by the standard
/// 53-bit mantissa construction, then walked down the CDF. Exposed so
/// callers that cache distributions (the simulation's selection phase) can
/// reproduce the policy's RNG stream bit-for-bit.
pub fn sample_probs(probs: &[f64], rng: &mut dyn rand::RngCore) -> usize {
    let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let mut cumulative = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cumulative += p;
        if draw < cumulative {
            return i;
        }
    }
    probs.len() - 1
}

/// Samples an index from an explicit probability distribution.
///
/// The distribution must be non-negative and (approximately) sum to one;
/// any residual probability mass due to rounding goes to the final index.
pub fn sample_distribution<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    assert!(!probs.is_empty(), "cannot sample an empty distribution");
    let draw: f64 = rng.gen();
    let mut cumulative = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cumulative += p;
        if draw < cumulative {
            return i;
        }
    }
    probs.len() - 1
}

/// Samples an action directly from the Boltzmann distribution over Q-values.
pub fn boltzmann_sample<R: Rng + ?Sized>(values: &[f64], t: f64, rng: &mut R) -> usize {
    let probs = boltzmann_distribution(values, t);
    sample_distribution(&probs, rng)
}

/// A [`Policy`] that samples from the Boltzmann distribution at a fixed
/// temperature. The temperature is mutable so schedules can anneal it
/// between steps (the paper switches from `T = f64::MAX` to `T = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoltzmannPolicy {
    /// Current temperature `T`.
    pub temperature: f64,
}

impl BoltzmannPolicy {
    /// Creates a Boltzmann policy at the given temperature.
    ///
    /// # Panics
    ///
    /// Panics if the temperature is not strictly positive.
    pub fn new(temperature: f64) -> Self {
        assert!(temperature > 0.0, "temperature must be strictly positive");
        Self { temperature }
    }

    /// The paper's training-phase policy: temperature set to the highest
    /// possible floating-point value, i.e. uniform exploration.
    pub fn training_phase() -> Self {
        Self {
            temperature: f64::MAX,
        }
    }

    /// The paper's evaluation-phase policy: `T = 1`.
    pub fn evaluation_phase() -> Self {
        Self { temperature: 1.0 }
    }
}

impl Policy for BoltzmannPolicy {
    fn select_action(&self, q_row: &[f64], rng: &mut dyn rand::RngCore) -> usize {
        let probs = boltzmann_distribution(q_row, self.temperature);
        // RngCore only gives raw integers; `sample_probs` derives a uniform
        // double manually so this works through the trait object.
        sample_probs(&probs, rng)
    }

    fn name(&self) -> &'static str {
        "boltzmann"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribution_sums_to_one() {
        let values = [1.0, 2.0, 3.0, 4.0];
        for &t in &[0.1, 1.0, 2.0, 1000.0] {
            let p = boltzmann_distribution(&values, t);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "T={t}: sum={sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn low_temperature_prefers_high_q_values() {
        // Figure 2, top: T = 2 over Q-values 1..10 — strongly peaked at 10.
        let values: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let p = boltzmann_distribution(&values, 2.0);
        assert!(p[9] > p[0] * 10.0);
        assert!(p.windows(2).all(|w| w[1] > w[0]), "monotone in Q-value");
    }

    #[test]
    fn high_temperature_approaches_uniform() {
        // Figure 2, bottom: T = 1000 over Q-values 1..10 — almost uniform.
        let values: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let p = boltzmann_distribution(&values, 1000.0);
        for &prob in &p {
            assert!((prob - 0.1).abs() < 0.001, "prob {prob} not ≈ 0.1");
        }
    }

    #[test]
    fn infinite_temperature_is_exactly_uniform() {
        let values = [5.0, -2.0, 100.0];
        let p = boltzmann_distribution(&values, f64::MAX);
        for &prob in &p {
            assert!((prob - 1.0 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn tiny_temperature_degenerates_to_greedy() {
        let values = [0.0, 1000.0, 500.0];
        let p = boltzmann_distribution(&values, 1e-12);
        assert_eq!(p[1], 1.0);
        assert_eq!(p[0] + p[2], 0.0);
    }

    #[test]
    fn numerically_stable_for_large_values() {
        let values = [1e12, 1e12 + 1.0];
        let p = boltzmann_distribution(&values, 1.0);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_temperature_panics() {
        let _ = boltzmann_distribution(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one Q-value")]
    fn empty_values_panic() {
        let _ = boltzmann_distribution(&[], 1.0);
    }

    #[test]
    fn sampling_matches_distribution_empirically() {
        let values = [0.0, 0.0, 2.0];
        let t = 1.0;
        let p = boltzmann_distribution(&values, t);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let trials = 20_000;
        for _ in 0..trials {
            counts[boltzmann_sample(&values, t, &mut rng)] += 1;
        }
        for i in 0..3 {
            let empirical = counts[i] as f64 / trials as f64;
            assert!(
                (empirical - p[i]).abs() < 0.02,
                "action {i}: empirical {empirical} vs expected {}",
                p[i]
            );
        }
    }

    #[test]
    fn policy_training_phase_explores_uniformly() {
        let policy = BoltzmannPolicy::training_phase();
        let q = [0.0, 100.0, -50.0, 3.0];
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[policy.select_action(&q, &mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 8_000.0;
            assert!((frac - 0.25).abs() < 0.03, "fraction {frac} not ≈ 0.25");
        }
    }

    #[test]
    fn policy_evaluation_phase_prefers_greedy() {
        let policy = BoltzmannPolicy::evaluation_phase();
        let q = [0.0, 10.0];
        let mut rng = StdRng::seed_from_u64(6);
        let greedy = (0..1_000)
            .filter(|_| policy.select_action(&q, &mut rng) == 1)
            .count();
        assert!(greedy > 950, "greedy chosen only {greedy}/1000 times");
    }

    #[test]
    fn into_variant_is_bit_identical_and_reuses_capacity() {
        let cases: &[(&[f64], f64)] = &[
            (&[1.0, 2.0, 3.0], 1.0),
            (&[5.0, -2.0, 100.0], f64::MAX),
            (&[0.0, 1000.0, 500.0], 1e-12),
            (&[1e12, 1e12 + 1.0], 1.0),
            (&[0.25], 2.0),
        ];
        let mut out = Vec::new();
        for &(values, t) in cases {
            boltzmann_distribution_into(values, t, &mut out);
            let reference = boltzmann_distribution(values, t);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "values={values:?} t={t}");
            }
        }
    }

    #[test]
    fn sample_probs_matches_policy_draw_stream() {
        // `sample_probs` must consume exactly one `next_u64` and pick the
        // same index as `BoltzmannPolicy::select_action` on the same stream.
        let q = [0.3, -1.0, 2.5, 0.0];
        for t in [1.0, f64::MAX] {
            let policy = BoltzmannPolicy::new(t);
            let probs = boltzmann_distribution(&q, t);
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..200 {
                assert_eq!(
                    policy.select_action(&q, &mut a),
                    sample_probs(&probs, &mut b)
                );
            }
            use rand::RngCore;
            assert_eq!(a.next_u64(), b.next_u64(), "stream positions diverged");
        }
    }

    #[test]
    fn sample_distribution_residual_mass_goes_to_last() {
        // Distribution summing to slightly less than 1 due to rounding.
        let probs = [0.3, 0.3, 0.3999999];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let i = sample_distribution(&probs, &mut rng);
            assert!(i < 3);
        }
    }
}
