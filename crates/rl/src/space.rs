//! Discrete state and action space descriptors.
//!
//! The paper's simulation uses a deliberately small tabular setting: 10
//! states (the agent's own reputation bucket) and a composite action space
//! over sharing levels and editing/voting behaviour. These descriptors keep
//! the Q-table, the policies and the environment agreeing on the meaning of
//! indices, and provide the mixed-radix encoding used to flatten composite
//! actions into a single index.

use serde::{Deserialize, Serialize};

/// A discrete state space of `n` states indexed `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSpace {
    count: usize,
}

impl StateSpace {
    /// Creates a state space with `count` states.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "state space must contain at least one state");
        Self { count }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Always false: state spaces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `state` is a valid index.
    pub fn contains(&self, state: usize) -> bool {
        state < self.count
    }

    /// Buckets a continuous value from `[lo, hi]` into a state index.
    ///
    /// This is how the paper maps the reputation interval `[R_min, 1]` onto
    /// its 10 states: each state represents one tenth of the interval.
    /// Values outside the interval are clamped.
    pub fn bucket(&self, value: f64, lo: f64, hi: f64) -> usize {
        assert!(hi > lo, "bucket interval must be non-degenerate");
        let clamped = value.clamp(lo, hi);
        let fraction = (clamped - lo) / (hi - lo);
        ((fraction * self.count as f64) as usize).min(self.count - 1)
    }

    /// The midpoint of a state's bucket on `[lo, hi]` — the inverse of
    /// [`StateSpace::bucket`] up to quantisation.
    pub fn bucket_midpoint(&self, state: usize, lo: f64, hi: f64) -> f64 {
        assert!(self.contains(state), "state out of range");
        let width = (hi - lo) / self.count as f64;
        lo + (state as f64 + 0.5) * width
    }
}

/// A discrete action space of `n` actions indexed `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    count: usize,
}

impl ActionSpace {
    /// Creates an action space with `count` actions.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "action space must contain at least one action");
        Self { count }
    }

    /// Creates a composite action space as the cartesian product of the
    /// given per-dimension cardinalities (mixed-radix flattening).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn product(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        let count = dims.iter().fold(1usize, |acc, &d| {
            assert!(d > 0, "dimensions must be non-zero");
            acc.checked_mul(d).expect("action space overflow")
        });
        Self { count }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Always false: action spaces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `action` is a valid index.
    pub fn contains(&self, action: usize) -> bool {
        action < self.count
    }

    /// Iterator over all action indices.
    pub fn iter(&self) -> std::ops::Range<usize> {
        0..self.count
    }
}

/// Flattens a multi-dimensional action `coords` over the per-dimension
/// cardinalities `dims` into a single index (row-major / mixed radix).
///
/// # Panics
///
/// Panics if the coordinate vector does not match `dims` or any coordinate
/// is out of range.
pub fn flatten_action(coords: &[usize], dims: &[usize]) -> usize {
    assert_eq!(coords.len(), dims.len(), "coordinate/dimension mismatch");
    let mut index = 0usize;
    for (&c, &d) in coords.iter().zip(dims.iter()) {
        assert!(c < d, "coordinate {c} out of range for dimension {d}");
        index = index * d + c;
    }
    index
}

/// Inverse of [`flatten_action`]: expands a flat index into per-dimension
/// coordinates.
pub fn unflatten_action(index: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; dims.len()];
    unflatten_action_into(index, dims, &mut coords);
    coords
}

/// Allocation-free [`unflatten_action`]: writes the coordinates into a
/// caller-provided slot array. Hot decode paths (one action decode per
/// rational peer per step) call this through a stack-allocated fixed-size
/// array instead of paying a heap round-trip per decode.
///
/// # Panics
///
/// Panics if `coords` does not match `dims` in length or the flat index is
/// out of range.
pub fn unflatten_action_into(mut index: usize, dims: &[usize], coords: &mut [usize]) {
    assert_eq!(coords.len(), dims.len(), "coordinate/dimension mismatch");
    for (slot, &d) in coords.iter_mut().zip(dims.iter()).rev() {
        *slot = index % d;
        index /= d;
    }
    assert_eq!(index, 0, "flat index out of range for dimensions");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_space_len_and_contains() {
        let s = StateSpace::new(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(0));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_state_space_panics() {
        let _ = StateSpace::new(0);
    }

    #[test]
    fn bucket_maps_reputation_interval_like_the_paper() {
        // 10 states over [0.05, 1], the paper's Section IV-B setting.
        let s = StateSpace::new(10);
        assert_eq!(s.bucket(0.05, 0.05, 1.0), 0);
        assert_eq!(s.bucket(1.0, 0.05, 1.0), 9);
        assert_eq!(s.bucket(0.5, 0.05, 1.0), 4);
        // Clamping below and above.
        assert_eq!(s.bucket(0.0, 0.05, 1.0), 0);
        assert_eq!(s.bucket(2.0, 0.05, 1.0), 9);
    }

    #[test]
    fn bucket_midpoint_is_consistent_with_bucket() {
        let s = StateSpace::new(10);
        for state in 0..10 {
            let mid = s.bucket_midpoint(state, 0.05, 1.0);
            assert_eq!(s.bucket(mid, 0.05, 1.0), state);
        }
    }

    #[test]
    fn action_space_product() {
        // The paper's action space: 3 bandwidth levels × 3 file levels ×
        // 3 edit behaviours (constructive / destructive / abstain).
        let a = ActionSpace::product(&[3, 3, 3]);
        assert_eq!(a.len(), 27);
        assert!(a.contains(26));
        assert!(!a.contains(27));
    }

    #[test]
    fn flatten_and_unflatten_roundtrip() {
        let dims = [3, 3, 3];
        for i in 0..27 {
            let coords = unflatten_action(i, &dims);
            assert_eq!(flatten_action(&coords, &dims), i);
        }
    }

    #[test]
    fn flatten_is_row_major() {
        let dims = [2, 3];
        assert_eq!(flatten_action(&[0, 0], &dims), 0);
        assert_eq!(flatten_action(&[0, 2], &dims), 2);
        assert_eq!(flatten_action(&[1, 0], &dims), 3);
        assert_eq!(flatten_action(&[1, 2], &dims), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flatten_rejects_out_of_range_coordinate() {
        let _ = flatten_action(&[2, 0], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn flatten_rejects_dimension_mismatch() {
        let _ = flatten_action(&[0, 0, 0], &[2, 3]);
    }

    #[test]
    fn action_space_iter_covers_all() {
        let a = ActionSpace::new(5);
        let all: Vec<_> = a.iter().collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
