//! # collabsim-rl
//!
//! Tabular reinforcement learning for the collabsim reproduction of Bocek et
//! al., IPDPS 2008. In the paper's simulation model (Section IV) every peer
//! is "a self-learning agent that will try to maximize its benefit by
//! exploring different strategies"; the learning algorithm is Q-Learning
//! with Boltzmann (softmax) action selection.
//!
//! The crate provides:
//!
//! * [`space`] — discrete state/action space descriptors,
//! * [`qtable`] — the dense tabular Q-value store,
//! * [`qlearning`] — the Q-learning update rule
//!   `Q(s,a) ← (1−α)·Q(s,a) + α·(r + γ·max_b Q(s′,b))`,
//! * [`boltzmann`] — the Boltzmann exploration distribution
//!   `p_s(a) = exp(Q(s,a)/T) / Σ_b exp(Q(s,b)/T)` (Figure 2 of the paper),
//! * [`policy`] — pluggable action-selection policies (Boltzmann, ε-greedy,
//!   greedy, uniform-random),
//! * [`schedule`] — temperature and learning-rate schedules, including the
//!   paper's two-phase schedule (effectively infinite temperature during the
//!   10 000-step training phase, `T = 1` afterwards),
//! * [`multi`] — a container managing one independent learner per agent of a
//!   population.
//!
//! Everything is deterministic given an explicit RNG and fully `Send + Sync`
//! (no interior mutability, no globals) so whole populations of learners can
//! be advanced from parallel experiment sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boltzmann;
pub mod multi;
pub mod policy;
pub mod qlearning;
pub mod qtable;
pub mod schedule;
pub mod space;

pub use boltzmann::{boltzmann_distribution, boltzmann_sample, BoltzmannPolicy};
pub use multi::MultiAgentLearner;
pub use policy::{EpsilonGreedyPolicy, GreedyPolicy, Policy, UniformRandomPolicy};
pub use qlearning::{QLearningAgent, QLearningParams};
pub use qtable::QTable;
pub use schedule::{ConstantSchedule, ExponentialDecay, LinearDecay, Schedule, TwoPhaseSchedule};
pub use space::{ActionSpace, StateSpace};
