//! Multi-agent learner container.
//!
//! The simulation has 100 independent learners, each with its own Q-matrix,
//! all sharing the same state/action spaces and hyper-parameters.
//! [`MultiAgentLearner`] owns the per-agent tables and offers the
//! select/update operations the simulation engine needs, plus bulk
//! operations (the phase switch that keeps Q-matrices but resets reputation
//! values maps onto keeping this container untouched while resetting the
//! environment).

use crate::policy::Policy;
use crate::qlearning::{QLearningAgent, QLearningParams};
use crate::space::{ActionSpace, StateSpace};
use serde::{Deserialize, Serialize};

/// A homogeneous population of independent Q-learning agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAgentLearner {
    agents: Vec<QLearningAgent>,
    states: StateSpace,
    actions: ActionSpace,
}

impl MultiAgentLearner {
    /// Creates `population` independent agents with identical spaces and
    /// hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `population` is zero.
    pub fn new(
        population: usize,
        states: StateSpace,
        actions: ActionSpace,
        params: QLearningParams,
    ) -> Self {
        assert!(population > 0, "population must be non-empty");
        let agents = (0..population)
            .map(|_| QLearningAgent::new(states, actions, params))
            .collect();
        Self {
            agents,
            states,
            actions,
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Always false; the constructor rejects empty populations.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared state space.
    pub fn state_space(&self) -> StateSpace {
        self.states
    }

    /// The shared action space.
    pub fn action_space(&self) -> ActionSpace {
        self.actions
    }

    /// Immutable access to an agent.
    pub fn agent(&self, index: usize) -> &QLearningAgent {
        &self.agents[index]
    }

    /// Mutable access to an agent.
    pub fn agent_mut(&mut self, index: usize) -> &mut QLearningAgent {
        &mut self.agents[index]
    }

    /// Selects an action for agent `index` in `state` using `policy`.
    pub fn select_action(
        &self,
        index: usize,
        state: usize,
        policy: &dyn Policy,
        rng: &mut dyn rand::RngCore,
    ) -> usize {
        self.agents[index].select_action(state, policy, rng)
    }

    /// Applies a Q-learning update for agent `index`.
    pub fn update(
        &mut self,
        index: usize,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
    ) {
        self.agents[index].update(state, action, reward, next_state);
    }

    /// Resets every agent's Q-table (forgetting ablation).
    pub fn reset_all(&mut self) {
        self.agents.iter_mut().for_each(QLearningAgent::reset_table);
    }

    /// Total number of updates applied across all agents.
    pub fn total_updates(&self) -> u64 {
        self.agents.iter().map(QLearningAgent::updates).sum()
    }

    /// Iterator over the agents.
    pub fn iter(&self) -> impl Iterator<Item = &QLearningAgent> {
        self.agents.iter()
    }

    /// Fraction of agents whose greedy action in `state` equals `action` —
    /// used by the experiment harness to measure how uniformly a population
    /// has converged on a behaviour (e.g. constructive vs. destructive
    /// editing in Figures 6 and 7).
    pub fn greedy_consensus(&self, state: usize, action: usize) -> f64 {
        let matching = self
            .agents
            .iter()
            .filter(|a| a.greedy_action(state) == action)
            .count();
        matching as f64 / self.agents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boltzmann::BoltzmannPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learners(n: usize) -> MultiAgentLearner {
        MultiAgentLearner::new(
            n,
            StateSpace::new(4),
            ActionSpace::new(3),
            QLearningParams::default(),
        )
    }

    #[test]
    fn population_size_is_respected() {
        let m = learners(100);
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
        assert_eq!(m.state_space().len(), 4);
        assert_eq!(m.action_space().len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let _ = learners(0);
    }

    #[test]
    fn updates_are_independent_per_agent() {
        let mut m = learners(3);
        m.update(0, 0, 0, 10.0, 1);
        assert!(m.agent(0).table().get(0, 0) > 0.0);
        assert_eq!(m.agent(1).table().get(0, 0), 0.0);
        assert_eq!(m.agent(2).table().get(0, 0), 0.0);
        assert_eq!(m.total_updates(), 1);
    }

    #[test]
    fn reset_all_clears_every_agent() {
        let mut m = learners(3);
        for i in 0..3 {
            m.update(i, 1, 1, 5.0, 1);
        }
        m.reset_all();
        assert_eq!(m.total_updates(), 0);
        assert!(m.iter().all(|a| a.table().get(1, 1) == 0.0));
    }

    #[test]
    fn greedy_consensus_counts_matching_agents() {
        let mut m = learners(4);
        // Push two agents towards action 2 in state 0.
        for i in 0..2 {
            for _ in 0..10 {
                m.update(i, 0, 2, 1.0, 0);
            }
        }
        let consensus = m.greedy_consensus(0, 2);
        assert!((consensus - 0.5).abs() < 1e-12);
    }

    #[test]
    fn select_action_uses_policy() {
        let mut m = learners(1);
        for _ in 0..50 {
            m.update(0, 0, 1, 1.0, 0);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let policy = BoltzmannPolicy::evaluation_phase();
        let picks_best = (0..200)
            .filter(|_| m.select_action(0, 0, &policy, &mut rng) == 1)
            .count();
        assert!(picks_best > 150);
    }
}
