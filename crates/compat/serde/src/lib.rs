//! Offline no-op stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in the
//! workspace actually serializes anything yet (the derives are kept on
//! types so the real `serde` can be dropped back in with a one-line
//! Cargo.toml change once dependencies can be vendored). This crate keeps
//! those derive annotations compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, and
//! * the re-exported derive macros expand to nothing.
//!
//! If serialization is ever *used* (not just derived) before the real crate
//! is restored, the missing methods will fail the build loudly rather than
//! silently producing garbage.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum ProbeEnum {
        A,
        B(u8),
    }

    fn needs_serialize<T: Serialize>(_: &T) {}
    fn needs_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derive_and_bounds_compile() {
        let p = Probe { x: 1 };
        needs_serialize(&p);
        needs_deserialize::<Probe>();
        needs_serialize(&ProbeEnum::A);
        match ProbeEnum::B(2) {
            ProbeEnum::B(v) => assert_eq!(v, 2),
            ProbeEnum::A => unreachable!(),
        }
        assert_eq!(p, Probe { x: 1 });
    }
}
