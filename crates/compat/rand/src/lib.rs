//! Offline stand-in for the subset of the `rand` 0.8 API that collabsim
//! uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact call surface the simulation needs — [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a deterministic
//! xoshiro256** generator. Streams are **not** bit-compatible with the real
//! `rand` crate (they do not need to be: every consumer seeds explicitly and
//! only requires self-consistent determinism), but the trait shapes are, so
//! swapping the real dependency back in is a one-line Cargo.toml change.
//!
//! Integer `gen_range` uses the widening-multiply bound technique; its bias
//! for a span `s` is below `s / 2^64`, which is irrelevant at simulation
//! scale.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// The low-level generator interface: raw 32/64-bit outputs.
pub trait RngCore {
    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening multiply maps a 64-bit draw onto [0, span).
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + offset as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The ergonomic generator interface, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; collabsim only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_draws_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "{heads} heads in 10k flips"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        rng.gen_bool(1.5);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(dynrng.gen_range(0..10u32) < 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_on_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
