//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic default generator: xoshiro256** seeded via SplitMix64.
///
/// Named `StdRng` to mirror `rand::rngs::StdRng`; the stream differs from
/// the real crate's ChaCha-based `StdRng` but has the same shape (seedable
/// from a `u64`, `Clone`, deterministic, 64-bit outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The generator's full internal state, for checkpointing. Restoring it
    /// with [`StdRng::from_state`] resumes the stream at exactly the next
    /// output.
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`StdRng::to_state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for call sites that name the small generator explicitly.
pub type SmallRng = StdRng;
