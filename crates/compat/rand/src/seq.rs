//! Slice helpers mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}
