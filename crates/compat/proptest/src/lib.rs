//! Offline mini stand-in for `proptest`.
//!
//! Supports the subset the collabsim property tests use: range strategies
//! over numeric types, tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro (each test body is run for a fixed number of seeded
//! random cases) and the `prop_assert*` macros (plain assertions).
//!
//! There is **no shrinking** and no persistence of failing cases — a
//! failure panics with the sampled values still in scope of the assertion
//! message. Case count defaults to 64 and can be raised via the
//! `PROPTEST_CASES` environment variable. Each test's RNG is seeded from
//! the test name, so failures reproduce deterministically.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A source of sampled values for one argument of a property test.
pub trait Strategy {
    /// The sampled type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// A vector whose length is drawn from `sizes` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over [`case_count`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                let ($($arg,)+) = &strategies;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for _case in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::sample($arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assertion inside a property body (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// Ranges stay in bounds and tuples decompose.
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 1.0f64..2.0,
            pair in (0usize..5, 10u32..20),
            v in crate::collection::vec(0.0f64..1.0, 1..9),
        ) {
            let (a, b) = pair;
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((10..20).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
