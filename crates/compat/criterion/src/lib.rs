//! Offline stand-in for the `criterion` bench harness.
//!
//! Provides the subset of the criterion 0.5 surface the collabsim benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is calibrated to roughly [`Criterion::target_iters`] timed
//! iterations and reports the mean time per iteration to stdout.
//!
//! Benches therefore still *run* (useful as smoke tests and for coarse
//! before/after comparisons) without any crates.io dependency; restoring
//! the real criterion is a one-line Cargo.toml change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's canonical form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean = start.elapsed() / self.iters.max(1) as u32;
    }
}

/// Top-level harness state.
pub struct Criterion {
    target_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Kept deliberately small: these benches double as smoke tests.
        let target_iters = std::env::var("COLLABSIM_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self { target_iters }
    }
}

impl Criterion {
    /// Number of timed iterations each benchmark runs
    /// (`COLLABSIM_BENCH_ITERS`, default 10).
    pub fn target_iters(&self) -> u64 {
        self.target_iters
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_iters: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let iters = self.target_iters;
        run_one("", &id.into().id, iters, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_iters: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-size knob; reused here as the iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = Some(n as u64);
        self
    }

    /// Ignored; accepted for criterion source compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn iters(&self) -> u64 {
        self.sample_iters.unwrap_or(self.criterion.target_iters)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, self.iters(), f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.id, self.iters(), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; present for source compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher {
        iters,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<60} {:>12.3?}/iter ({iters} iters)",
        bencher.mean
    );
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running every group, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        let mut group = c.benchmark_group("probe");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion::default();
        probe(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("run", "fast").id, "run/fast");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
