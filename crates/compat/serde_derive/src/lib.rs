//! Inert derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing; the
//! traits themselves are blanket-implemented in the `serde` stand-in crate,
//! so the derives only need to be *accepted*, not to generate code.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
