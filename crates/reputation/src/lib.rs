//! # collabsim-reputation
//!
//! The reputation-based incentive scheme of Bocek et al. (IPDPS 2008),
//! Section III, plus the reputation-propagation substrates the paper assumes
//! to exist (Section II-C).
//!
//! A peer's behaviour is summarised by two *contribution values*:
//!
//! * `C_S(a, b) = α_S · S_articles + β_S · S_bandwidth − d_S` for sharing
//!   articles and bandwidth, and
//! * `C_E(v, e) = α_E · S_votes + β_E · S_edits − d_E` for (successful)
//!   voting and (accepted) editing,
//!
//! each mapped through a monotone *reputation function*
//! `R : ℝ≥0 → [R_min, 1]` — the paper uses the logistic
//! `R(C) = 1 / (1 + g · exp(−β · C))` — giving every peer two reputation
//! values `R_S` and `R_E`. Service differentiation then ties quality of
//! service to reputation: bandwidth is split proportionally to `R_S`, voting
//! power proportionally to `R_E`, editing requires `R_S ≥ θ`, the majority
//! needed to accept an edit shrinks with the editor's reputation, and
//! malicious voters/editors are punished by losing rights or having their
//! reputation reset.
//!
//! Modules:
//!
//! * [`function`] — reputation functions (logistic + alternatives for the
//!   paper's future-work ablation),
//! * [`contribution`] — contribution-value accounting with decay,
//! * [`ledger`] — per-peer dual-reputation ledger (dense reference
//!   implementation and the [`ledger::ReputationStore`] interface),
//! * [`sharded`] — the peer-id-range [`sharded::ShardedLedger`] with its
//!   collect-then-apply [`sharded::DeltaBatch`] protocol and the
//!   [`sharded::LedgerView`] read facade for parallel workers,
//! * [`service`] — the service-differentiation rules,
//! * [`punishment`] — malicious voter/editor punishment policies,
//! * [`propagation`] — EigenTrust, MaxFlow and gossip propagation of local
//!   trust into global reputation values,
//! * [`attack`] — collusion / whitewashing attack generators used by the
//!   robustness benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod contribution;
pub mod function;
pub mod ledger;
pub mod propagation;
pub mod punishment;
pub mod service;
pub mod sharded;

pub use contribution::{
    ContributionDelta, ContributionParams, ContributionTracker, EditingAction, SharingAction,
};
pub use function::{
    ExponentialSaturation, LinearReputation, LogisticReputation, ReputationFunction, StepReputation,
};
pub use ledger::{PeerReputation, ReputationLedger, ReputationStore};
pub use propagation::{
    eigentrust::EigenTrust, gossip::GossipAveraging, maxflow::MaxFlowTrust, GlobalReputation,
    PropagationBackend, PropagationScheme, TrustGraph,
};
pub use punishment::{PunishmentOutcome, PunishmentPolicy};
pub use service::{ServiceDifferentiation, ServiceParams};
pub use sharded::{DeltaBatch, LedgerShard, LedgerView, ShardedLedger};
