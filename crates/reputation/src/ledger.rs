//! The per-peer dual-reputation ledger.
//!
//! Every peer carries two reputation values (Section III-B of the paper):
//! `R_S(C_S)` for sharing articles and bandwidth and `R_E(C_E)` for voting
//! and editing. The ledger owns one [`ContributionTracker`] per peer, maps
//! contributions through the configured [`ReputationFunction`]s, and tracks
//! the rights (editing, voting) that the punishment policy can revoke.
//!
//! The ledger plays the role of the "mechanism to safely propagate
//! reputation values" the paper assumes: it is a global oracle view. The
//! [`crate::propagation`] module provides decentralized alternatives whose
//! outputs can be written back into a ledger.

use crate::contribution::{ContributionParams, ContributionTracker, EditingAction, SharingAction};
use crate::function::{LogisticReputation, ReputationFunction};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A snapshot of one peer's reputation-related state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerReputation {
    /// Sharing reputation `R_S`.
    pub sharing: f64,
    /// Editing/voting reputation `R_E`.
    pub editing: f64,
    /// Whether the peer currently holds editing rights.
    pub can_edit: bool,
    /// Whether the peer currently holds voting rights.
    pub can_vote: bool,
}

/// Internal per-peer record, shared with the sharded ledger.
#[derive(Debug, Clone)]
pub(crate) struct PeerRecord {
    pub(crate) contributions: ContributionTracker,
    pub(crate) can_edit: bool,
    pub(crate) can_vote: bool,
    pub(crate) unsuccessful_votes: u32,
    pub(crate) declined_edits: u32,
}

impl PeerRecord {
    /// A newcomer record: zero contributions, full rights.
    pub(crate) fn new(params: ContributionParams) -> Self {
        Self {
            contributions: ContributionTracker::new(params),
            can_edit: true,
            can_vote: true,
            unsuccessful_votes: 0,
            declined_edits: 0,
        }
    }
}

/// The per-peer reputation interface shared by the dense
/// [`ReputationLedger`] and the [`ShardedLedger`](crate::sharded::ShardedLedger).
///
/// The simulation layer and the [`crate::punishment`] policies are written
/// against this trait so the storage layout (one dense vector vs.
/// independently lockable peer-range shards) is swappable without touching
/// the incentive logic. All methods address peers by their dense index.
pub trait ReputationStore {
    /// Number of peers tracked.
    fn len(&self) -> usize;

    /// Whether the store tracks no peers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The minimum sharing reputation `R_S^min` (newcomer value).
    fn min_sharing_reputation(&self) -> f64;

    /// The minimum editing reputation `R_E^min` (newcomer value).
    fn min_editing_reputation(&self) -> f64;

    /// Sharing reputation `R_S` of a peer.
    fn sharing_reputation(&self, peer: usize) -> f64;

    /// Editing/voting reputation `R_E` of a peer.
    fn editing_reputation(&self, peer: usize) -> f64;

    /// Full snapshot of a peer's reputation state.
    fn peer(&self, peer: usize) -> PeerReputation;

    /// Records one time step of sharing activity for a peer.
    fn record_sharing(&mut self, peer: usize, action: &SharingAction);

    /// Records one time step of editing/voting outcomes for a peer.
    fn record_editing(&mut self, peer: usize, action: &EditingAction);

    /// Records an unsuccessful (against-majority) vote; returns the total.
    fn record_unsuccessful_vote(&mut self, peer: usize) -> u32;

    /// Records a declined edit and returns the new total.
    fn record_declined_edit(&mut self, peer: usize) -> u32;

    /// Number of unsuccessful votes a peer has accumulated.
    fn unsuccessful_votes(&self, peer: usize) -> u32;

    /// Number of declined edits a peer has accumulated.
    fn declined_edits(&self, peer: usize) -> u32;

    /// Whether the peer currently holds voting rights.
    fn can_vote(&self, peer: usize) -> bool;

    /// Whether the peer currently holds editing rights.
    fn can_edit(&self, peer: usize) -> bool;

    /// Revokes a peer's voting rights (malicious-voter punishment).
    fn revoke_voting_rights(&mut self, peer: usize);

    /// Restores voting rights and clears the unsuccessful-vote counter.
    fn restore_voting_rights(&mut self, peer: usize);

    /// Revokes editing rights and resets both reputations to the minimum.
    fn punish_malicious_editor(&mut self, peer: usize);

    /// Restores a peer's editing rights.
    fn restore_editing_rights(&mut self, peer: usize);

    /// Resets every peer's contribution values while keeping rights.
    fn reset_all_contributions(&mut self);
}

/// The reputation ledger for a whole population of peers.
///
/// Peers are addressed by dense indices `0..len()`; the simulation layer
/// maps its own peer identifiers onto these indices.
#[derive(Clone)]
pub struct ReputationLedger {
    sharing_fn: Arc<dyn ReputationFunction>,
    editing_fn: Arc<dyn ReputationFunction>,
    records: Vec<PeerRecord>,
}

impl std::fmt::Debug for ReputationLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReputationLedger")
            .field("peers", &self.records.len())
            .field("sharing_fn", &self.sharing_fn.name())
            .field("editing_fn", &self.editing_fn.name())
            .finish()
    }
}

impl ReputationLedger {
    /// Creates a ledger for `peers` peers using the paper's logistic
    /// reputation function (`g = 19`, `β = 0.2`) for both resource classes
    /// and the default contribution parameters.
    pub fn with_paper_defaults(peers: usize) -> Self {
        Self::new(
            peers,
            ContributionParams::default(),
            Arc::new(LogisticReputation::paper(0.2)),
            Arc::new(LogisticReputation::paper(0.2)),
        )
    }

    /// Creates a ledger with explicit contribution parameters and reputation
    /// functions (one per resource class).
    ///
    /// # Panics
    ///
    /// Panics if `peers` is zero.
    pub fn new(
        peers: usize,
        params: ContributionParams,
        sharing_fn: Arc<dyn ReputationFunction>,
        editing_fn: Arc<dyn ReputationFunction>,
    ) -> Self {
        assert!(peers > 0, "ledger needs at least one peer");
        let records = (0..peers).map(|_| PeerRecord::new(params)).collect();
        Self {
            sharing_fn,
            editing_fn,
            records,
        }
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false; the constructor rejects empty ledgers.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The minimum sharing reputation `R_S^min` (newcomer value).
    pub fn min_sharing_reputation(&self) -> f64 {
        self.sharing_fn.minimum()
    }

    /// The minimum editing reputation `R_E^min` (newcomer value).
    pub fn min_editing_reputation(&self) -> f64 {
        self.editing_fn.minimum()
    }

    /// Sharing reputation `R_S` of a peer.
    pub fn sharing_reputation(&self, peer: usize) -> f64 {
        self.sharing_fn
            .reputation_clamped(self.records[peer].contributions.sharing())
    }

    /// Editing/voting reputation `R_E` of a peer.
    pub fn editing_reputation(&self, peer: usize) -> f64 {
        self.editing_fn
            .reputation_clamped(self.records[peer].contributions.editing())
    }

    /// Full snapshot of a peer's reputation state.
    pub fn peer(&self, peer: usize) -> PeerReputation {
        PeerReputation {
            sharing: self.sharing_reputation(peer),
            editing: self.editing_reputation(peer),
            can_edit: self.records[peer].can_edit,
            can_vote: self.records[peer].can_vote,
        }
    }

    /// Read access to a peer's contribution tracker.
    pub fn contributions(&self, peer: usize) -> &ContributionTracker {
        &self.records[peer].contributions
    }

    /// Records one time step of sharing activity for a peer.
    pub fn record_sharing(&mut self, peer: usize, action: &SharingAction) {
        self.records[peer].contributions.record_sharing(action);
    }

    /// Records one time step of editing/voting outcomes for a peer.
    pub fn record_editing(&mut self, peer: usize, action: &EditingAction) {
        self.records[peer].contributions.record_editing(action);
    }

    /// Records an unsuccessful (against-majority) vote and returns the new
    /// total.
    pub fn record_unsuccessful_vote(&mut self, peer: usize) -> u32 {
        self.records[peer].unsuccessful_votes += 1;
        self.records[peer].unsuccessful_votes
    }

    /// Records a declined edit and returns the new total.
    pub fn record_declined_edit(&mut self, peer: usize) -> u32 {
        self.records[peer].declined_edits += 1;
        self.records[peer].declined_edits
    }

    /// Number of unsuccessful votes a peer has accumulated.
    pub fn unsuccessful_votes(&self, peer: usize) -> u32 {
        self.records[peer].unsuccessful_votes
    }

    /// Number of declined edits a peer has accumulated.
    pub fn declined_edits(&self, peer: usize) -> u32 {
        self.records[peer].declined_edits
    }

    /// Whether the peer currently holds voting rights.
    pub fn can_vote(&self, peer: usize) -> bool {
        self.records[peer].can_vote
    }

    /// Whether the peer currently holds editing rights.
    pub fn can_edit(&self, peer: usize) -> bool {
        self.records[peer].can_edit
    }

    /// Revokes a peer's voting rights (malicious-voter punishment). The peer
    /// regains them through [`ReputationLedger::restore_voting_rights`] once
    /// it "contributes constructive edits first", as the paper puts it.
    pub fn revoke_voting_rights(&mut self, peer: usize) {
        self.records[peer].can_vote = false;
    }

    /// Restores a peer's voting rights and clears its unsuccessful-vote
    /// counter.
    pub fn restore_voting_rights(&mut self, peer: usize) {
        self.records[peer].can_vote = true;
        self.records[peer].unsuccessful_votes = 0;
    }

    /// Revokes a peer's editing rights and resets both of its reputations to
    /// the minimum, as the malicious-editor punishment of Section III-C3
    /// prescribes (`R_S = R_S^min`, `R_E = R_E^min`).
    pub fn punish_malicious_editor(&mut self, peer: usize) {
        let record = &mut self.records[peer];
        record.can_edit = false;
        record.contributions.reset();
        record.declined_edits = 0;
    }

    /// Restores a peer's editing rights (after it has rebuilt its sharing
    /// reputation above the editing threshold).
    pub fn restore_editing_rights(&mut self, peer: usize) {
        self.records[peer].can_edit = true;
    }

    /// Resets every peer's contribution values while keeping rights and the
    /// configured functions — the phase switch of the simulation model
    /// ("the reputation values are reset but the agents keep their
    /// Q-Matrices", Section IV-B).
    pub fn reset_all_contributions(&mut self) {
        for record in &mut self.records {
            record.contributions.reset();
            record.unsuccessful_votes = 0;
            record.declined_edits = 0;
        }
    }

    /// Vector of all sharing reputations, index-aligned with peers.
    pub fn all_sharing_reputations(&self) -> Vec<f64> {
        (0..self.len())
            .map(|p| self.sharing_reputation(p))
            .collect()
    }

    /// Vector of all editing reputations, index-aligned with peers.
    pub fn all_editing_reputations(&self) -> Vec<f64> {
        (0..self.len())
            .map(|p| self.editing_reputation(p))
            .collect()
    }
}

impl ReputationStore for ReputationLedger {
    fn len(&self) -> usize {
        ReputationLedger::len(self)
    }
    fn is_empty(&self) -> bool {
        ReputationLedger::is_empty(self)
    }
    fn min_sharing_reputation(&self) -> f64 {
        ReputationLedger::min_sharing_reputation(self)
    }
    fn min_editing_reputation(&self) -> f64 {
        ReputationLedger::min_editing_reputation(self)
    }
    fn sharing_reputation(&self, peer: usize) -> f64 {
        ReputationLedger::sharing_reputation(self, peer)
    }
    fn editing_reputation(&self, peer: usize) -> f64 {
        ReputationLedger::editing_reputation(self, peer)
    }
    fn peer(&self, peer: usize) -> PeerReputation {
        ReputationLedger::peer(self, peer)
    }
    fn record_sharing(&mut self, peer: usize, action: &SharingAction) {
        ReputationLedger::record_sharing(self, peer, action);
    }
    fn record_editing(&mut self, peer: usize, action: &EditingAction) {
        ReputationLedger::record_editing(self, peer, action);
    }
    fn record_unsuccessful_vote(&mut self, peer: usize) -> u32 {
        ReputationLedger::record_unsuccessful_vote(self, peer)
    }
    fn record_declined_edit(&mut self, peer: usize) -> u32 {
        ReputationLedger::record_declined_edit(self, peer)
    }
    fn unsuccessful_votes(&self, peer: usize) -> u32 {
        ReputationLedger::unsuccessful_votes(self, peer)
    }
    fn declined_edits(&self, peer: usize) -> u32 {
        ReputationLedger::declined_edits(self, peer)
    }
    fn can_vote(&self, peer: usize) -> bool {
        ReputationLedger::can_vote(self, peer)
    }
    fn can_edit(&self, peer: usize) -> bool {
        ReputationLedger::can_edit(self, peer)
    }
    fn revoke_voting_rights(&mut self, peer: usize) {
        ReputationLedger::revoke_voting_rights(self, peer);
    }
    fn restore_voting_rights(&mut self, peer: usize) {
        ReputationLedger::restore_voting_rights(self, peer);
    }
    fn punish_malicious_editor(&mut self, peer: usize) {
        ReputationLedger::punish_malicious_editor(self, peer);
    }
    fn restore_editing_rights(&mut self, peer: usize) {
        ReputationLedger::restore_editing_rights(self, peer);
    }
    fn reset_all_contributions(&mut self) {
        ReputationLedger::reset_all_contributions(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::LinearReputation;

    fn ledger(peers: usize) -> ReputationLedger {
        ReputationLedger::with_paper_defaults(peers)
    }

    #[test]
    fn newcomers_start_at_minimum_reputation() {
        let l = ledger(5);
        for p in 0..5 {
            assert!((l.sharing_reputation(p) - 0.05).abs() < 1e-12);
            assert!((l.editing_reputation(p) - 0.05).abs() < 1e-12);
            assert!(l.can_edit(p));
            assert!(l.can_vote(p));
        }
    }

    #[test]
    fn sharing_raises_sharing_reputation_only() {
        let mut l = ledger(2);
        l.record_sharing(
            0,
            &SharingAction {
                shared_articles: 50.0,
                shared_bandwidth: 1.0,
            },
        );
        assert!(l.sharing_reputation(0) > 0.5);
        assert!((l.editing_reputation(0) - 0.05).abs() < 1e-12);
        assert!((l.sharing_reputation(1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn editing_raises_editing_reputation_only() {
        let mut l = ledger(1);
        for _ in 0..10 {
            l.record_editing(
                0,
                &EditingAction {
                    successful_votes: 1,
                    accepted_edits: 1,
                    attempted: true,
                },
            );
        }
        assert!(l.editing_reputation(0) > 0.5);
        assert!((l.sharing_reputation(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn malicious_editor_punishment_resets_both_reputations() {
        let mut l = ledger(1);
        l.record_sharing(
            0,
            &SharingAction {
                shared_articles: 100.0,
                shared_bandwidth: 1.0,
            },
        );
        l.record_editing(
            0,
            &EditingAction {
                successful_votes: 5,
                accepted_edits: 5,
                attempted: true,
            },
        );
        assert!(l.sharing_reputation(0) > 0.9);
        l.punish_malicious_editor(0);
        assert!(!l.can_edit(0));
        assert!((l.sharing_reputation(0) - l.min_sharing_reputation()).abs() < 1e-12);
        assert!((l.editing_reputation(0) - l.min_editing_reputation()).abs() < 1e-12);
        l.restore_editing_rights(0);
        assert!(l.can_edit(0));
    }

    #[test]
    fn voting_rights_lifecycle() {
        let mut l = ledger(1);
        assert_eq!(l.record_unsuccessful_vote(0), 1);
        assert_eq!(l.record_unsuccessful_vote(0), 2);
        l.revoke_voting_rights(0);
        assert!(!l.can_vote(0));
        l.restore_voting_rights(0);
        assert!(l.can_vote(0));
        assert_eq!(l.unsuccessful_votes(0), 0);
    }

    #[test]
    fn declined_edit_counter() {
        let mut l = ledger(1);
        assert_eq!(l.record_declined_edit(0), 1);
        assert_eq!(l.declined_edits(0), 1);
    }

    #[test]
    fn reset_all_contributions_returns_to_minimum() {
        let mut l = ledger(3);
        for p in 0..3 {
            l.record_sharing(
                p,
                &SharingAction {
                    shared_articles: 30.0,
                    shared_bandwidth: 1.0,
                },
            );
        }
        l.reset_all_contributions();
        for p in 0..3 {
            assert!((l.sharing_reputation(p) - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn custom_functions_are_used() {
        let l = ReputationLedger::new(
            1,
            ContributionParams::default(),
            Arc::new(LinearReputation::new(0.1, 0.01)),
            Arc::new(LinearReputation::new(0.2, 0.01)),
        );
        assert!((l.sharing_reputation(0) - 0.1).abs() < 1e-12);
        assert!((l.editing_reputation(0) - 0.2).abs() < 1e-12);
        assert_eq!(l.min_sharing_reputation(), 0.1);
        assert_eq!(l.min_editing_reputation(), 0.2);
    }

    #[test]
    fn all_reputation_vectors_are_index_aligned() {
        let mut l = ledger(4);
        l.record_sharing(
            2,
            &SharingAction {
                shared_articles: 50.0,
                shared_bandwidth: 1.0,
            },
        );
        let all = l.all_sharing_reputations();
        assert_eq!(all.len(), 4);
        assert!(all[2] > all[0]);
        assert_eq!(all[0], l.sharing_reputation(0));
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_ledger_panics() {
        let _ = ReputationLedger::with_paper_defaults(0);
    }

    #[test]
    fn debug_format_mentions_function_names() {
        let l = ledger(2);
        let s = format!("{l:?}");
        assert!(s.contains("logistic"));
        assert!(s.contains("peers"));
    }
}
