//! Attack scenario generators for the reputation system.
//!
//! The paper motivates its `R_min` choice with whitewashing ("a high R_min
//! provides incentives for whitewashing the identity") and cites the known
//! collusion weakness of EigenTrust ("peers can boost their reputation score
//! by simply uploading some files to a highly reputable peer"). These
//! generators build trust graphs and ledger workloads exhibiting those
//! attacks so the propagation substrates and the incentive scheme can be
//! stress-tested; the `abl2_propagation_attacks` bench reports how each
//! substrate ranks attackers versus honest peers.

use crate::propagation::TrustGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Description of a synthetic attack scenario over a peer population.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// Total number of peers.
    pub peers: usize,
    /// Indices of the attacking peers.
    pub attackers: Vec<usize>,
    /// Human-readable name of the attack.
    pub name: String,
}

impl AttackScenario {
    /// Indices of the honest peers.
    pub fn honest(&self) -> Vec<usize> {
        (0..self.peers)
            .filter(|i| !self.attackers.contains(i))
            .collect()
    }

    /// Whether a peer is an attacker.
    pub fn is_attacker(&self, peer: usize) -> bool {
        self.attackers.contains(&peer)
    }
}

/// Builds an honest baseline trust graph: every peer has transacted with a
/// random subset of others and assigned them trust proportional to the
/// (synthetic) volume of successful transactions.
pub fn honest_graph<R: Rng + ?Sized>(peers: usize, density: f64, rng: &mut R) -> TrustGraph {
    assert!(peers > 1, "need at least two peers");
    assert!((0.0..=1.0).contains(&density), "density must lie in [0, 1]");
    let mut graph = TrustGraph::new(peers);
    for i in 0..peers {
        for j in 0..peers {
            if i != j && rng.gen_bool(density) {
                graph.set_trust(i, j, rng.gen_range(1.0..10.0));
            }
        }
    }
    graph
}

/// **Collusion clique**: the last `clique_size` peers assign each other
/// `boost` trust while receiving (almost) none from honest peers. Returns
/// the modified graph and the scenario description.
pub fn collusion_clique<R: Rng + ?Sized>(
    peers: usize,
    clique_size: usize,
    boost: f64,
    density: f64,
    rng: &mut R,
) -> (TrustGraph, AttackScenario) {
    assert!(clique_size < peers, "clique must be a strict subset");
    assert!(clique_size >= 2, "a clique needs at least two members");
    let honest_count = peers - clique_size;
    let mut graph = TrustGraph::new(peers);
    // Honest sub-network.
    for i in 0..honest_count {
        for j in 0..honest_count {
            if i != j && rng.gen_bool(density) {
                graph.set_trust(i, j, rng.gen_range(1.0..10.0));
            }
        }
    }
    // Clique members boost each other.
    let attackers: Vec<usize> = (honest_count..peers).collect();
    for &a in &attackers {
        for &b in &attackers {
            if a != b {
                graph.set_trust(a, b, boost);
            }
        }
    }
    // Attackers also praise one honest peer to look legitimate (the
    // EigenTrust "upload to a reputable peer" trick in reverse direction
    // happens below via the tricked edge).
    for &a in &attackers {
        graph.set_trust(a, 0, boost / 10.0);
    }
    // One honest peer has been tricked into a small amount of trust towards
    // the first attacker.
    graph.set_trust(0, attackers[0], 0.5);
    (
        graph,
        AttackScenario {
            peers,
            attackers,
            name: "collusion-clique".to_string(),
        },
    )
}

/// **Whitewashing**: a free-rider repeatedly discards its identity. In ledger
/// terms the attacker's contribution history is reset every `lifetime`
/// steps; in trust-graph terms it never accumulates incoming trust. Returns
/// the step indices at which the attacker re-joins with a fresh identity
/// over a horizon of `total_steps`.
pub fn whitewashing_schedule(total_steps: usize, lifetime: usize) -> Vec<usize> {
    assert!(lifetime > 0, "lifetime must be positive");
    (0..total_steps).step_by(lifetime).collect()
}

/// Expected advantage of whitewashing: with newcomer reputation `r_min` and
/// a reputation function that would have decayed a free-rider's reputation
/// to `r_decayed` by the end of its identity lifetime, whitewashing pays off
/// whenever `r_min > r_decayed`. The paper keeps `R_min` low (0.05) exactly
/// to keep this margin small.
pub fn whitewashing_gain(r_min: f64, r_decayed: f64) -> f64 {
    r_min - r_decayed
}

/// **Reputation milking**: an attacker behaves well until it reaches a target
/// reputation, then free-rides until its reputation decays back to the
/// newcomer level, and repeats. Returns the synthetic contribution sequence
/// (one entry per step: `true` = contribute, `false` = free-ride).
pub fn milking_schedule(total_steps: usize, build_steps: usize, milk_steps: usize) -> Vec<bool> {
    assert!(
        build_steps > 0 && milk_steps > 0,
        "phases must be non-empty"
    );
    let mut out = Vec::with_capacity(total_steps);
    let cycle = build_steps + milk_steps;
    for t in 0..total_steps {
        out.push(t % cycle < build_steps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::eigentrust::EigenTrust;
    use crate::propagation::maxflow::MaxFlowTrust;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn honest_graph_density_zero_and_one() {
        let empty = honest_graph(5, 0.0, &mut rng());
        assert_eq!(empty.edge_count(), 0);
        let full = honest_graph(5, 1.0, &mut rng());
        assert_eq!(full.edge_count(), 20);
    }

    #[test]
    fn collusion_scenario_classifies_peers() {
        let (graph, scenario) = collusion_clique(10, 3, 100.0, 0.5, &mut rng());
        assert_eq!(scenario.attackers, vec![7, 8, 9]);
        assert_eq!(scenario.honest().len(), 7);
        assert!(scenario.is_attacker(8));
        assert!(!scenario.is_attacker(0));
        assert!(graph.trust(7, 8) > graph.trust(0, 7));
    }

    #[test]
    fn maxflow_bounds_colluders_better_than_undamped_eigentrust() {
        let (graph, scenario) = collusion_clique(12, 4, 500.0, 0.6, &mut rng());
        let honest_observer = 1usize;

        // EigenTrust without damping: clique retains substantial mass.
        let et = EigenTrust::new(0.0, vec![]).compute(&graph);
        let clique_mass_et: f64 = scenario.attackers.iter().map(|&a| et.values[a]).sum();

        // MaxFlow from an honest observer: clique bounded by the 0.5 cut.
        let mf = MaxFlowTrust::new();
        let max_honest_flow = scenario
            .honest()
            .iter()
            .filter(|&&p| p != honest_observer)
            .map(|&p| mf.max_trust(&graph, honest_observer, p))
            .fold(0.0f64, f64::max);
        let max_attacker_flow = scenario
            .attackers
            .iter()
            .map(|&a| mf.max_trust(&graph, honest_observer, a))
            .fold(0.0f64, f64::max);

        assert!(
            max_attacker_flow < max_honest_flow,
            "max-flow should rank honest peers above colluders: {max_attacker_flow} vs {max_honest_flow}"
        );
        assert!(
            clique_mass_et > 0.01,
            "undamped EigenTrust should leak non-trivial mass to the clique ({clique_mass_et})"
        );
    }

    #[test]
    fn whitewashing_schedule_steps() {
        assert_eq!(whitewashing_schedule(10, 3), vec![0, 3, 6, 9]);
        assert_eq!(whitewashing_schedule(5, 10), vec![0]);
    }

    #[test]
    fn whitewashing_gain_is_small_with_paper_rmin() {
        // With R_min = 0.05 and an idle reputation that decays to the same
        // minimum, whitewashing provides no advantage.
        assert_eq!(whitewashing_gain(0.05, 0.05), 0.0);
        // With a generous R_min it would.
        assert!(whitewashing_gain(0.5, 0.05) > 0.0);
    }

    #[test]
    fn milking_schedule_alternates_phases() {
        let s = milking_schedule(10, 3, 2);
        assert_eq!(
            s,
            vec![true, true, true, false, false, true, true, true, false, false]
        );
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn clique_cannot_cover_everyone() {
        let _ = collusion_clique(4, 4, 10.0, 0.5, &mut rng());
    }
}
