//! Service differentiation (Section III-C of the paper).
//!
//! Three services are differentiated on reputation:
//!
//! * **Downloading** — a peer `i` downloading from source `j` receives the
//!   bandwidth fraction `B_i = R_S^i / Σ_{k ∈ D_j} R_S^k` of `j`'s upload
//!   bandwidth, where `D_j` is the set of peers currently downloading from
//!   `j`.
//! * **Voting** — only previously successful editors of an article may vote
//!   on its changes; each voter's voice is weighted
//!   `v_i = R_E^i / Σ_{k ∈ V} R_E^k`, and voters who vote against the
//!   majority too often lose their voting rights.
//! * **Editing** — editing requires a sharing reputation above a threshold
//!   `R_S ≥ θ > R_S^min`; the majority required to accept an edit is
//!   inversely proportional to the editor's reputation, and editors with too
//!   many declined edits are punished by a reputation reset.

use serde::{Deserialize, Serialize};

/// Parameters of the service-differentiation rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceParams {
    /// `θ`: minimum sharing reputation required to edit articles. Must
    /// exceed the newcomer reputation `R_S^min` so editing always has an
    /// initial cost (Section III-C3).
    pub edit_threshold: f64,
    /// Majority fraction required of a *minimum*-reputation editor. The
    /// required majority interpolates between this and
    /// `majority_at_max_reputation` inversely with the editor's reputation.
    pub majority_at_min_reputation: f64,
    /// Majority fraction required of a maximum-reputation (R = 1) editor.
    pub majority_at_max_reputation: f64,
}

impl Default for ServiceParams {
    fn default() -> Self {
        Self {
            edit_threshold: 0.1,
            majority_at_min_reputation: 0.65,
            majority_at_max_reputation: 0.5,
        }
    }
}

impl ServiceParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1)` or the majority bounds
    /// are not proper fractions with `min ≥ max` ordering (higher reputation
    /// must never need a *larger* majority).
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }

    /// Validates parameter ranges, naming the offending field in the error
    /// message.
    pub fn check(&self) -> Result<(), String> {
        if !(self.edit_threshold > 0.0 && self.edit_threshold < 1.0) {
            return Err("edit threshold must lie in (0, 1)".to_string());
        }
        if !((0.0..=1.0).contains(&self.majority_at_min_reputation)
            && (0.0..=1.0).contains(&self.majority_at_max_reputation))
        {
            return Err("majority fractions must lie in [0, 1]".to_string());
        }
        if self.majority_at_min_reputation < self.majority_at_max_reputation {
            return Err("required majority must not increase with reputation".to_string());
        }
        Ok(())
    }
}

/// The service-differentiation rule set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceDifferentiation {
    params: ServiceParams,
    /// Newcomer sharing reputation `R_S^min`; needed to validate `θ > R_S^min`
    /// and to express the "no differentiation" baseline consistently.
    min_sharing_reputation: f64,
}

impl ServiceDifferentiation {
    /// Creates the rule set.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid or the editing threshold does
    /// not exceed the newcomer reputation (the paper requires
    /// `θ > R_S^min`).
    pub fn new(params: ServiceParams, min_sharing_reputation: f64) -> Self {
        params.validate();
        assert!(
            params.edit_threshold > min_sharing_reputation,
            "edit threshold must exceed the newcomer reputation"
        );
        Self {
            params,
            min_sharing_reputation,
        }
    }

    /// The rule set with the paper's defaults and `R_S^min = 0.05`.
    pub fn paper_defaults() -> Self {
        Self::new(ServiceParams::default(), 0.05)
    }

    /// The parameters in use.
    pub fn params(&self) -> &ServiceParams {
        &self.params
    }

    /// **Downloading.** Splits a source's upload bandwidth among the
    /// downloaders proportionally to their sharing reputations:
    /// `B_i = R_S^i / Σ_k R_S^k`.
    ///
    /// Returns one fraction per downloader, in input order. The fractions
    /// sum to 1 whenever at least one downloader has positive reputation;
    /// with an empty downloader set the result is empty.
    pub fn bandwidth_shares(&self, downloader_sharing_reputations: &[f64]) -> Vec<f64> {
        proportional_shares(downloader_sharing_reputations)
    }

    /// **Voting.** Weighted voting power `v_i = R_E^i / Σ_k R_E^k` for the
    /// eligible voters of an edit.
    pub fn voting_powers(&self, voter_editing_reputations: &[f64]) -> Vec<f64> {
        proportional_shares(voter_editing_reputations)
    }

    /// [`ServiceDifferentiation::voting_powers`] into a caller-owned buffer
    /// (cleared first), so per-edit hot loops reuse one allocation.
    /// Bit-identical to the allocating variant.
    pub fn voting_powers_into(&self, voter_editing_reputations: &[f64], out: &mut Vec<f64>) {
        proportional_shares_into(voter_editing_reputations, out);
    }

    /// [`ServiceDifferentiation::equal_shares`] into a caller-owned buffer
    /// (cleared first).
    pub fn equal_shares_into(count: usize, out: &mut Vec<f64>) {
        out.clear();
        if count > 0 {
            out.resize(count, 1.0 / count as f64);
        }
    }

    /// **Editing.** Whether a peer with sharing reputation `r_s` may edit.
    pub fn may_edit(&self, sharing_reputation: f64) -> bool {
        sharing_reputation >= self.params.edit_threshold
    }

    /// **Editing.** The weighted-majority fraction required to accept an
    /// edit by an editor with editing reputation `r_e`. The requirement is
    /// inversely proportional to reputation: a newcomer needs
    /// `majority_at_min_reputation`, a maximally reputable editor only
    /// `majority_at_max_reputation`.
    pub fn required_majority(&self, editor_editing_reputation: f64) -> f64 {
        let r = editor_editing_reputation.clamp(0.0, 1.0);
        let hi = self.params.majority_at_min_reputation;
        let lo = self.params.majority_at_max_reputation;
        // Linear interpolation on reputation; r = 0 → hi, r = 1 → lo.
        hi - (hi - lo) * r
    }

    /// Decides a weighted vote: given the voting powers of voters in favour
    /// and the editor's required majority, returns whether the edit is
    /// accepted.
    ///
    /// `in_favor_power` and `against_power` are sums of [`Self::voting_powers`]
    /// entries; abstentions simply do not appear in either sum.
    pub fn edit_accepted(
        &self,
        editor_editing_reputation: f64,
        in_favor_power: f64,
        against_power: f64,
    ) -> bool {
        debug_assert!(in_favor_power >= 0.0 && against_power >= 0.0);
        let total = in_favor_power + against_power;
        if total <= 0.0 {
            // No eligible voter cast a vote; the conservative default is to
            // reject so unauditable edits cannot slip through.
            return false;
        }
        let fraction = in_favor_power / total;
        fraction >= self.required_majority(editor_editing_reputation)
    }

    /// The "no incentive" baseline used for Figure 3: every downloader gets
    /// an equal share of the source's bandwidth regardless of reputation.
    pub fn equal_shares(count: usize) -> Vec<f64> {
        if count == 0 {
            Vec::new()
        } else {
            vec![1.0 / count as f64; count]
        }
    }

    /// The newcomer sharing reputation this rule set was configured with.
    pub fn min_sharing_reputation(&self) -> f64 {
        self.min_sharing_reputation
    }
}

/// Shares proportional to the inputs; all-zero inputs fall back to equal
/// shares so that a set of newcomers with numerically zero reputation (only
/// possible with non-paper reputation functions) still receives service.
fn proportional_shares(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    proportional_shares_into(values, &mut out);
    out
}

/// [`proportional_shares`] into a caller-owned buffer (cleared first). The
/// arithmetic is identical — same summation order, same division — so the
/// shares are bitwise equal to the allocating variant's.
fn proportional_shares_into(values: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if values.is_empty() {
        return;
    }
    debug_assert!(values.iter().all(|&v| v >= 0.0), "reputations must be >= 0");
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        ServiceDifferentiation::equal_shares_into(values.len(), out);
        return;
    }
    out.extend(values.iter().map(|&v| v / sum));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> ServiceDifferentiation {
        ServiceDifferentiation::paper_defaults()
    }

    #[test]
    fn bandwidth_shares_are_proportional_to_sharing_reputation() {
        let shares = rules().bandwidth_shares(&[0.05, 0.15, 0.8]);
        assert_eq!(shares.len(), 3);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 0.05).abs() < 1e-12);
        assert!((shares[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn single_downloader_gets_everything() {
        let shares = rules().bandwidth_shares(&[0.3]);
        assert_eq!(shares, vec![1.0]);
    }

    #[test]
    fn empty_downloader_set_is_empty() {
        assert!(rules().bandwidth_shares(&[]).is_empty());
        assert!(ServiceDifferentiation::equal_shares(0).is_empty());
    }

    #[test]
    fn zero_reputation_falls_back_to_equal_shares() {
        let shares = rules().bandwidth_shares(&[0.0, 0.0]);
        assert_eq!(shares, vec![0.5, 0.5]);
    }

    #[test]
    fn voting_powers_normalise() {
        let powers = rules().voting_powers(&[0.05, 0.05, 0.9]);
        assert!((powers.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(powers[2] > 0.8);
    }

    #[test]
    fn editing_requires_threshold_above_newcomer() {
        let r = rules();
        assert!(!r.may_edit(0.05));
        assert!(!r.may_edit(0.0999));
        assert!(r.may_edit(0.1));
        assert!(r.may_edit(0.9));
    }

    #[test]
    fn required_majority_decreases_with_reputation() {
        let r = rules();
        let newcomer = r.required_majority(0.0);
        let mid = r.required_majority(0.5);
        let veteran = r.required_majority(1.0);
        assert!((newcomer - 0.65).abs() < 1e-12);
        assert!((veteran - 0.5).abs() < 1e-12);
        assert!(newcomer > mid && mid > veteran);
        // Values outside [0,1] are clamped.
        assert_eq!(r.required_majority(2.0), veteran);
        assert_eq!(r.required_majority(-1.0), newcomer);
    }

    #[test]
    fn edit_acceptance_uses_weighted_majority() {
        let r = rules();
        // A low-reputation editor needs 65 % of the voting power in favour.
        assert!(!r.edit_accepted(0.0, 0.6, 0.4));
        assert!(r.edit_accepted(0.0, 0.7, 0.3));
        // A high-reputation editor needs only 50 %.
        assert!(r.edit_accepted(1.0, 0.5, 0.5));
        assert!(!r.edit_accepted(1.0, 0.45, 0.55));
    }

    #[test]
    fn edit_with_no_votes_is_rejected() {
        assert!(!rules().edit_accepted(1.0, 0.0, 0.0));
    }

    #[test]
    fn equal_shares_baseline_is_uniform() {
        let shares = ServiceDifferentiation::equal_shares(4);
        assert_eq!(shares, vec![0.25; 4]);
    }

    #[test]
    fn high_reputation_downloader_gets_more_than_equal_split() {
        // The crux of the incentive: compared to the no-incentive baseline,
        // a contributor is better off and a free-rider worse off.
        let reputations = [0.05, 0.05, 0.05, 0.85];
        let with = rules().bandwidth_shares(&reputations);
        let without = ServiceDifferentiation::equal_shares(4);
        assert!(with[3] > without[3]);
        assert!(with[0] < without[0]);
    }

    #[test]
    #[should_panic(expected = "exceed the newcomer reputation")]
    fn threshold_must_exceed_minimum() {
        let params = ServiceParams {
            edit_threshold: 0.05,
            ..Default::default()
        };
        let _ = ServiceDifferentiation::new(params, 0.05);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn majority_ordering_is_enforced() {
        let params = ServiceParams {
            majority_at_min_reputation: 0.5,
            majority_at_max_reputation: 0.8,
            ..Default::default()
        };
        params.validate();
    }
}
