//! Reputation functions `R : ℝ≥0 → [R_min, 1]`.
//!
//! The paper requires (Section III-A) that the reputation value
//!
//! 1. starts above zero for newcomers (`R_min > 0`, but not so high that
//!    whitewashing the identity becomes attractive),
//! 2. is bounded above by `R_max = 1`,
//! 3. grows monotonically in the contribution value, and
//! 4. grows quickly at the beginning to motivate newcomers.
//!
//! The concrete representation chosen in the paper is the logistic function
//! `R(C) = 1 / (1 + g · exp(−β · C))` (Figure 1 plots it for `g = 19` and
//! `β ∈ {0.1, 0.15, 0.2, 0.3}`). Because Section VI names the study of
//! alternative reputation functions as future work, this module ships three
//! additional monotone functions with the same `[R_min, 1]` range so the
//! ablation bench (`abl1_reputation_functions`) can compare them.

use serde::{Deserialize, Serialize};

/// A monotone map from contribution values to reputation values.
///
/// Implementations must guarantee `reputation(0) >= minimum()`,
/// monotonicity in the contribution value, and an upper bound of `1.0`.
pub trait ReputationFunction: Send + Sync {
    /// Reputation for a non-negative contribution value.
    fn reputation(&self, contribution: f64) -> f64;

    /// Smallest reputation the function can return (`R_min`).
    fn minimum(&self) -> f64;

    /// Short name used in ablation tables.
    fn name(&self) -> &'static str;

    /// Clamps a raw contribution value to the non-negative domain and
    /// evaluates the function. Contribution values can temporarily go
    /// negative through the decay term; the paper defines `C ≥ 0`, so the
    /// clamp keeps evaluation within the specified domain.
    fn reputation_clamped(&self, contribution: f64) -> f64 {
        self.reputation(contribution.max(0.0))
    }
}

/// The paper's logistic reputation function
/// `R(C) = 1 / (1 + g · exp(−β · C))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticReputation {
    /// `g`: controls the initial reputation `R(0) = 1 / (1 + g)`.
    pub g: f64,
    /// `β`: controls how fast reputation grows with contribution.
    pub beta: f64,
}

impl LogisticReputation {
    /// Creates a logistic reputation function.
    ///
    /// # Panics
    ///
    /// Panics unless `g > 0` and `beta > 0`.
    pub fn new(g: f64, beta: f64) -> Self {
        assert!(g > 0.0, "g must be positive");
        assert!(beta > 0.0, "beta must be positive");
        Self { g, beta }
    }

    /// The configuration plotted in Figure 1 of the paper: `g = 19` with the
    /// given `β`. `g = 19` makes the newcomer reputation `R(0) = 0.05`,
    /// which is exactly the `R_min = 0.05` used in the simulation model.
    pub fn paper(beta: f64) -> Self {
        Self::new(19.0, beta)
    }

    /// The contribution value at the inflection point `C* = ln(g) / β`,
    /// where the reputation equals 0.5 and growth starts to flatten — the
    /// paper's discussion of Figure 3 attributes the moderate sharing gain
    /// to how quickly the curve flattens beyond this point.
    pub fn inflection_point(&self) -> f64 {
        self.g.ln() / self.beta
    }
}

impl Default for LogisticReputation {
    fn default() -> Self {
        Self::paper(0.2)
    }
}

impl ReputationFunction for LogisticReputation {
    fn reputation(&self, contribution: f64) -> f64 {
        debug_assert!(contribution >= 0.0, "contribution must be non-negative");
        1.0 / (1.0 + self.g * (-self.beta * contribution).exp())
    }

    fn minimum(&self) -> f64 {
        1.0 / (1.0 + self.g)
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

/// Linear reputation `R(C) = min(R_min + slope · C, 1)` — the simplest
/// alternative; its linear growth means the marginal return on contribution
/// never drops until the cap is hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearReputation {
    /// Newcomer reputation `R_min`.
    pub minimum: f64,
    /// Reputation gained per unit of contribution.
    pub slope: f64,
}

impl LinearReputation {
    /// Creates a linear reputation function.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minimum < 1` and `slope > 0`.
    pub fn new(minimum: f64, slope: f64) -> Self {
        assert!(minimum > 0.0 && minimum < 1.0, "R_min must lie in (0, 1)");
        assert!(slope > 0.0, "slope must be positive");
        Self { minimum, slope }
    }
}

impl ReputationFunction for LinearReputation {
    fn reputation(&self, contribution: f64) -> f64 {
        (self.minimum + self.slope * contribution).min(1.0)
    }

    fn minimum(&self) -> f64 {
        self.minimum
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Step reputation: `R_min` below the threshold, `1` at or above it. The
/// harshest possible differentiation; useful as an extreme point in the
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepReputation {
    /// Newcomer reputation `R_min`.
    pub minimum: f64,
    /// Contribution threshold at which reputation jumps to 1.
    pub threshold: f64,
}

impl StepReputation {
    /// Creates a step reputation function.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minimum < 1` and `threshold > 0`.
    pub fn new(minimum: f64, threshold: f64) -> Self {
        assert!(minimum > 0.0 && minimum < 1.0, "R_min must lie in (0, 1)");
        assert!(threshold > 0.0, "threshold must be positive");
        Self { minimum, threshold }
    }
}

impl ReputationFunction for StepReputation {
    fn reputation(&self, contribution: f64) -> f64 {
        if contribution >= self.threshold {
            1.0
        } else {
            self.minimum
        }
    }

    fn minimum(&self) -> f64 {
        self.minimum
    }

    fn name(&self) -> &'static str {
        "step"
    }
}

/// Exponential saturation `R(C) = 1 − (1 − R_min) · exp(−rate · C)`:
/// concave everywhere, i.e. the *fastest* initial growth of the family —
/// the shape the paper's requirement 4 ("increase quite fast at the
/// beginning") asks for most literally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialSaturation {
    /// Newcomer reputation `R_min`.
    pub minimum: f64,
    /// Saturation rate.
    pub rate: f64,
}

impl ExponentialSaturation {
    /// Creates an exponential-saturation reputation function.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minimum < 1` and `rate > 0`.
    pub fn new(minimum: f64, rate: f64) -> Self {
        assert!(minimum > 0.0 && minimum < 1.0, "R_min must lie in (0, 1)");
        assert!(rate > 0.0, "rate must be positive");
        Self { minimum, rate }
    }
}

impl ReputationFunction for ExponentialSaturation {
    fn reputation(&self, contribution: f64) -> f64 {
        1.0 - (1.0 - self.minimum) * (-self.rate * contribution).exp()
    }

    fn minimum(&self) -> f64 {
        self.minimum
    }

    fn name(&self) -> &'static str {
        "exponential-saturation"
    }
}

/// The β values plotted in Figure 1 of the paper.
pub const FIGURE1_BETAS: [f64; 4] = [0.3, 0.2, 0.15, 0.1];

/// Evaluates the paper's Figure 1 series: for every β in
/// [`FIGURE1_BETAS`], the reputation at each integer contribution value in
/// `0..=max_contribution`. Returns `(beta, Vec<(contribution, reputation)>)`
/// pairs.
pub fn figure1_series(max_contribution: u32) -> Vec<(f64, Vec<(f64, f64)>)> {
    FIGURE1_BETAS
        .iter()
        .map(|&beta| {
            let f = LogisticReputation::paper(beta);
            let series = (0..=max_contribution)
                .map(|c| {
                    let c = f64::from(c);
                    (c, f.reputation(c))
                })
                .collect();
            (beta, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_functions() -> Vec<Box<dyn ReputationFunction>> {
        vec![
            Box::new(LogisticReputation::paper(0.2)),
            Box::new(LinearReputation::new(0.05, 0.02)),
            Box::new(StepReputation::new(0.05, 10.0)),
            Box::new(ExponentialSaturation::new(0.05, 0.1)),
        ]
    }

    #[test]
    fn logistic_matches_formula() {
        let f = LogisticReputation::new(19.0, 0.2);
        for c in [0.0, 5.0, 10.0, 25.0, 50.0] {
            let expected = 1.0 / (1.0 + 19.0 * (-0.2f64 * c).exp());
            assert!((f.reputation(c) - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn paper_newcomer_reputation_is_rmin_005() {
        // g = 19 gives R(0) = 1/20 = 0.05, the R_min of Section IV-B.
        let f = LogisticReputation::paper(0.2);
        assert!((f.reputation(0.0) - 0.05).abs() < 1e-12);
        assert!((f.minimum() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn logistic_inflection_point_has_reputation_half() {
        for &beta in &FIGURE1_BETAS {
            let f = LogisticReputation::paper(beta);
            let c_star = f.inflection_point();
            assert!((f.reputation(c_star) - 0.5).abs() < 1e-12, "beta={beta}");
        }
    }

    #[test]
    fn larger_beta_grows_faster() {
        // Figure 1: at the same contribution value, a larger β yields a
        // higher reputation (before saturation).
        let c = 15.0;
        let mut last = 0.0;
        for &beta in FIGURE1_BETAS.iter().rev() {
            // reversed: 0.1, 0.15, 0.2, 0.3 (increasing β)
            let r = LogisticReputation::paper(beta).reputation(c);
            assert!(r > last, "beta={beta}: {r} <= {last}");
            last = r;
        }
    }

    #[test]
    fn all_functions_are_monotone_and_bounded() {
        for f in all_functions() {
            let mut last = f64::NEG_INFINITY;
            for step in 0..=200 {
                let c = step as f64 * 0.5;
                let r = f.reputation(c);
                assert!(r >= last - 1e-12, "{} not monotone at C={c}", f.name());
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&r),
                    "{} out of range at C={c}: {r}",
                    f.name()
                );
                last = r;
            }
        }
    }

    #[test]
    fn all_functions_respect_their_minimum_at_zero() {
        for f in all_functions() {
            assert!(
                f.reputation(0.0) >= f.minimum() - 1e-12,
                "{}: R(0) = {} < R_min = {}",
                f.name(),
                f.reputation(0.0),
                f.minimum()
            );
            assert!(f.minimum() > 0.0, "{}: R_min must exceed 0", f.name());
        }
    }

    #[test]
    fn clamped_evaluation_handles_negative_contribution() {
        let f = LogisticReputation::default();
        assert_eq!(f.reputation_clamped(-10.0), f.reputation(0.0));
    }

    #[test]
    fn linear_caps_at_one() {
        let f = LinearReputation::new(0.1, 0.1);
        assert_eq!(f.reputation(100.0), 1.0);
        assert!((f.reputation(1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn step_jumps_at_threshold() {
        let f = StepReputation::new(0.05, 10.0);
        assert_eq!(f.reputation(9.99), 0.05);
        assert_eq!(f.reputation(10.0), 1.0);
    }

    #[test]
    fn exponential_saturation_approaches_one() {
        let f = ExponentialSaturation::new(0.05, 0.1);
        assert!((f.reputation(0.0) - 0.05).abs() < 1e-12);
        assert!(f.reputation(100.0) > 0.9999);
        assert!(f.reputation(100.0) <= 1.0);
    }

    #[test]
    fn figure1_series_shape() {
        let series = figure1_series(50);
        assert_eq!(series.len(), 4);
        for (beta, points) in &series {
            assert!(FIGURE1_BETAS.contains(beta));
            assert_eq!(points.len(), 51);
            assert!((points[0].1 - 0.05).abs() < 1e-12);
            // By C = 50 every curve in Figure 1 is close to saturation for
            // β ≥ 0.15; the slowest (β = 0.1) reaches at least ~0.88.
            assert!(points[50].1 > 0.85, "beta={beta}: {}", points[50].1);
        }
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn logistic_rejects_non_positive_beta() {
        let _ = LogisticReputation::new(19.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "R_min")]
    fn linear_rejects_bad_minimum() {
        let _ = LinearReputation::new(0.0, 0.1);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            all_functions().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
