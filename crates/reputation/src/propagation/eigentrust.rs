//! The EigenTrust algorithm (Kamvar, Schlosser, Garcia-Molina, WWW 2003).
//!
//! EigenTrust computes global trust values as the left principal eigenvector
//! of the row-normalised local-trust matrix `C = (c_ij)`: "the global trust
//! value of peer k is the k-th component of the left principal eigenvector
//! of the trust matrix", as the paper summarises in Section II-C. The
//! standard formulation adds a damping towards a set of pre-trusted peers —
//! `t ← (1 − a) · Cᵀ t + a · p` — which is also what makes the algorithm
//! partially resistant to collusion cliques (but, as the paper notes and the
//! `abl2` bench demonstrates, not fully: colluders can still boost each
//! other).

use super::{GlobalReputation, TrustGraph};
use serde::{Deserialize, Serialize};

/// EigenTrust configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenTrust {
    /// Damping weight `a` towards the pre-trusted distribution (0 = pure
    /// power iteration, 1 = ignore local trust entirely).
    pub damping: f64,
    /// Indices of pre-trusted peers; the pre-trusted distribution `p` is
    /// uniform over this set, or uniform over all peers when empty.
    pub pre_trusted: Vec<usize>,
    /// Convergence tolerance on the L1 distance between iterations.
    pub tolerance: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
}

impl Default for EigenTrust {
    fn default() -> Self {
        Self {
            damping: 0.1,
            pre_trusted: Vec::new(),
            tolerance: 1e-10,
            max_iterations: 1_000,
        }
    }
}

impl EigenTrust {
    /// Creates an EigenTrust instance with the given damping and pre-trusted
    /// peer set.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is outside `[0, 1]`.
    pub fn new(damping: f64, pre_trusted: Vec<usize>) -> Self {
        assert!((0.0..=1.0).contains(&damping), "damping must lie in [0, 1]");
        Self {
            damping,
            pre_trusted,
            ..Default::default()
        }
    }

    /// The pre-trusted distribution `p` over `n` peers.
    fn pre_trusted_distribution(&self, n: usize) -> Vec<f64> {
        if self.pre_trusted.is_empty() {
            return vec![1.0 / n as f64; n];
        }
        let mut p = vec![0.0; n];
        let share = 1.0 / self.pre_trusted.len() as f64;
        for &peer in &self.pre_trusted {
            assert!(peer < n, "pre-trusted peer {peer} out of range");
            p[peer] += share;
        }
        p
    }

    /// Computes global trust values for every peer of the graph.
    pub fn compute(&self, graph: &TrustGraph) -> GlobalReputation {
        let n = graph.len();
        let p = self.pre_trusted_distribution(n);
        // Pre-compute the normalised rows once; the iteration applies Cᵀ.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| graph.normalized_row(i)).collect();

        let mut t = p.clone();
        let mut next = vec![0.0; n];
        let mut iterations = 0;
        let mut converged = false;
        while iterations < self.max_iterations {
            iterations += 1;
            next.iter_mut().for_each(|v| *v = 0.0);
            // next_j = Σ_i c_ij · t_i  (left eigenvector / Cᵀ t).
            for (i, row) in rows.iter().enumerate() {
                let weight = t[i];
                if weight == 0.0 {
                    continue;
                }
                for (j, &c) in row.iter().enumerate() {
                    next[j] += c * weight;
                }
            }
            // Damping towards the pre-trusted distribution.
            for j in 0..n {
                next[j] = (1.0 - self.damping) * next[j] + self.damping * p[j];
            }
            let delta: f64 = t.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut t, &mut next);
            if delta < self.tolerance {
                converged = true;
                break;
            }
        }
        // Normalise defensively (the iteration preserves the simplex up to
        // floating-point error).
        let sum: f64 = t.iter().sum();
        if sum > 0.0 {
            t.iter_mut().for_each(|v| *v /= sum);
        }
        GlobalReputation {
            values: t,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph where everyone trusts peer 0 strongly and each other weakly.
    fn star_graph(n: usize) -> TrustGraph {
        let mut g = TrustGraph::new(n);
        for i in 1..n {
            g.set_trust(i, 0, 10.0);
            g.set_trust(0, i, 1.0);
            for j in 1..n {
                if i != j {
                    g.set_trust(i, j, 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn values_form_a_probability_distribution() {
        let rep = EigenTrust::default().compute(&star_graph(6));
        assert!((rep.values.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(rep.values.iter().all(|&v| v >= 0.0));
        assert!(rep.converged);
    }

    #[test]
    fn universally_trusted_peer_ranks_first() {
        let rep = EigenTrust::default().compute(&star_graph(8));
        assert_eq!(rep.top_peer(), 0);
        // And by a clear margin over every other peer.
        for i in 1..8 {
            assert!(rep.values[0] > 2.0 * rep.values[i], "peer {i}");
        }
    }

    #[test]
    fn empty_trust_graph_yields_uniform_reputation() {
        let g = TrustGraph::new(5);
        let rep = EigenTrust::default().compute(&g);
        for &v in &rep.values {
            assert!((v - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn pre_trusted_peers_receive_damping_mass() {
        let g = TrustGraph::new(4);
        let et = EigenTrust::new(0.5, vec![3]);
        let rep = et.compute(&g);
        assert_eq!(rep.top_peer(), 3);
    }

    #[test]
    fn damping_one_returns_pre_trusted_distribution() {
        let g = star_graph(4);
        let et = EigenTrust::new(1.0, vec![2]);
        let rep = et.compute(&g);
        assert!((rep.values[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collusion_clique_boosts_its_members_without_damping() {
        // Two colluders (3, 4) give each other enormous trust and get none
        // from the honest peers; without pre-trusted damping their clique
        // retains noticeable reputation mass — the weakness the paper notes.
        let mut g = TrustGraph::new(5);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    g.set_trust(i, j, 1.0);
                }
            }
        }
        g.set_trust(3, 4, 100.0);
        g.set_trust(4, 3, 100.0);
        // One honest peer was tricked into trusting a colluder slightly.
        g.set_trust(0, 3, 0.2);
        let no_damping = EigenTrust::new(0.0, vec![]).compute(&g);
        let damped = EigenTrust::new(0.3, vec![0, 1, 2]).compute(&g);
        let clique_mass_raw: f64 = no_damping.values[3] + no_damping.values[4];
        let clique_mass_damped: f64 = damped.values[3] + damped.values[4];
        assert!(
            clique_mass_raw > clique_mass_damped,
            "damping towards pre-trusted peers should suppress the clique: {clique_mass_raw} vs {clique_mass_damped}"
        );
    }

    #[test]
    fn iteration_budget_is_respected() {
        let et = EigenTrust {
            max_iterations: 2,
            tolerance: 0.0,
            ..Default::default()
        };
        let rep = et.compute(&star_graph(5));
        assert_eq!(rep.iterations, 2);
        assert!(!rep.converged);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_panics() {
        let _ = EigenTrust::new(1.5, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pre_trusted_peer_panics() {
        let g = TrustGraph::new(2);
        let _ = EigenTrust::new(0.5, vec![7]).compute(&g);
    }
}
