//! Maximum-flow bounded trust (Feldman, Lai, Stoica, Chuang, EC 2004).
//!
//! The paper's second propagation candidate interprets local trust values as
//! capacities of a directed graph: "the maximum flow is the maximum
//! reputation the source node can assign to the target node without
//! violating reputation constraints" (Section II-C). Because any reputation
//! a colluding clique can claim must flow across the cut separating it from
//! the honest peers, max-flow trust is collusion-resistant by construction —
//! at the cost of `O(V · E²)` per pair with Edmonds–Karp.
//!
//! This module implements Edmonds–Karp (BFS augmenting paths) over the
//! [`TrustGraph`] capacities and offers both pairwise queries and an
//! aggregated per-peer reputation vector as seen from a given source.

use super::{GlobalReputation, TrustGraph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Max-flow based trust computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MaxFlowTrust;

impl MaxFlowTrust {
    /// Creates a max-flow trust computer.
    pub fn new() -> Self {
        Self
    }

    /// The maximum trust `source` can assign to `target`: the value of the
    /// maximum `source → target` flow in the local-trust capacity graph.
    ///
    /// # Panics
    ///
    /// Panics if either peer index is out of range.
    pub fn max_trust(&self, graph: &TrustGraph, source: usize, target: usize) -> f64 {
        let n = graph.len();
        assert!(source < n && target < n, "peer index out of range");
        if source == target {
            // Self-trust is unconstrained; by convention report the total
            // capacity the peer hands out, capped at 1 for comparability.
            return 1.0;
        }
        // Residual capacities as a dense matrix (n is small in our setting).
        let mut residual = vec![0.0f64; n * n];
        for from in 0..n {
            for to in 0..n {
                residual[from * n + to] = graph.trust(from, to);
            }
        }
        let mut flow = 0.0;
        loop {
            // BFS for an augmenting path with positive residual capacity.
            let mut parent = vec![usize::MAX; n];
            parent[source] = source;
            let mut queue = VecDeque::new();
            queue.push_back(source);
            while let Some(u) = queue.pop_front() {
                if u == target {
                    break;
                }
                for v in 0..n {
                    if parent[v] == usize::MAX && residual[u * n + v] > 1e-15 {
                        parent[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            if parent[target] == usize::MAX {
                break;
            }
            // Bottleneck along the path.
            let mut bottleneck = f64::INFINITY;
            let mut v = target;
            while v != source {
                let u = parent[v];
                bottleneck = bottleneck.min(residual[u * n + v]);
                v = u;
            }
            // Augment.
            let mut v = target;
            while v != source {
                let u = parent[v];
                residual[u * n + v] -= bottleneck;
                residual[v * n + u] += bottleneck;
                v = u;
            }
            flow += bottleneck;
        }
        flow
    }

    /// The reputation of every peer as seen from `source`: the max-flow
    /// value `source → peer`, normalised by the largest such value so the
    /// result is comparable to the `[0, 1]` reputation scale (all-zero flows
    /// stay all-zero).
    pub fn reputation_from(&self, graph: &TrustGraph, source: usize) -> GlobalReputation {
        let n = graph.len();
        let mut values: Vec<f64> = (0..n)
            .map(|peer| {
                if peer == source {
                    0.0
                } else {
                    self.max_trust(graph, source, peer)
                }
            })
            .collect();
        let max = values.iter().copied().fold(0.0f64, f64::max);
        if max > 0.0 {
            values.iter_mut().for_each(|v| *v /= max);
        }
        // The source trusts itself fully.
        values[source] = 1.0;
        GlobalReputation {
            values,
            iterations: 1,
            converged: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_edge_flow_is_its_capacity() {
        let mut g = TrustGraph::new(3);
        g.set_trust(0, 1, 4.0);
        let f = MaxFlowTrust::new();
        assert!((f.max_trust(&g, 0, 1) - 4.0).abs() < 1e-12);
        assert_eq!(f.max_trust(&g, 1, 0), 0.0);
    }

    #[test]
    fn flow_is_limited_by_the_bottleneck() {
        // 0 → 1 → 2 with capacities 5 and 2: the path carries only 2.
        let mut g = TrustGraph::new(3);
        g.set_trust(0, 1, 5.0);
        g.set_trust(1, 2, 2.0);
        let f = MaxFlowTrust::new();
        assert!((f.max_trust(&g, 0, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Two disjoint paths 0→1→3 (cap 2) and 0→2→3 (cap 3).
        let mut g = TrustGraph::new(4);
        g.set_trust(0, 1, 2.0);
        g.set_trust(1, 3, 2.0);
        g.set_trust(0, 2, 3.0);
        g.set_trust(2, 3, 3.0);
        let f = MaxFlowTrust::new();
        assert!((f.max_trust(&g, 0, 3) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn classic_network_flow_example() {
        // A standard 6-node max-flow example with known answer 23.
        let mut g = TrustGraph::new(6);
        let edges = [
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ];
        for (u, v, c) in edges {
            g.set_trust(u, v, c);
        }
        let f = MaxFlowTrust::new();
        assert!((f.max_trust(&g, 0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn self_trust_is_one() {
        let g = TrustGraph::new(3);
        assert_eq!(MaxFlowTrust::new().max_trust(&g, 1, 1), 1.0);
    }

    #[test]
    fn collusion_clique_cannot_exceed_the_cut() {
        // Colluders 3 and 4 assign each other huge trust, but the only honest
        // edge into the clique has capacity 0.5 — from any honest peer's
        // point of view the clique's reputation is bounded by that cut.
        let mut g = TrustGraph::new(5);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    g.set_trust(i, j, 2.0);
                }
            }
        }
        g.set_trust(3, 4, 1_000.0);
        g.set_trust(4, 3, 1_000.0);
        g.set_trust(2, 3, 0.5);
        let f = MaxFlowTrust::new();
        assert!(f.max_trust(&g, 0, 3) <= 0.5 + 1e-12);
        assert!(f.max_trust(&g, 0, 4) <= 0.5 + 1e-12);
    }

    #[test]
    fn reputation_from_source_is_normalised() {
        let mut g = TrustGraph::new(4);
        g.set_trust(0, 1, 1.0);
        g.set_trust(0, 2, 4.0);
        g.set_trust(1, 3, 1.0);
        let rep = MaxFlowTrust::new().reputation_from(&g, 0);
        assert_eq!(rep.values[0], 1.0);
        assert!((rep.values[2] - 1.0).abs() < 1e-12);
        assert!(rep.values[1] <= 1.0 && rep.values[1] > 0.0);
        assert!(rep.values.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn disconnected_target_has_zero_trust() {
        let mut g = TrustGraph::new(3);
        g.set_trust(0, 1, 1.0);
        let f = MaxFlowTrust::new();
        assert_eq!(f.max_trust(&g, 0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_peer_panics() {
        let g = TrustGraph::new(2);
        let _ = MaxFlowTrust::new().max_trust(&g, 0, 5);
    }
}
