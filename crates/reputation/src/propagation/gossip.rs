//! Gossip-based reputation averaging.
//!
//! A lightweight, fully decentralized propagation baseline: every peer holds
//! an estimate vector of everyone's reputation (initialised from its own
//! local trust) and repeatedly averages it with a random neighbour's
//! estimate. After enough rounds all estimates converge to the global mean
//! of the initial local opinions — the classic push–pull gossip averaging
//! result. It is cheaper than EigenTrust and trivially decentralized, but it
//! has no damping, so it is the *least* collusion-resistant of the three
//! propagation substrates; the `abl2` bench quantifies that.

use super::{GlobalReputation, TrustGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gossip-averaging configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipAveraging {
    /// Number of gossip rounds; in each round every peer contacts one random
    /// partner and both replace their estimates by the pairwise average.
    pub rounds: usize,
    /// Convergence tolerance: if the maximum disagreement between any two
    /// peers' estimates drops below this, gossip stops early.
    pub tolerance: f64,
}

impl Default for GossipAveraging {
    fn default() -> Self {
        Self {
            rounds: 200,
            tolerance: 1e-9,
        }
    }
}

impl GossipAveraging {
    /// Creates a gossip-averaging instance with the given round budget.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds,
            ..Default::default()
        }
    }

    /// Runs gossip averaging over the local opinions encoded in the trust
    /// graph. Peer `i`'s initial opinion about peer `j` is its normalised
    /// local trust `c_ij`; the converged estimate approaches the column mean
    /// of the normalised trust matrix, i.e. "what the average peer thinks of
    /// `j`".
    pub fn compute<R: Rng + ?Sized>(&self, graph: &TrustGraph, rng: &mut R) -> GlobalReputation {
        let n = graph.len();
        // estimates[i] = peer i's current estimate vector of everyone.
        let mut estimates: Vec<Vec<f64>> = (0..n).map(|i| graph.normalized_row(i)).collect();
        if n == 1 {
            return GlobalReputation {
                values: vec![1.0],
                iterations: 0,
                converged: true,
            };
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..self.rounds {
            iterations += 1;
            order.shuffle(rng);
            for &i in &order {
                // Pick a random partner other than i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (head, tail) = estimates.split_at_mut(hi);
                for (a, b) in head[lo].iter_mut().zip(tail[0].iter_mut()) {
                    let avg = 0.5 * (*a + *b);
                    *a = avg;
                    *b = avg;
                }
            }
            if self.max_disagreement(&estimates) < self.tolerance {
                converged = true;
                break;
            }
        }
        // Aggregate: any peer's estimate works once converged; average them
        // for robustness mid-convergence.
        let mut values = vec![0.0; n];
        for est in &estimates {
            for (k, &v) in est.iter().enumerate() {
                values[k] += v / n as f64;
            }
        }
        let sum: f64 = values.iter().sum();
        if sum > 0.0 {
            values.iter_mut().for_each(|v| *v /= sum);
        }
        GlobalReputation {
            values,
            iterations,
            converged,
        }
    }

    fn max_disagreement(&self, estimates: &[Vec<f64>]) -> f64 {
        let n = estimates.len();
        let mut max = 0.0f64;
        for k in 0..n {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for est in estimates {
                lo = lo.min(est[k]);
                hi = hi.max(est[k]);
            }
            max = max.max(hi - lo);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn single_peer_graph_is_trivial() {
        let g = TrustGraph::new(1);
        let rep = GossipAveraging::default().compute(&g, &mut rng());
        assert_eq!(rep.values, vec![1.0]);
        assert!(rep.converged);
    }

    #[test]
    fn values_form_a_probability_distribution() {
        let mut g = TrustGraph::new(5);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    g.set_trust(i, j, (i + 2 * j + 1) as f64);
                }
            }
        }
        let rep = GossipAveraging::default().compute(&g, &mut rng());
        assert!((rep.values.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(rep.values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn universally_trusted_peer_ranks_first() {
        let mut g = TrustGraph::new(6);
        for i in 1..6 {
            g.set_trust(i, 0, 10.0);
            for j in 1..6 {
                if i != j {
                    g.set_trust(i, j, 1.0);
                }
            }
        }
        let rep = GossipAveraging::default().compute(&g, &mut rng());
        assert_eq!(rep.top_peer(), 0);
    }

    #[test]
    fn gossip_converges_to_column_mean() {
        // With full convergence the estimate of peer k is the mean of column
        // k of the normalised trust matrix.
        let mut g = TrustGraph::new(4);
        g.set_trust(0, 1, 1.0);
        g.set_trust(1, 2, 1.0);
        g.set_trust(2, 3, 1.0);
        g.set_trust(3, 0, 1.0);
        let rep = GossipAveraging::new(500).compute(&g, &mut rng());
        assert!(rep.converged);
        // Symmetric ring: everyone ends up equal.
        for &v in &rep.values {
            assert!((v - 0.25).abs() < 1e-6, "value {v}");
        }
    }

    #[test]
    fn zero_round_budget_reports_not_converged() {
        let mut g = TrustGraph::new(3);
        g.set_trust(0, 1, 1.0);
        g.set_trust(1, 2, 1.0);
        let rep = GossipAveraging::new(0).compute(&g, &mut rng());
        assert_eq!(rep.iterations, 0);
        assert!(!rep.converged);
        // Still returns a usable, normalised vector.
        assert!((rep.values.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut g = TrustGraph::new(5);
        g.set_trust(0, 1, 3.0);
        g.set_trust(2, 1, 3.0);
        g.set_trust(3, 4, 1.0);
        let a = GossipAveraging::new(50).compute(&g, &mut StdRng::seed_from_u64(7));
        let b = GossipAveraging::new(50).compute(&g, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.values, b.values);
    }
}
