//! Contribution-value accounting (Section III-B of the paper).
//!
//! Two contribution values are tracked per peer:
//!
//! * `C_S(a, b) = α_S · S_articles + β_S · S_bandwidth − d_S` for sharing,
//!   where `S_articles` are the actually shared articles, `S_bandwidth` the
//!   actually shared bandwidth, and `d_S` a decay term that lowers the
//!   contribution of inactive peers,
//! * `C_E(v, e) = α_E · S_votes + β_E · S_edits − d_E` for editing/voting,
//!   where only *successful* votes (cast with the majority) and *accepted*
//!   edits count.
//!
//! The decay is applied per time step of inactivity in the respective
//! resource class; contribution values never drop below zero (the paper
//! defines `C ≥ 0`).

use serde::{Deserialize, Serialize};

/// Weights and decay constants of the two contribution values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContributionParams {
    /// `α_S`: weight of shared articles.
    pub alpha_s: f64,
    /// `β_S`: weight of shared bandwidth.
    pub beta_s: f64,
    /// `d_S`: per-step decay of the sharing contribution while inactive.
    pub decay_s: f64,
    /// `α_E`: weight of successful votes.
    pub alpha_e: f64,
    /// `β_E`: weight of accepted edits.
    pub beta_e: f64,
    /// `d_E`: per-step decay of the editing contribution while inactive.
    pub decay_e: f64,
}

impl Default for ContributionParams {
    fn default() -> Self {
        // The paper gives the example "α_S = 1 and β_S = 2 means that
        // sharing bandwidth is twice as valuable as offering articles"; we
        // keep both classes symmetric by default and use a small decay so
        // idle peers slowly lose reputation.
        Self {
            alpha_s: 1.0,
            beta_s: 2.0,
            decay_s: 0.05,
            alpha_e: 1.0,
            beta_e: 2.0,
            decay_e: 0.05,
        }
    }
}

impl ContributionParams {
    /// Validates that all weights are positive and decays non-negative,
    /// naming the offending field in the error message.
    pub fn check(&self) -> Result<(), String> {
        for (name, value) in [
            ("alpha_s", self.alpha_s),
            ("beta_s", self.beta_s),
            ("alpha_e", self.alpha_e),
            ("beta_e", self.beta_e),
        ] {
            if value <= 0.0 {
                return Err(format!("{name} must be positive"));
            }
        }
        for (name, value) in [("decay_s", self.decay_s), ("decay_e", self.decay_e)] {
            if value < 0.0 {
                return Err(format!("{name} must be non-negative"));
            }
        }
        Ok(())
    }

    /// Panicking shim around [`ContributionParams::check`].
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }
}

/// One time step's worth of sharing activity for a peer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SharingAction {
    /// Number of articles the peer offers for download this step.
    pub shared_articles: f64,
    /// Fraction of upload bandwidth the peer shares this step (0..=1 in the
    /// normalised model, but any non-negative amount is accepted).
    pub shared_bandwidth: f64,
}

impl SharingAction {
    /// Whether the peer shared anything at all this step.
    pub fn is_active(&self) -> bool {
        self.shared_articles > 0.0 || self.shared_bandwidth > 0.0
    }
}

/// One time step's worth of editing/voting outcomes for a peer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EditingAction {
    /// Number of votes cast with the eventual majority this step.
    pub successful_votes: u32,
    /// Number of edits accepted by a majority vote this step.
    pub accepted_edits: u32,
    /// Whether the peer attempted any edit or vote this step (successful or
    /// not) — attempts keep the decay from applying even when they fail.
    pub attempted: bool,
}

impl EditingAction {
    /// Whether the peer did anything in the editing/voting class this step.
    pub fn is_active(&self) -> bool {
        self.attempted || self.successful_votes > 0 || self.accepted_edits > 0
    }
}

/// One peer's contribution updates for a single time step, produced by a
/// *collect* stage and applied to a ledger later.
///
/// The two-stage collect-then-apply model lets simulation phases accumulate
/// deltas from parallel workers (bucketed per ledger shard) and apply them
/// afterwards in a deterministic order: because contribution accounting is
/// per-peer independent, applying a batch of deltas shard-by-shard is
/// bit-identical to recording them inline, regardless of how many workers
/// collected or applied them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContributionDelta {
    /// Dense index of the peer the delta belongs to.
    pub peer: usize,
    /// Sharing activity to record, if the step touched the sharing class.
    pub sharing: Option<SharingAction>,
    /// Editing/voting outcomes to record, if the step touched that class.
    pub editing: Option<EditingAction>,
}

impl ContributionDelta {
    /// A delta recording one step of sharing activity.
    pub fn sharing(peer: usize, action: SharingAction) -> Self {
        Self {
            peer,
            sharing: Some(action),
            editing: None,
        }
    }

    /// A delta recording one step of editing/voting outcomes.
    pub fn editing(peer: usize, action: EditingAction) -> Self {
        Self {
            peer,
            sharing: None,
            editing: Some(action),
        }
    }
}

/// Running contribution values for a single peer.
///
/// The sharing contribution is a *level*: it equals the weighted amount the
/// peer currently shares and decays only while the peer is inactive. The
/// editing contribution is cumulative (successful votes and accepted edits
/// are events, not a holding), also decaying while inactive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContributionTracker {
    params: ContributionParams,
    sharing: f64,
    editing: f64,
    /// Cumulative raw counters, useful for metrics and tests.
    total_articles: f64,
    total_bandwidth: f64,
    total_votes: u64,
    total_edits: u64,
}

impl ContributionTracker {
    /// Creates a tracker with zero contribution.
    pub fn new(params: ContributionParams) -> Self {
        params.validate();
        Self {
            params,
            sharing: 0.0,
            editing: 0.0,
            total_articles: 0.0,
            total_bandwidth: 0.0,
            total_votes: 0,
            total_edits: 0,
        }
    }

    /// Current sharing contribution `C_S`.
    pub fn sharing(&self) -> f64 {
        self.sharing
    }

    /// Current editing/voting contribution `C_E`.
    pub fn editing(&self) -> f64 {
        self.editing
    }

    /// Cumulative number of articles ever shared (step-weighted).
    pub fn total_articles(&self) -> f64 {
        self.total_articles
    }

    /// Cumulative bandwidth ever shared (step-weighted).
    pub fn total_bandwidth(&self) -> f64 {
        self.total_bandwidth
    }

    /// Cumulative successful votes.
    pub fn total_votes(&self) -> u64 {
        self.total_votes
    }

    /// Cumulative accepted edits.
    pub fn total_edits(&self) -> u64 {
        self.total_edits
    }

    /// The parameters in use.
    pub fn params(&self) -> &ContributionParams {
        &self.params
    }

    /// Records one time step of sharing activity.
    ///
    /// The paper defines `C_S` as a function of the *actually shared*
    /// articles and bandwidth, so an active step sets the contribution to
    /// the weighted level `α_S · S_articles + β_S · S_bandwidth`; an
    /// inactive step (nothing shared) decays the previous level by `d_S`,
    /// never below zero.
    pub fn record_sharing(&mut self, action: &SharingAction) {
        debug_assert!(action.shared_articles >= 0.0 && action.shared_bandwidth >= 0.0);
        if action.is_active() {
            self.sharing = self.params.alpha_s * action.shared_articles
                + self.params.beta_s * action.shared_bandwidth;
            self.total_articles += action.shared_articles;
            self.total_bandwidth += action.shared_bandwidth;
        } else {
            self.sharing = (self.sharing - self.params.decay_s).max(0.0);
        }
    }

    /// Records one time step of editing/voting outcomes. Inactive steps
    /// decay the editing contribution by `d_E`.
    pub fn record_editing(&mut self, action: &EditingAction) {
        if action.is_active() {
            self.editing += self.params.alpha_e * f64::from(action.successful_votes)
                + self.params.beta_e * f64::from(action.accepted_edits);
            self.total_votes += u64::from(action.successful_votes);
            self.total_edits += u64::from(action.accepted_edits);
        } else {
            self.editing = (self.editing - self.params.decay_e).max(0.0);
        }
    }

    /// Overwrites every running value with checkpointed state. The
    /// parameters are construction-time configuration and stay as-is.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_values(
        &mut self,
        sharing: f64,
        editing: f64,
        total_articles: f64,
        total_bandwidth: f64,
        total_votes: u64,
        total_edits: u64,
    ) {
        self.sharing = sharing;
        self.editing = editing;
        self.total_articles = total_articles;
        self.total_bandwidth = total_bandwidth;
        self.total_votes = total_votes;
        self.total_edits = total_edits;
    }

    /// Resets both contribution values to zero (used by the punishment
    /// policy and by the phase switch of the simulation, which "resets the
    /// reputation values but the agents keep their Q-Matrices").
    pub fn reset(&mut self) {
        self.sharing = 0.0;
        self.editing = 0.0;
    }

    /// Resets only the sharing contribution (malicious-editor punishment
    /// sets `R_S = R_S^min`, i.e. `C_S = 0`).
    pub fn reset_sharing(&mut self) {
        self.sharing = 0.0;
    }

    /// Scales the sharing contribution by `factor` (the uptime discount
    /// applied when a peer rejoins after an absence: the logistic
    /// reputation function is monotone in `C_S`, so scaling the
    /// contribution decays the reputation towards `R_min` without ever
    /// crossing it). Factors ≥ 1 are clamped to a no-op — the discount
    /// only ever shrinks a record.
    pub fn scale_sharing(&mut self, factor: f64) {
        if factor < 1.0 {
            self.sharing = (self.sharing * factor).max(0.0);
        }
    }

    /// Resets only the editing contribution.
    pub fn reset_editing(&mut self) {
        self.editing = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ContributionTracker {
        ContributionTracker::new(ContributionParams::default())
    }

    #[test]
    fn sharing_contribution_is_weighted_sum() {
        let mut t = tracker();
        t.record_sharing(&SharingAction {
            shared_articles: 50.0,
            shared_bandwidth: 0.5,
        });
        // alpha_s=1, beta_s=2.
        assert!((t.sharing() - (50.0 + 1.0)).abs() < 1e-12);
        assert_eq!(t.editing(), 0.0);
    }

    #[test]
    fn editing_contribution_is_weighted_sum() {
        let mut t = tracker();
        t.record_editing(&EditingAction {
            successful_votes: 3,
            accepted_edits: 2,
            attempted: true,
        });
        // alpha_e=1, beta_e=2.
        assert!((t.editing() - (3.0 + 4.0)).abs() < 1e-12);
        assert_eq!(t.total_votes(), 3);
        assert_eq!(t.total_edits(), 2);
    }

    #[test]
    fn inactivity_decays_but_never_negative() {
        let mut t = tracker();
        t.record_sharing(&SharingAction {
            shared_articles: 0.0,
            shared_bandwidth: 0.08,
        });
        let after_share = t.sharing();
        assert!((after_share - 0.16).abs() < 1e-12);
        // Several inactive steps: decay 0.05 each, floored at zero.
        for _ in 0..10 {
            t.record_sharing(&SharingAction::default());
        }
        assert_eq!(t.sharing(), 0.0);
    }

    #[test]
    fn failed_attempts_do_not_increase_but_prevent_decay() {
        let mut t = tracker();
        t.record_editing(&EditingAction {
            successful_votes: 1,
            accepted_edits: 0,
            attempted: true,
        });
        let before = t.editing();
        // An unsuccessful attempt: active, but adds nothing.
        t.record_editing(&EditingAction {
            successful_votes: 0,
            accepted_edits: 0,
            attempted: true,
        });
        assert_eq!(t.editing(), before);
        // A fully inactive step decays.
        t.record_editing(&EditingAction::default());
        assert!(t.editing() < before);
    }

    #[test]
    fn cumulative_totals_track_all_activity() {
        let mut t = tracker();
        for _ in 0..4 {
            t.record_sharing(&SharingAction {
                shared_articles: 100.0,
                shared_bandwidth: 1.0,
            });
        }
        assert_eq!(t.total_articles(), 400.0);
        assert_eq!(t.total_bandwidth(), 4.0);
    }

    #[test]
    fn reset_clears_contributions_but_not_totals() {
        let mut t = tracker();
        t.record_sharing(&SharingAction {
            shared_articles: 10.0,
            shared_bandwidth: 1.0,
        });
        t.record_editing(&EditingAction {
            successful_votes: 1,
            accepted_edits: 1,
            attempted: true,
        });
        t.reset();
        assert_eq!(t.sharing(), 0.0);
        assert_eq!(t.editing(), 0.0);
        assert_eq!(t.total_articles(), 10.0);
        assert_eq!(t.total_edits(), 1);
    }

    #[test]
    fn partial_resets_target_one_class() {
        let mut t = tracker();
        t.record_sharing(&SharingAction {
            shared_articles: 10.0,
            shared_bandwidth: 0.0,
        });
        t.record_editing(&EditingAction {
            successful_votes: 2,
            accepted_edits: 0,
            attempted: true,
        });
        t.reset_sharing();
        assert_eq!(t.sharing(), 0.0);
        assert!(t.editing() > 0.0);
        t.reset_editing();
        assert_eq!(t.editing(), 0.0);
    }

    #[test]
    fn bandwidth_weight_doubles_article_weight_by_default() {
        let params = ContributionParams::default();
        assert_eq!(params.beta_s, 2.0 * params.alpha_s);
    }

    #[test]
    #[should_panic(expected = "alpha_s")]
    fn invalid_params_panic() {
        let params = ContributionParams {
            alpha_s: 0.0,
            ..Default::default()
        };
        let _ = ContributionTracker::new(params);
    }
}
