//! The sharded reputation ledger: peer-id-range shards updated by parallel
//! workers.
//!
//! The dense [`ReputationLedger`](crate::ledger::ReputationLedger) keeps the
//! whole population behind a single `&mut`, which serializes the hot
//! per-step contribution updates of the sharing and edit-vote phases. The
//! [`ShardedLedger`] splits the population into contiguous peer-id ranges
//! ([`LedgerShard`]s) that are independently lockable units of parallelism:
//! during a parallel apply each shard is exclusively owned by one scoped
//! worker thread, so no two workers ever touch the same peer record.
//!
//! The update protocol is *collect-then-apply*:
//!
//! 1. **Collect** — workers accumulate
//!    [`ContributionDelta`]s into a [`DeltaBatch`], which buckets them per
//!    shard. Buckets preserve push order, and parallel collectors fill
//!    shard-aligned buckets, so the merged batch is deterministic (shard
//!    order × in-shard push order) no matter how many workers collected.
//! 2. **Apply** — [`ShardedLedger::apply`] walks the shards in order;
//!    [`ShardedLedger::apply_parallel`] hands disjoint groups of shards to
//!    scoped threads. Because contribution accounting is per-peer
//!    independent, both paths produce bit-identical floating-point state.
//!
//! Read-side parallelism goes through the [`LedgerView`] facade: a `Sync`
//! handle exposing the read-only half of the API to concurrent readers —
//! parallel aggregations (e.g. the reputation summaries of the
//! `scale_population` bench), instrumentation, and any future collect
//! stage that needs reputation reads — without handing them the ability
//! to mutate records. The current sharing/edit-vote collect stages read
//! only actions and the article store, so they do not take a view.

use crate::contribution::{
    ContributionDelta, ContributionParams, ContributionTracker, EditingAction, SharingAction,
};
use crate::function::{LogisticReputation, ReputationFunction};
use crate::ledger::{PeerRecord, PeerReputation, ReputationStore};
use std::ops::Range;
use std::sync::Arc;

/// Default target number of peers per shard used by the automatic shard
/// count ([`ShardedLedger::recommended_shards`]).
pub const TARGET_PEERS_PER_SHARD: usize = 4096;

/// Upper bound on the automatically chosen shard count.
pub const MAX_AUTO_SHARDS: usize = 64;

/// One contiguous peer-id range of a [`ShardedLedger`].
///
/// A shard is the unit of exclusive ownership during a parallel apply: a
/// worker holding `&mut LedgerShard` can update its peers without any
/// coordination with the workers owning the other shards.
#[derive(Debug, Clone)]
pub struct LedgerShard {
    start: usize,
    records: Vec<PeerRecord>,
}

impl LedgerShard {
    fn new(start: usize, len: usize, params: ContributionParams) -> Self {
        Self {
            start,
            records: (0..len).map(|_| PeerRecord::new(params)).collect(),
        }
    }

    /// The dense peer-id range this shard covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.records.len()
    }

    /// Number of peers in the shard.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the shard covers no peers (only possible for trailing shards
    /// of ledgers whose population is not a multiple of the shard size).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn record(&self, peer: usize) -> &PeerRecord {
        &self.records[peer - self.start]
    }

    fn record_mut(&mut self, peer: usize) -> &mut PeerRecord {
        &mut self.records[peer - self.start]
    }

    /// Applies a bucket of deltas to this shard, in bucket order.
    ///
    /// # Panics
    ///
    /// Panics if a delta's peer lies outside the shard's range.
    pub fn apply(&mut self, deltas: &[ContributionDelta]) {
        for delta in deltas {
            let record = self.record_mut(delta.peer);
            if let Some(sharing) = &delta.sharing {
                record.contributions.record_sharing(sharing);
            }
            if let Some(editing) = &delta.editing {
                record.contributions.record_editing(editing);
            }
        }
    }
}

/// A batch of [`ContributionDelta`]s bucketed by ledger shard.
///
/// Create one sized to a ledger with [`DeltaBatch::for_ledger`], reuse it
/// across steps with [`DeltaBatch::clear`] (bucket capacity is retained, so
/// steady-state steps allocate nothing), and hand shard-aligned bucket
/// slices to parallel collectors via [`DeltaBatch::buckets_mut`].
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    peers: usize,
    shard_size: usize,
    buckets: Vec<Vec<ContributionDelta>>,
}

impl DeltaBatch {
    /// An empty batch with the geometry of `ledger`.
    pub fn for_ledger(ledger: &ShardedLedger) -> Self {
        Self {
            peers: ledger.len(),
            shard_size: ledger.shard_size(),
            buckets: vec![Vec::new(); ledger.shard_count()],
        }
    }

    /// Whether the batch's geometry matches `ledger` — including the
    /// population, so two ledgers with equal shard geometry but different
    /// peer counts are still told apart (the apply asserts rely on this
    /// to fail with a clear message instead of a slice index panic).
    pub fn matches(&self, ledger: &ShardedLedger) -> bool {
        self.peers == ledger.len()
            && self.shard_size == ledger.shard_size()
            && self.buckets.len() == ledger.shard_count()
    }

    /// Re-sizes the batch to `ledger`'s geometry if it differs, clearing
    /// any buffered deltas in that case.
    pub fn ensure(&mut self, ledger: &ShardedLedger) {
        if !self.matches(ledger) {
            self.peers = ledger.len();
            self.shard_size = ledger.shard_size();
            self.buckets = vec![Vec::new(); ledger.shard_count()];
        }
    }

    /// Empties every bucket while keeping its capacity.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Buckets a delta by the shard its peer belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the peer lies outside the ledger the batch was sized for.
    pub fn push(&mut self, delta: ContributionDelta) {
        let shard = delta.peer / self.shard_size;
        self.buckets[shard].push(delta);
    }

    /// Total number of buffered deltas.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether no deltas are buffered.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Number of shard buckets.
    pub fn shard_count(&self) -> usize {
        self.buckets.len()
    }

    /// Peers per shard (the bucketing key).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The per-shard buckets, in shard order.
    pub fn buckets(&self) -> &[Vec<ContributionDelta>] {
        &self.buckets
    }

    /// Mutable access to the per-shard buckets, for shard-aligned parallel
    /// collectors (split with `chunks_mut` and hand each worker the buckets
    /// of the shards it owns).
    pub fn buckets_mut(&mut self) -> &mut [Vec<ContributionDelta>] {
        &mut self.buckets
    }
}

/// One peer's complete mutable ledger state — contribution values, raw
/// cumulative counters, rights and punishment counters — exported verbatim
/// for checkpointing. The reputation functions and contribution parameters
/// are construction-time configuration and are not part of the state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeerLedgerState {
    /// Current sharing contribution `C_S`.
    pub sharing: f64,
    /// Current editing/voting contribution `C_E`.
    pub editing: f64,
    /// Cumulative articles ever shared.
    pub total_articles: f64,
    /// Cumulative bandwidth ever shared.
    pub total_bandwidth: f64,
    /// Cumulative successful votes.
    pub total_votes: u64,
    /// Cumulative accepted edits.
    pub total_edits: u64,
    /// Whether the peer holds editing rights.
    pub can_edit: bool,
    /// Whether the peer holds voting rights.
    pub can_vote: bool,
    /// Accumulated unsuccessful votes.
    pub unsuccessful_votes: u32,
    /// Accumulated declined edits.
    pub declined_edits: u32,
}

/// The reputation ledger for a whole population, sharded by peer-id range.
///
/// Drop-in replacement for the dense
/// [`ReputationLedger`](crate::ledger::ReputationLedger) (both implement
/// [`ReputationStore`]) whose records live in independently lockable
/// [`LedgerShard`]s, unlocking intra-step parallel contribution updates via
/// [`ShardedLedger::apply_parallel`]. All single-peer accessors behave
/// exactly like the dense ledger's.
#[derive(Clone)]
pub struct ShardedLedger {
    sharing_fn: Arc<dyn ReputationFunction>,
    editing_fn: Arc<dyn ReputationFunction>,
    shards: Vec<LedgerShard>,
    shard_size: usize,
    peers: usize,
}

impl std::fmt::Debug for ShardedLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLedger")
            .field("peers", &self.peers)
            .field("shards", &self.shards.len())
            .field("shard_size", &self.shard_size)
            .field("sharing_fn", &self.sharing_fn.name())
            .field("editing_fn", &self.editing_fn.name())
            .finish()
    }
}

impl ShardedLedger {
    /// Creates a sharded ledger for `peers` peers using the paper's
    /// logistic reputation function and an automatic shard count.
    pub fn with_paper_defaults(peers: usize) -> Self {
        Self::new(
            peers,
            ContributionParams::default(),
            Arc::new(LogisticReputation::paper(0.2)),
            Arc::new(LogisticReputation::paper(0.2)),
            0,
        )
    }

    /// Creates a sharded ledger.
    ///
    /// `shards` is the shard count; `0` selects
    /// [`ShardedLedger::recommended_shards`] for the population. A shard
    /// count larger than the population is clamped to one peer per shard.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is zero.
    pub fn new(
        peers: usize,
        params: ContributionParams,
        sharing_fn: Arc<dyn ReputationFunction>,
        editing_fn: Arc<dyn ReputationFunction>,
        shards: usize,
    ) -> Self {
        assert!(peers > 0, "ledger needs at least one peer");
        let shard_count = match shards {
            0 => Self::recommended_shards(peers),
            n => n.min(peers),
        };
        let shard_size = peers.div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|s| {
                let start = s * shard_size;
                let len = shard_size.min(peers.saturating_sub(start));
                LedgerShard::new(start, len, params)
            })
            .collect();
        Self {
            sharing_fn,
            editing_fn,
            shards,
            shard_size,
            peers,
        }
    }

    /// The automatic shard count for a population: one shard for small
    /// populations, then one per [`TARGET_PEERS_PER_SHARD`] peers rounded
    /// up to a power of two, capped at [`MAX_AUTO_SHARDS`].
    pub fn recommended_shards(peers: usize) -> usize {
        if peers <= TARGET_PEERS_PER_SHARD {
            1
        } else {
            peers
                .div_ceil(TARGET_PEERS_PER_SHARD)
                .next_power_of_two()
                .min(MAX_AUTO_SHARDS)
        }
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.peers
    }

    /// Always false; the constructor rejects empty ledgers.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Peers per shard (the last shard may be smaller).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The shard index a peer belongs to.
    pub fn shard_of(&self, peer: usize) -> usize {
        peer / self.shard_size
    }

    /// Read access to a shard.
    pub fn shard(&self, index: usize) -> &LedgerShard {
        &self.shards[index]
    }

    /// A `Sync` read facade over the whole ledger for parallel collectors.
    pub fn view(&self) -> LedgerView<'_> {
        LedgerView { ledger: self }
    }

    fn record(&self, peer: usize) -> &PeerRecord {
        self.shards[peer / self.shard_size].record(peer)
    }

    fn record_mut(&mut self, peer: usize) -> &mut PeerRecord {
        self.shards[peer / self.shard_size].record_mut(peer)
    }

    /// The minimum sharing reputation `R_S^min` (newcomer value).
    pub fn min_sharing_reputation(&self) -> f64 {
        self.sharing_fn.minimum()
    }

    /// The minimum editing reputation `R_E^min` (newcomer value).
    pub fn min_editing_reputation(&self) -> f64 {
        self.editing_fn.minimum()
    }

    /// Sharing reputation `R_S` of a peer.
    pub fn sharing_reputation(&self, peer: usize) -> f64 {
        self.sharing_fn
            .reputation_clamped(self.record(peer).contributions.sharing())
    }

    /// Editing/voting reputation `R_E` of a peer.
    pub fn editing_reputation(&self, peer: usize) -> f64 {
        self.editing_fn
            .reputation_clamped(self.record(peer).contributions.editing())
    }

    /// Full snapshot of a peer's reputation state.
    pub fn peer(&self, peer: usize) -> PeerReputation {
        let record = self.record(peer);
        PeerReputation {
            sharing: self.sharing_reputation(peer),
            editing: self.editing_reputation(peer),
            can_edit: record.can_edit,
            can_vote: record.can_vote,
        }
    }

    /// Read access to a peer's contribution tracker.
    pub fn contributions(&self, peer: usize) -> &ContributionTracker {
        &self.record(peer).contributions
    }

    /// Records one time step of sharing activity for a peer.
    pub fn record_sharing(&mut self, peer: usize, action: &SharingAction) {
        self.record_mut(peer).contributions.record_sharing(action);
    }

    /// Records one time step of editing/voting outcomes for a peer.
    pub fn record_editing(&mut self, peer: usize, action: &EditingAction) {
        self.record_mut(peer).contributions.record_editing(action);
    }

    /// Scales a peer's sharing contribution by `factor` (see
    /// [`ContributionTracker::scale_sharing`]) — the uptime-discount hook
    /// applied at churn re-entry.
    pub fn scale_sharing_contribution(&mut self, peer: usize, factor: f64) {
        self.record_mut(peer).contributions.scale_sharing(factor);
    }

    /// Applies a batch of deltas shard-by-shard, in shard order.
    ///
    /// # Panics
    ///
    /// Panics if the batch geometry does not match this ledger.
    pub fn apply(&mut self, batch: &DeltaBatch) {
        assert!(batch.matches(self), "delta batch sized for another ledger");
        for (shard, bucket) in self.shards.iter_mut().zip(batch.buckets()) {
            shard.apply(bucket);
        }
    }

    /// Applies a batch of deltas with up to `threads` scoped worker
    /// threads, each exclusively owning a contiguous group of shards.
    ///
    /// Bit-identical to [`ShardedLedger::apply`] for any thread count:
    /// buckets are disjoint per shard and applied in bucket order.
    ///
    /// # Panics
    ///
    /// Panics if the batch geometry does not match this ledger.
    pub fn apply_parallel(&mut self, batch: &DeltaBatch, threads: usize) {
        assert!(batch.matches(self), "delta batch sized for another ledger");
        let threads = threads.clamp(1, self.shards.len());
        if threads <= 1 {
            return self.apply(batch);
        }
        let per_worker = self.shards.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let shard_groups = self.shards.chunks_mut(per_worker);
            let bucket_groups = batch.buckets().chunks(per_worker);
            for (shards, buckets) in shard_groups.zip(bucket_groups) {
                scope.spawn(move || {
                    for (shard, bucket) in shards.iter_mut().zip(buckets) {
                        shard.apply(bucket);
                    }
                });
            }
        });
    }

    /// Records an unsuccessful (against-majority) vote; returns the total.
    pub fn record_unsuccessful_vote(&mut self, peer: usize) -> u32 {
        let record = self.record_mut(peer);
        record.unsuccessful_votes += 1;
        record.unsuccessful_votes
    }

    /// Records a declined edit and returns the new total.
    pub fn record_declined_edit(&mut self, peer: usize) -> u32 {
        let record = self.record_mut(peer);
        record.declined_edits += 1;
        record.declined_edits
    }

    /// Number of unsuccessful votes a peer has accumulated.
    pub fn unsuccessful_votes(&self, peer: usize) -> u32 {
        self.record(peer).unsuccessful_votes
    }

    /// Number of declined edits a peer has accumulated.
    pub fn declined_edits(&self, peer: usize) -> u32 {
        self.record(peer).declined_edits
    }

    /// Whether the peer currently holds voting rights.
    pub fn can_vote(&self, peer: usize) -> bool {
        self.record(peer).can_vote
    }

    /// Whether the peer currently holds editing rights.
    pub fn can_edit(&self, peer: usize) -> bool {
        self.record(peer).can_edit
    }

    /// Revokes a peer's voting rights (malicious-voter punishment).
    pub fn revoke_voting_rights(&mut self, peer: usize) {
        self.record_mut(peer).can_vote = false;
    }

    /// Restores voting rights and clears the unsuccessful-vote counter.
    pub fn restore_voting_rights(&mut self, peer: usize) {
        let record = self.record_mut(peer);
        record.can_vote = true;
        record.unsuccessful_votes = 0;
    }

    /// Revokes editing rights and resets both reputations to the minimum
    /// (the malicious-editor punishment of Section III-C3).
    pub fn punish_malicious_editor(&mut self, peer: usize) {
        let record = self.record_mut(peer);
        record.can_edit = false;
        record.contributions.reset();
        record.declined_edits = 0;
    }

    /// Restores a peer's editing rights.
    pub fn restore_editing_rights(&mut self, peer: usize) {
        self.record_mut(peer).can_edit = true;
    }

    /// Resets one peer to the newcomer state: contributions zeroed,
    /// punishment counters cleared, voting and editing rights restored.
    /// This is what *whitewashing* looks like from the ledger's point of
    /// view — the old identity's record is replaced by a fresh one, so the
    /// peer re-enters at `R_min` with a clean slate.
    pub fn reset_peer_identity(&mut self, peer: usize) {
        let record = self.record_mut(peer);
        record.contributions.reset();
        record.unsuccessful_votes = 0;
        record.declined_edits = 0;
        record.can_vote = true;
        record.can_edit = true;
    }

    /// Resets every peer's contribution values while keeping rights (the
    /// phase switch of the simulation model).
    pub fn reset_all_contributions(&mut self) {
        for shard in &mut self.shards {
            for record in &mut shard.records {
                record.contributions.reset();
                record.unsuccessful_votes = 0;
                record.declined_edits = 0;
            }
        }
    }

    /// Exports one peer's complete mutable state for checkpointing.
    pub fn export_peer_state(&self, peer: usize) -> PeerLedgerState {
        let record = self.record(peer);
        let contributions = &record.contributions;
        PeerLedgerState {
            sharing: contributions.sharing(),
            editing: contributions.editing(),
            total_articles: contributions.total_articles(),
            total_bandwidth: contributions.total_bandwidth(),
            total_votes: contributions.total_votes(),
            total_edits: contributions.total_edits(),
            can_edit: record.can_edit,
            can_vote: record.can_vote,
            unsuccessful_votes: record.unsuccessful_votes,
            declined_edits: record.declined_edits,
        }
    }

    /// Overwrites one peer's mutable state with checkpointed values,
    /// verbatim (the exact inverse of [`ShardedLedger::export_peer_state`]).
    pub fn restore_peer_state(&mut self, peer: usize, state: &PeerLedgerState) {
        let record = self.record_mut(peer);
        record.contributions.restore_values(
            state.sharing,
            state.editing,
            state.total_articles,
            state.total_bandwidth,
            state.total_votes,
            state.total_edits,
        );
        record.can_edit = state.can_edit;
        record.can_vote = state.can_vote;
        record.unsuccessful_votes = state.unsuccessful_votes;
        record.declined_edits = state.declined_edits;
    }

    /// Vector of all sharing reputations, index-aligned with peers.
    pub fn all_sharing_reputations(&self) -> Vec<f64> {
        (0..self.peers)
            .map(|p| self.sharing_reputation(p))
            .collect()
    }

    /// Vector of all editing reputations, index-aligned with peers.
    pub fn all_editing_reputations(&self) -> Vec<f64> {
        (0..self.peers)
            .map(|p| self.editing_reputation(p))
            .collect()
    }
}

impl ReputationStore for ShardedLedger {
    fn len(&self) -> usize {
        ShardedLedger::len(self)
    }
    fn is_empty(&self) -> bool {
        ShardedLedger::is_empty(self)
    }
    fn min_sharing_reputation(&self) -> f64 {
        ShardedLedger::min_sharing_reputation(self)
    }
    fn min_editing_reputation(&self) -> f64 {
        ShardedLedger::min_editing_reputation(self)
    }
    fn sharing_reputation(&self, peer: usize) -> f64 {
        ShardedLedger::sharing_reputation(self, peer)
    }
    fn editing_reputation(&self, peer: usize) -> f64 {
        ShardedLedger::editing_reputation(self, peer)
    }
    fn peer(&self, peer: usize) -> PeerReputation {
        ShardedLedger::peer(self, peer)
    }
    fn record_sharing(&mut self, peer: usize, action: &SharingAction) {
        ShardedLedger::record_sharing(self, peer, action);
    }
    fn record_editing(&mut self, peer: usize, action: &EditingAction) {
        ShardedLedger::record_editing(self, peer, action);
    }
    fn record_unsuccessful_vote(&mut self, peer: usize) -> u32 {
        ShardedLedger::record_unsuccessful_vote(self, peer)
    }
    fn record_declined_edit(&mut self, peer: usize) -> u32 {
        ShardedLedger::record_declined_edit(self, peer)
    }
    fn unsuccessful_votes(&self, peer: usize) -> u32 {
        ShardedLedger::unsuccessful_votes(self, peer)
    }
    fn declined_edits(&self, peer: usize) -> u32 {
        ShardedLedger::declined_edits(self, peer)
    }
    fn can_vote(&self, peer: usize) -> bool {
        ShardedLedger::can_vote(self, peer)
    }
    fn can_edit(&self, peer: usize) -> bool {
        ShardedLedger::can_edit(self, peer)
    }
    fn revoke_voting_rights(&mut self, peer: usize) {
        ShardedLedger::revoke_voting_rights(self, peer);
    }
    fn restore_voting_rights(&mut self, peer: usize) {
        ShardedLedger::restore_voting_rights(self, peer);
    }
    fn punish_malicious_editor(&mut self, peer: usize) {
        ShardedLedger::punish_malicious_editor(self, peer);
    }
    fn restore_editing_rights(&mut self, peer: usize) {
        ShardedLedger::restore_editing_rights(self, peer);
    }
    fn reset_all_contributions(&mut self) {
        ShardedLedger::reset_all_contributions(self);
    }
}

/// A `Sync` read-only facade over a [`ShardedLedger`].
///
/// Concurrent readers (parallel aggregations, instrumentation, collect
/// stages that need reputation values) share copies of this view: every
/// reputation read is available, no mutation is. The view borrows the
/// ledger, so the borrow checker guarantees no apply can run concurrently.
#[derive(Debug, Clone, Copy)]
pub struct LedgerView<'a> {
    ledger: &'a ShardedLedger,
}

impl LedgerView<'_> {
    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.ledger.len()
    }

    /// Always false; ledgers are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sharing reputation `R_S` of a peer.
    pub fn sharing_reputation(&self, peer: usize) -> f64 {
        self.ledger.sharing_reputation(peer)
    }

    /// Editing/voting reputation `R_E` of a peer.
    pub fn editing_reputation(&self, peer: usize) -> f64 {
        self.ledger.editing_reputation(peer)
    }

    /// Full snapshot of a peer's reputation state.
    pub fn peer(&self, peer: usize) -> PeerReputation {
        self.ledger.peer(peer)
    }

    /// Whether the peer currently holds voting rights.
    pub fn can_vote(&self, peer: usize) -> bool {
        self.ledger.can_vote(peer)
    }

    /// Whether the peer currently holds editing rights.
    pub fn can_edit(&self, peer: usize) -> bool {
        self.ledger.can_edit(peer)
    }

    /// The minimum sharing reputation `R_S^min`.
    pub fn min_sharing_reputation(&self) -> f64 {
        self.ledger.min_sharing_reputation()
    }

    /// The minimum editing reputation `R_E^min`.
    pub fn min_editing_reputation(&self) -> f64 {
        self.ledger.min_editing_reputation()
    }

    /// Number of shards backing the view.
    pub fn shard_count(&self) -> usize {
        self.ledger.shard_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::ReputationLedger;

    fn sharded(peers: usize, shards: usize) -> ShardedLedger {
        ShardedLedger::new(
            peers,
            ContributionParams::default(),
            Arc::new(LogisticReputation::paper(0.2)),
            Arc::new(LogisticReputation::paper(0.2)),
            shards,
        )
    }

    #[test]
    fn shard_geometry_covers_the_population_exactly() {
        let l = sharded(10, 3);
        assert_eq!(l.shard_count(), 3);
        assert_eq!(l.shard_size(), 4);
        assert_eq!(l.shard(0).range(), 0..4);
        assert_eq!(l.shard(1).range(), 4..8);
        assert_eq!(l.shard(2).range(), 8..10);
        let covered: usize = (0..l.shard_count()).map(|s| l.shard(s).len()).sum();
        assert_eq!(covered, 10);
        for p in 0..10 {
            assert!(l.shard(l.shard_of(p)).range().contains(&p));
        }
    }

    #[test]
    fn recommended_shards_scale_with_population() {
        assert_eq!(ShardedLedger::recommended_shards(100), 1);
        assert_eq!(ShardedLedger::recommended_shards(4096), 1);
        assert_eq!(ShardedLedger::recommended_shards(10_000), 4);
        assert_eq!(ShardedLedger::recommended_shards(50_000), 16);
        assert_eq!(ShardedLedger::recommended_shards(100_000), 32);
        assert_eq!(
            ShardedLedger::recommended_shards(10_000_000),
            MAX_AUTO_SHARDS
        );
    }

    #[test]
    fn oversized_shard_count_is_clamped_to_population() {
        let l = sharded(3, 16);
        assert_eq!(l.shard_count(), 3);
        assert_eq!(l.shard_size(), 1);
    }

    #[test]
    fn single_peer_accessors_match_the_dense_ledger() {
        let mut dense = ReputationLedger::with_paper_defaults(9);
        let mut shard = sharded(9, 4);
        for p in 0..9 {
            let s = SharingAction {
                shared_articles: p as f64 * 3.0,
                shared_bandwidth: 0.5,
            };
            let e = EditingAction {
                successful_votes: p as u32,
                accepted_edits: 1,
                attempted: true,
            };
            dense.record_sharing(p, &s);
            shard.record_sharing(p, &s);
            dense.record_editing(p, &e);
            shard.record_editing(p, &e);
        }
        for p in 0..9 {
            assert_eq!(dense.sharing_reputation(p), shard.sharing_reputation(p));
            assert_eq!(dense.editing_reputation(p), shard.editing_reputation(p));
            assert_eq!(dense.peer(p), shard.peer(p));
        }
    }

    #[test]
    fn batched_apply_matches_inline_recording() {
        let mut inline = sharded(12, 4);
        let mut batched = sharded(12, 4);
        let mut batch = DeltaBatch::for_ledger(&batched);
        for p in 0..12 {
            let action = SharingAction {
                shared_articles: (p % 4) as f64,
                shared_bandwidth: 1.0 / (p + 1) as f64,
            };
            inline.record_sharing(p, &action);
            batch.push(ContributionDelta::sharing(p, action));
        }
        batched.apply(&batch);
        for p in 0..12 {
            assert_eq!(inline.sharing_reputation(p), batched.sharing_reputation(p));
        }
    }

    #[test]
    fn parallel_apply_is_bit_identical_to_sequential_apply() {
        for threads in [1, 2, 3, 8] {
            let mut sequential = sharded(50, 8);
            let mut parallel = sharded(50, 8);
            let mut batch = DeltaBatch::for_ledger(&sequential);
            for step in 0..5u32 {
                batch.clear();
                for p in 0..50 {
                    if (p + step as usize) % 3 == 0 {
                        batch.push(ContributionDelta::sharing(
                            p,
                            SharingAction {
                                shared_articles: f64::from(step) + p as f64 / 7.0,
                                shared_bandwidth: 0.3,
                            },
                        ));
                    }
                    batch.push(ContributionDelta::editing(
                        p,
                        EditingAction {
                            successful_votes: step % 2,
                            accepted_edits: 0,
                            attempted: p % 2 == 0,
                        },
                    ));
                }
                sequential.apply(&batch);
                parallel.apply_parallel(&batch, threads);
            }
            assert_eq!(
                sequential.all_sharing_reputations(),
                parallel.all_sharing_reputations()
            );
            assert_eq!(
                sequential.all_editing_reputations(),
                parallel.all_editing_reputations()
            );
        }
    }

    #[test]
    fn delta_batch_reuse_keeps_geometry_and_clears_contents() {
        let l = sharded(20, 4);
        let mut batch = DeltaBatch::for_ledger(&l);
        batch.push(ContributionDelta::sharing(7, SharingAction::default()));
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch.matches(&l));
        let smaller = sharded(6, 2);
        batch.ensure(&smaller);
        assert!(batch.matches(&smaller));
        assert_eq!(batch.shard_count(), 2);
    }

    #[test]
    fn rights_lifecycle_matches_dense_semantics() {
        let mut l = sharded(10, 3);
        assert!(l.can_vote(9));
        assert_eq!(l.record_unsuccessful_vote(9), 1);
        l.revoke_voting_rights(9);
        assert!(!l.can_vote(9));
        l.restore_voting_rights(9);
        assert!(l.can_vote(9));
        assert_eq!(l.unsuccessful_votes(9), 0);
        l.record_sharing(
            9,
            &SharingAction {
                shared_articles: 100.0,
                shared_bandwidth: 1.0,
            },
        );
        assert!(l.sharing_reputation(9) > 0.9);
        assert_eq!(l.record_declined_edit(9), 1);
        l.punish_malicious_editor(9);
        assert!(!l.can_edit(9));
        assert_eq!(l.declined_edits(9), 0);
        assert_eq!(l.sharing_reputation(9), l.min_sharing_reputation());
        l.restore_editing_rights(9);
        assert!(l.can_edit(9));
    }

    #[test]
    fn reset_all_contributions_spans_every_shard() {
        let mut l = sharded(10, 4);
        for p in 0..10 {
            l.record_sharing(
                p,
                &SharingAction {
                    shared_articles: 30.0,
                    shared_bandwidth: 1.0,
                },
            );
        }
        l.reset_all_contributions();
        for p in 0..10 {
            assert_eq!(l.sharing_reputation(p), l.min_sharing_reputation());
        }
    }

    #[test]
    fn view_exposes_reads_and_is_shareable() {
        let mut l = sharded(8, 2);
        l.record_sharing(
            3,
            &SharingAction {
                shared_articles: 50.0,
                shared_bandwidth: 1.0,
            },
        );
        let view = l.view();
        let from_threads: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || view.sharing_reputation(3)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(from_threads.iter().all(|&r| r == l.sharing_reputation(3)));
        assert_eq!(view.len(), 8);
        assert_eq!(view.shard_count(), 2);
        assert!(view.can_edit(0) && view.can_vote(0));
        assert_eq!(view.min_sharing_reputation(), l.min_sharing_reputation());
    }

    #[test]
    fn debug_format_mentions_shards() {
        let l = sharded(10, 2);
        let s = format!("{l:?}");
        assert!(s.contains("shards"));
        assert!(s.contains("logistic"));
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_ledger_panics() {
        let _ = ShardedLedger::with_paper_defaults(0);
    }

    #[test]
    #[should_panic(expected = "another ledger")]
    fn mismatched_batch_is_rejected() {
        let mut l = sharded(10, 2);
        let other = sharded(30, 4);
        let batch = DeltaBatch::for_ledger(&other);
        l.apply(&batch);
    }

    #[test]
    #[should_panic(expected = "another ledger")]
    fn same_shard_geometry_different_population_is_rejected() {
        // 9 peers / 3 shards and 7 peers / 3 shards both have shard_size
        // 3; only the population comparison tells them apart, turning a
        // would-be out-of-bounds panic into the intended message.
        let nine = sharded(9, 3);
        let mut seven = sharded(7, 3);
        assert_eq!(nine.shard_size(), seven.shard_size());
        let mut batch = DeltaBatch::for_ledger(&nine);
        batch.push(ContributionDelta::sharing(8, SharingAction::default()));
        seven.apply(&batch);
    }
}
