//! Punishment of malicious voters and editors (Section III-C2/C3).
//!
//! Two punishments are defined by the paper:
//!
//! * **Malicious voters** — "if the number of a peer's unsuccessful votes,
//!   i.e. votes against the majority, exceeds a certain threshold it will
//!   lose its voting rights. To get any new rights, the peer has to
//!   contribute constructive edits first."
//! * **Malicious editors** — "if a peer has too many declined edits it will
//!   lose its editing right. This is done by setting its sharing reputation
//!   to the minimum value … In addition, the editing reputation drops to
//!   the minimum value as well."
//!
//! [`PunishmentPolicy`] holds the thresholds and applies the punishments to
//! any [`ReputationStore`] — the dense
//! [`ReputationLedger`](crate::ledger::ReputationLedger) or the
//! [`ShardedLedger`](crate::sharded::ShardedLedger).

use crate::ledger::ReputationStore;
use serde::{Deserialize, Serialize};

/// What (if anything) a punishment check did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PunishmentOutcome {
    /// No threshold was exceeded.
    None,
    /// The peer lost its voting rights.
    VotingRightsRevoked,
    /// The peer lost its editing rights and both reputations were reset.
    EditingRightsRevoked,
}

/// Thresholds of the punishment mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PunishmentPolicy {
    /// Number of unsuccessful (against-majority) votes after which voting
    /// rights are revoked.
    pub max_unsuccessful_votes: u32,
    /// Number of declined edits after which editing rights are revoked and
    /// reputation is reset.
    pub max_declined_edits: u32,
    /// Number of accepted edits a punished voter must contribute before its
    /// voting rights are restored.
    pub edits_to_restore_voting: u32,
}

impl Default for PunishmentPolicy {
    fn default() -> Self {
        Self {
            max_unsuccessful_votes: 5,
            max_declined_edits: 3,
            edits_to_restore_voting: 1,
        }
    }
}

impl PunishmentPolicy {
    /// Validates the thresholds.
    ///
    /// # Panics
    ///
    /// Panics if any threshold is zero (a zero threshold would punish peers
    /// before they acted at all).
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }

    /// Validates the thresholds, naming the offending field in the error
    /// message.
    pub fn check(&self) -> Result<(), String> {
        if self.max_unsuccessful_votes == 0 {
            return Err("vote threshold must be positive".to_string());
        }
        if self.max_declined_edits == 0 {
            return Err("edit threshold must be positive".to_string());
        }
        if self.edits_to_restore_voting == 0 {
            return Err("restoration requirement must be positive".to_string());
        }
        Ok(())
    }

    /// Records an unsuccessful vote for `peer` in the ledger and revokes its
    /// voting rights if the threshold is now exceeded.
    pub fn on_unsuccessful_vote<L: ReputationStore + ?Sized>(
        &self,
        ledger: &mut L,
        peer: usize,
    ) -> PunishmentOutcome {
        let count = ledger.record_unsuccessful_vote(peer);
        if count > self.max_unsuccessful_votes && ledger.can_vote(peer) {
            ledger.revoke_voting_rights(peer);
            PunishmentOutcome::VotingRightsRevoked
        } else {
            PunishmentOutcome::None
        }
    }

    /// Records a declined edit for `peer` and applies the malicious-editor
    /// punishment (rights revoked, reputations reset) if the threshold is
    /// now exceeded.
    pub fn on_declined_edit<L: ReputationStore + ?Sized>(
        &self,
        ledger: &mut L,
        peer: usize,
    ) -> PunishmentOutcome {
        let count = ledger.record_declined_edit(peer);
        if count > self.max_declined_edits && ledger.can_edit(peer) {
            ledger.punish_malicious_editor(peer);
            PunishmentOutcome::EditingRightsRevoked
        } else {
            PunishmentOutcome::None
        }
    }

    /// Called when `peer` has an edit accepted: if the peer had lost voting
    /// rights and has now contributed `edits_to_restore_voting` constructive
    /// edits since, its voting rights are restored; if it had lost editing
    /// rights and its sharing reputation has recovered above
    /// `edit_threshold`, the editing rights come back too.
    pub fn on_accepted_edit<L: ReputationStore + ?Sized>(
        &self,
        ledger: &mut L,
        peer: usize,
        accepted_edits_since_punishment: u32,
        edit_threshold: f64,
    ) {
        if !ledger.can_vote(peer) && accepted_edits_since_punishment >= self.edits_to_restore_voting
        {
            ledger.restore_voting_rights(peer);
        }
        if !ledger.can_edit(peer) && ledger.sharing_reputation(peer) >= edit_threshold {
            ledger.restore_editing_rights(peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contribution::SharingAction;
    use crate::ledger::ReputationLedger;

    fn ledger() -> ReputationLedger {
        ReputationLedger::with_paper_defaults(3)
    }

    #[test]
    fn votes_below_threshold_do_nothing() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        for _ in 0..policy.max_unsuccessful_votes {
            assert_eq!(
                policy.on_unsuccessful_vote(&mut l, 0),
                PunishmentOutcome::None
            );
        }
        assert!(l.can_vote(0));
    }

    #[test]
    fn exceeding_vote_threshold_revokes_rights_once() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        for _ in 0..policy.max_unsuccessful_votes {
            policy.on_unsuccessful_vote(&mut l, 0);
        }
        assert_eq!(
            policy.on_unsuccessful_vote(&mut l, 0),
            PunishmentOutcome::VotingRightsRevoked
        );
        assert!(!l.can_vote(0));
        // A further unsuccessful vote does not "re-revoke".
        assert_eq!(
            policy.on_unsuccessful_vote(&mut l, 0),
            PunishmentOutcome::None
        );
    }

    #[test]
    fn exceeding_edit_threshold_resets_reputation() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        l.record_sharing(
            1,
            &SharingAction {
                shared_articles: 100.0,
                shared_bandwidth: 1.0,
            },
        );
        assert!(l.sharing_reputation(1) > 0.9);
        for _ in 0..policy.max_declined_edits {
            assert_eq!(policy.on_declined_edit(&mut l, 1), PunishmentOutcome::None);
        }
        assert_eq!(
            policy.on_declined_edit(&mut l, 1),
            PunishmentOutcome::EditingRightsRevoked
        );
        assert!(!l.can_edit(1));
        assert!((l.sharing_reputation(1) - l.min_sharing_reputation()).abs() < 1e-12);
        assert!((l.editing_reputation(1) - l.min_editing_reputation()).abs() < 1e-12);
    }

    #[test]
    fn punishments_are_per_peer() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        for _ in 0..=policy.max_unsuccessful_votes {
            policy.on_unsuccessful_vote(&mut l, 0);
        }
        assert!(!l.can_vote(0));
        assert!(l.can_vote(1));
        assert!(l.can_vote(2));
    }

    #[test]
    fn accepted_edits_restore_voting_rights() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        for _ in 0..=policy.max_unsuccessful_votes {
            policy.on_unsuccessful_vote(&mut l, 0);
        }
        assert!(!l.can_vote(0));
        policy.on_accepted_edit(&mut l, 0, 1, 0.1);
        assert!(l.can_vote(0));
        assert_eq!(l.unsuccessful_votes(0), 0);
    }

    #[test]
    fn editing_rights_return_only_after_reputation_recovers() {
        let policy = PunishmentPolicy::default();
        let mut l = ledger();
        for _ in 0..=policy.max_declined_edits {
            policy.on_declined_edit(&mut l, 0);
        }
        assert!(!l.can_edit(0));
        // Reputation still at minimum: no restoration.
        policy.on_accepted_edit(&mut l, 0, 1, 0.1);
        assert!(!l.can_edit(0));
        // Peer rebuilds its sharing reputation above the threshold.
        l.record_sharing(
            0,
            &SharingAction {
                shared_articles: 20.0,
                shared_bandwidth: 1.0,
            },
        );
        policy.on_accepted_edit(&mut l, 0, 1, 0.1);
        assert!(l.can_edit(0));
    }

    #[test]
    #[should_panic(expected = "vote threshold")]
    fn zero_threshold_rejected() {
        PunishmentPolicy {
            max_unsuccessful_votes: 0,
            ..Default::default()
        }
        .validate();
    }
}
