//! The phase registry: named [`StepPhase`] factories.
//!
//! A [`PhaseRegistry`] maps stable phase names to factories producing
//! boxed [`StepPhase`]s for a given configuration. The standard registry
//! knows the eight built-in phases; downstream crates, benches and tests
//! [`register`](PhaseRegistry::register) their own and then resolve a
//! [`ScenarioSpec`](crate::spec::ScenarioSpec)'s ordered phase list into a
//! [`StepPipeline`] — so a custom workload never edits the engine, it
//! registers a phase and names it in a spec.

use super::{
    ChurnPhase, DownloadPhase, EditVotePhase, LearningPhase, PropagationPhase, SelectionPhase,
    SharingPhase, StepPhase, StepPipeline, UtilityPhase,
};
use crate::adversary::AdversaryPhase;
use crate::config::SimulationConfig;
use crate::spec::SpecError;

/// A factory producing one boxed phase for a configuration.
pub type PhaseFactory = Box<dyn Fn(&SimulationConfig) -> Box<dyn StepPhase> + Send + Sync>;

/// A name → [`StepPhase`]-factory table resolving spec phase lists into
/// pipelines.
pub struct PhaseRegistry {
    entries: Vec<(String, PhaseFactory)>,
}

impl PhaseRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The standard registry: the six Section-IV protocol phases plus the
    /// optional `propagation`, `churn` and `adversary` phases, under their
    /// stable names (`selection`, `sharing`, `download`, `edit-vote`,
    /// `utility`, `learning`, `propagation`, `churn`, `adversary`).
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry
            .register("selection", |_| Box::new(SelectionPhase))
            .register("sharing", |_| Box::new(SharingPhase))
            .register("download", |_| Box::new(DownloadPhase))
            .register("edit-vote", |_| Box::new(EditVotePhase))
            .register("utility", |_| Box::new(UtilityPhase))
            .register("learning", |_| Box::new(LearningPhase))
            .register("propagation", |_| Box::new(PropagationPhase))
            .register("churn", |_| Box::new(ChurnPhase))
            .register("adversary", |_| Box::new(AdversaryPhase));
        registry
    }

    /// Registers (or replaces — latest registration wins) a named phase
    /// factory. The factory receives the spec's configuration, so a phase
    /// can pre-compute per-run state.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F) -> &mut Self
    where
        F: Fn(&SimulationConfig) -> Box<dyn StepPhase> + Send + Sync + 'static,
    {
        let name = name.into();
        self.entries.retain(|(existing, _)| *existing != name);
        self.entries.push((name, Box::new(factory)));
        self
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered phases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Instantiates one phase by name.
    pub fn instantiate(
        &self,
        name: &str,
        config: &SimulationConfig,
    ) -> Result<Box<dyn StepPhase>, SpecError> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, factory)| factory(config))
            .ok_or_else(|| SpecError::UnknownPhase {
                name: name.to_string(),
            })
    }

    /// Resolves an ordered phase-name list into a pipeline.
    pub fn build_pipeline<S: AsRef<str>>(
        &self,
        names: &[S],
        config: &SimulationConfig,
    ) -> Result<StepPipeline, SpecError> {
        if names.is_empty() {
            return Err(SpecError::EmptyPhaseList);
        }
        let mut pipeline = StepPipeline::new();
        for name in names {
            pipeline.push_boxed(self.instantiate(name.as_ref(), config)?);
        }
        Ok(pipeline)
    }
}

impl std::fmt::Debug for PhaseRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for PhaseRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StepContext;
    use crate::world::SimWorld;

    #[test]
    fn standard_registry_knows_all_builtin_phases() {
        let registry = PhaseRegistry::standard();
        assert_eq!(registry.len(), 9);
        for name in [
            "selection",
            "sharing",
            "download",
            "edit-vote",
            "utility",
            "learning",
            "propagation",
            "churn",
            "adversary",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        assert!(!registry.contains("no-such-phase"));
    }

    #[test]
    fn build_pipeline_preserves_declared_order() {
        let registry = PhaseRegistry::standard();
        let config = SimulationConfig::default();
        let pipeline = registry
            .build_pipeline(&["learning", "selection", "churn"], &config)
            .unwrap();
        assert_eq!(
            pipeline.phase_names(),
            vec!["learning", "selection", "churn"]
        );
    }

    #[test]
    fn unknown_names_and_empty_lists_are_typed_errors() {
        let registry = PhaseRegistry::standard();
        let config = SimulationConfig::default();
        let err = registry
            .build_pipeline(&["selection", "wormhole"], &config)
            .unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownPhase {
                name: "wormhole".to_string()
            }
        );
        let err = registry
            .build_pipeline(&Vec::<&str>::new(), &config)
            .unwrap_err();
        assert_eq!(err, SpecError::EmptyPhaseList);
    }

    #[test]
    fn custom_registrations_replace_and_execute() {
        struct MarkerPhase;
        impl StepPhase for MarkerPhase {
            fn name(&self) -> &'static str {
                "marker"
            }
            fn execute(&self, world: &mut SimWorld, _ctx: &mut StepContext) {
                world.propagation_runs += 100;
            }
        }
        let mut registry = PhaseRegistry::standard();
        registry.register("marker", |_| Box::new(MarkerPhase));
        assert_eq!(registry.len(), 10);
        // Latest registration wins.
        registry.register("marker", |_| Box::new(MarkerPhase));
        assert_eq!(registry.len(), 10);

        let config = SimulationConfig {
            population: 8,
            initial_articles: 4,
            ..Default::default()
        };
        let pipeline = registry.build_pipeline(&["marker"], &config).unwrap();
        let mut world = SimWorld::new(config);
        pipeline.run_step(&mut world, 1.0);
        assert_eq!(world.propagation_runs, 100);
    }
}
