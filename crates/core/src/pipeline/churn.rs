//! Optional phase — peer churn between steps.

use super::{StepContext, StepPhase};
use crate::world::SimWorld;
use collabsim_netsim::churn::ChurnEvent;
use collabsim_netsim::peer::PeerId;
use rand::Rng;

/// Applies the configured [`ChurnModel`](collabsim_netsim::churn::ChurnModel)
/// at the top of every step: departures take peers offline (withdrawing
/// their offers and cancelling their in-flight download), joins bring
/// departed identities back online with their reputation intact (re-entry —
/// the Section-VI persistence question), and whitewashes reset an identity
/// in place (the old identity never returns; a newcomer at `R_min` occupies
/// its slot).
///
/// **Determinism contract:** the phase draws exclusively from
/// `world.churn_rng`, so a stable model — which samples nothing — leaves
/// the trajectory bit-identical to a pipeline without the phase, and a
/// churn-enabled run is reproducible from its seed alone. The phase leaves
/// at least two peers online so the network never degenerates below the
/// smallest population the model is defined for.
pub struct ChurnPhase;

impl StepPhase for ChurnPhase {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let model = world.config.churn;
        if model.is_stable() {
            return;
        }
        let now = ctx.now;
        // Online peers ascending by id (the bitset iterates ascending):
        // `sample_step` emits events in input order, so the whole event
        // stream is a pure function of the churn RNG stream and the online
        // set.
        let online: Vec<PeerId> = world
            .active
            .iter_online()
            .map(|p| PeerId(p as u32))
            .collect();
        let mut online_count = online.len();
        let events = model.sample_step(&online, &mut world.churn_rng);
        for event in events {
            match event {
                ChurnEvent::Join => {
                    // The arena is fixed-size, so a join is the re-entry of
                    // a departed identity, drawn uniformly from the offline
                    // set (ascending id order keeps the draw deterministic).
                    let offline: Vec<PeerId> = (0..world.population())
                        .filter(|&p| !world.active.is_online(p))
                        .map(|p| PeerId(p as u32))
                        .collect();
                    if offline.is_empty() {
                        continue;
                    }
                    let index = world.churn_rng.gen_range(0..offline.len());
                    world.rejoin_peer(offline[index], now);
                    online_count += 1;
                }
                ChurnEvent::Leave(peer) => {
                    // Keep a functioning network: never drop below 2 online
                    // peers (the smallest population the model supports).
                    if online_count <= 2 {
                        continue;
                    }
                    world.depart_peer(peer, now);
                    online_count -= 1;
                }
                ChurnEvent::Whitewash(peer) => {
                    // Leave + instant rejoin under a fresh identity: the
                    // online count is unchanged.
                    world.whitewash_peer(peer, now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use collabsim_netsim::churn::ChurnModel;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 16,
            initial_articles: 8,
            phases: PhaseConfig {
                training_steps: 80,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn churn_config(model: ChurnModel) -> SimulationConfig {
        quick_config().with_churn(model)
    }

    #[test]
    fn stable_model_makes_the_phase_a_no_op() {
        // Same seed, churn phase present (with a stable model) vs absent:
        // the reports must be identical because a stable model draws
        // nothing from any RNG.
        let without = Simulation::new(quick_config()).run();
        let spec = crate::spec::ScenarioSpec::builder()
            .configure(|c| *c = quick_config())
            .phase_order([
                "churn",
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning",
            ])
            .build()
            .unwrap();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        assert_eq!(sim.pipeline().phase_names()[0], "churn");
        let with = sim.run();
        assert_eq!(without, with);
        assert_eq!(sim.world().churn_stats.total_events(), 0);
    }

    #[test]
    fn departures_take_peers_offline_and_reentry_preserves_reputation() {
        let model = ChurnModel {
            join_probability: 0.2,
            leave_probability: 0.01,
            whitewash_probability: 0.0,
        };
        let mut sim = Simulation::from_spec(
            &crate::spec::ScenarioSpec::builder()
                .configure(|c| *c = churn_config(model))
                .build()
                .unwrap(),
        )
        .unwrap();
        let report = sim.run();
        let stats = sim.world().churn_stats;
        assert!(stats.leaves > 0, "churn must generate departures");
        assert!(stats.joins > 0, "churn must generate re-entries");
        // Re-entrant identities keep their ledger record, so the observed
        // mean re-entry reputation is at least the newcomer minimum.
        assert!(stats.mean_reentry_reputation() >= 0.05 - 1e-12);
        assert_eq!(report.evaluation_steps, 40);
        // The network never degenerates.
        assert!(sim.world().peers.online().count() >= 2);
    }

    #[test]
    fn whitewashing_resets_reputation_and_history() {
        let model = ChurnModel::whitewashing(0.01);
        let mut sim = Simulation::from_spec(
            &crate::spec::ScenarioSpec::builder()
                .configure(|c| *c = churn_config(model))
                .build()
                .unwrap(),
        )
        .unwrap();
        sim.run();
        let stats = sim.world().churn_stats;
        assert!(
            stats.whitewashes > 0,
            "whitewash probability 1% over 1920 peer-steps"
        );
        assert_eq!(stats.leaves, 0);
        assert!(
            stats.whitewash_reputation_shed_sum >= 0.0,
            "shed reputation is non-negative"
        );
        // Whitewashing keeps everyone online.
        assert_eq!(sim.world().peers.online().count(), 16);
    }

    #[test]
    fn churn_runs_are_seed_deterministic() {
        let model = ChurnModel {
            join_probability: 0.1,
            leave_probability: 0.005,
            whitewash_probability: 0.002,
        };
        let spec = crate::spec::ScenarioSpec::builder()
            .configure(|c| *c = churn_config(model))
            .seed(0xC0FFEE)
            .build()
            .unwrap();
        let a = Simulation::from_spec(&spec).unwrap().run();
        let b = Simulation::from_spec(&spec).unwrap().run();
        assert_eq!(a, b);
    }
}
