//! Phase 2 — applying sharing decisions.

use super::{OfferPlan, StepContext, StepPhase};
use crate::action::CollabAction;
use crate::world::{SimWorld, ARTICLE_CONTRIBUTION_UNITS, BANDWIDTH_CONTRIBUTION_UNITS};
use collabsim_netsim::peer::PeerId;
use collabsim_netsim::storage::ArticleStore;
use collabsim_reputation::contribution::{ContributionDelta, SharingAction};

/// Applies every *online* peer's sharing decision to the peer registry and
/// the article store, and records the step's sharing contribution (`C_S`)
/// in the reputation ledger.
///
/// Departed peers are skipped entirely (the online bitset drives the
/// collect stage): their registry offers and offered-article count were
/// zeroed at the departure boundary by
/// [`SimWorld::depart_peer`], and no delta means their ledger record is
/// frozen while away — reputation persists across the absence, which is
/// exactly what the churn re-entry experiments measure.
///
/// The phase runs the two-stage collect-then-apply protocol:
///
/// 1. **Collect** — workers walk shard-aligned peer ranges and, from
///    read-only state (the chosen actions and the article store), compute
///    each online peer's offered-article count and its
///    [`ContributionDelta`], bucketed per ledger shard in
///    [`StepContext::sharing_deltas`]. The stage draws no randomness and
///    no peer's result depends on another's, so any worker count produces
///    the same buckets in the same order.
/// 2. **Apply** — registry and store writes happen sequentially in peer
///    order; the contribution deltas are applied through
///    [`ShardedLedger::apply_parallel`](collabsim_reputation::sharded::ShardedLedger::apply_parallel),
///    bit-identical to a sequential apply.
pub struct SharingPhase;

/// Collects one online peer's sharing effects into its shard bucket and
/// plan.
fn collect_peer(
    peer: usize,
    actions: &[CollabAction],
    store: &ArticleStore,
    bucket: &mut Vec<ContributionDelta>,
    plan: &mut Vec<OfferPlan>,
) {
    let action = actions[peer];
    let id = PeerId(peer as u32);
    let held = store.held_count(id);
    let offered = (action.articles.fraction() * held as f64).round() as usize;
    plan.push((id, offered));

    // Contribution accounting. The paper leaves the units of
    // S_articles and S_bandwidth open; we scale both so that sharing
    // everything sits at C_S = 24 (R ≈ 0.87 on the Figure 1 logistic
    // curve with β = 0.2), a single fully shared resource at C_S = 12
    // (R ≈ 0.35) and free-riding at C_S = 0 (R = 0.05) — giving the
    // Q-learner a visible reputation gradient across participation
    // levels and across resource classes (see DESIGN.md).
    bucket.push(ContributionDelta::sharing(
        peer,
        SharingAction {
            shared_articles: action.articles.fraction() * ARTICLE_CONTRIBUTION_UNITS,
            shared_bandwidth: action.bandwidth.fraction() * BANDWIDTH_CONTRIBUTION_UNITS,
        },
    ));
}

impl StepPhase for SharingPhase {
    fn name(&self) -> &'static str {
        "sharing"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        ctx.sharing_deltas.ensure(&world.ledger);
        let shard_size = world.ledger.shard_size();
        let shard_count = world.ledger.shard_count();
        let threads = world.intra_step_threads().clamp(1, shard_count);

        // Stage 1 — collect. Workers own disjoint shard-aligned peer
        // ranges; all reads go to state this phase does not mutate. The
        // plan buffers live in the context so steady-state steps reuse
        // their capacity.
        if ctx.offer_plans.len() != shard_count {
            ctx.offer_plans.resize_with(shard_count, Vec::new);
        }
        {
            let actions = &ctx.actions;
            let store = &world.store;
            let online = world.active.online();
            let plans = &mut ctx.offer_plans;
            let buckets = ctx.sharing_deltas.buckets_mut();
            let peers_of_shard = |shard: usize| {
                let start = shard * shard_size;
                start..((shard + 1) * shard_size).min(population)
            };
            if threads > 1 {
                let per_worker = shard_count.div_ceil(threads);
                std::thread::scope(|scope| {
                    let bucket_groups = buckets.chunks_mut(per_worker);
                    let plan_groups = plans.chunks_mut(per_worker);
                    for (worker, (bucket_group, plan_group)) in
                        bucket_groups.zip(plan_groups).enumerate()
                    {
                        scope.spawn(move || {
                            for (offset, (bucket, plan)) in
                                bucket_group.iter_mut().zip(plan_group).enumerate()
                            {
                                for p in
                                    online.iter_range(peers_of_shard(worker * per_worker + offset))
                                {
                                    collect_peer(p, actions, store, bucket, plan);
                                }
                            }
                        });
                    }
                });
            } else {
                for (shard, (bucket, plan)) in buckets.iter_mut().zip(plans.iter_mut()).enumerate()
                {
                    for p in online.iter_range(peers_of_shard(shard)) {
                        collect_peer(p, actions, store, bucket, plan);
                    }
                }
            }
        }

        // Stage 2 — apply. Registry/store writes go in peer order (shard
        // order × in-shard order = 0..population); ledger deltas are
        // applied shard-parallel.
        for plan in &mut ctx.offer_plans {
            for (id, offered) in plan.drain(..) {
                let action = ctx.actions[id.index()];
                let peer = world.peers.peer_mut(id);
                peer.set_shared_upload_fraction(action.bandwidth.fraction());
                peer.set_shared_articles(action.articles.article_count());
                world.store.set_offered_count(id, offered);
            }
        }
        world.ledger.apply_parallel(&ctx.sharing_deltas, threads);
    }
}
