//! Phase 2 — applying sharing decisions.

use super::{StepContext, StepPhase};
use crate::world::{SimWorld, ARTICLE_CONTRIBUTION_UNITS, BANDWIDTH_CONTRIBUTION_UNITS};
use collabsim_netsim::peer::PeerId;
use collabsim_reputation::contribution::SharingAction;

/// Applies every peer's sharing decision to the peer registry and the
/// article store, and records the step's sharing contribution (`C_S`) in
/// the reputation ledger.
pub struct SharingPhase;

impl StepPhase for SharingPhase {
    fn name(&self) -> &'static str {
        "sharing"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        for p in 0..world.population() {
            let action = ctx.actions[p];
            let id = PeerId(p as u32);
            let peer = world.peers.peer_mut(id);
            peer.set_shared_upload_fraction(action.bandwidth.fraction());
            peer.set_shared_articles(action.articles.article_count());
            let held = world.store.held_count(id);
            let offered = (action.articles.fraction() * held as f64).round() as usize;
            world.store.set_offered_count(id, offered);

            // Contribution accounting. The paper leaves the units of
            // S_articles and S_bandwidth open; we scale both so that sharing
            // everything sits at C_S = 24 (R ≈ 0.87 on the Figure 1 logistic
            // curve with β = 0.2), a single fully shared resource at C_S = 12
            // (R ≈ 0.35) and free-riding at C_S = 0 (R = 0.05) — giving the
            // Q-learner a visible reputation gradient across participation
            // levels and across resource classes (see DESIGN.md).
            world.ledger.record_sharing(
                p,
                &SharingAction {
                    shared_articles: action.articles.fraction() * ARTICLE_CONTRIBUTION_UNITS,
                    shared_bandwidth: action.bandwidth.fraction() * BANDWIDTH_CONTRIBUTION_UNITS,
                },
            );
        }
    }
}
