//! Phase 4 — editing and voting.

use super::{StepContext, StepPhase};
use crate::action::EditBehavior;
use crate::adversary::VoteDirective;
use crate::world::SimWorld;
use collabsim_netsim::article::EditKind;
use collabsim_netsim::peer::PeerId;
use collabsim_reputation::contribution::{ContributionDelta, EditingAction};
use collabsim_reputation::punishment::PunishmentOutcome;
use collabsim_reputation::service::ServiceDifferentiation;
use rand::seq::SliceRandom;
use rand::Rng;

/// Participating peers attempt edits on random articles; each edit is put
/// to a vote whose eligibility, weighting, acceptance majority and
/// punishments follow the configured incentive scheme. Editing/voting
/// contributions (`C_E`) are recorded afterwards.
///
/// Fills [`StepContext::successful_votes`], [`StepContext::accepted_edits`],
/// [`StepContext::attempted_editing`] and [`StepContext::voted_this_step`].
pub struct EditVotePhase;

/// The per-edit voter-pool buffers of [`EditVotePhase`], carried in
/// [`StepContext`] and rewritten for every edit so steady-state steps
/// allocate nothing in the vote loop (the last candidate of the
/// paper-scale performance pass: the non-restricted voter pool is
/// population-sized *per edit*).
#[derive(Debug, Clone, Default)]
pub struct VoteScratch {
    /// The eligible voter set of the current edit.
    eligible: Vec<PeerId>,
    /// The eligible voters' editing reputations, index-aligned.
    reputations: Vec<f64>,
    /// The voting powers, index-aligned with `eligible`.
    powers: Vec<f64>,
    /// Dense indices of voters siding with the edit.
    favor: Vec<usize>,
    /// Dense indices of voters siding against the edit.
    against: Vec<usize>,
}

impl StepPhase for EditVotePhase {
    fn name(&self) -> &'static str {
        "edit-vote"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let now = ctx.now;
        for p in 0..population {
            let behavior = ctx.actions[p].edit;
            if !behavior.participates() {
                continue;
            }
            if !world.rng.gen_bool(world.config.edit_probability) {
                continue;
            }
            let editor = PeerId(p as u32);
            // A punished editor regains its editing right once its sharing
            // reputation has been rebuilt above the threshold θ — the paper's
            // punishment *is* the reputation reset, so the gate below is what
            // actually keeps the peer out until it contributes again. Both
            // gates read the *service-visible* reputation (the ledger, or
            // the propagation backend's estimate under
            // `reputation_source = propagated`).
            if !world.ledger.can_edit(p)
                && world.service_sharing_reputation(p) >= world.config.service.edit_threshold
            {
                world.ledger.restore_editing_rights(p);
            }
            if !world.ledger.can_edit(p) {
                continue;
            }
            if world.config.incentive.gated_editing()
                && !world.service.may_edit(world.service_sharing_reputation(p))
            {
                continue;
            }
            let editable = world.articles.editable_articles();
            let Some(&article_id) = editable.choose(&mut world.rng) else {
                continue;
            };
            let kind = match behavior {
                EditBehavior::Constructive => EditKind::Constructive,
                EditBehavior::Destructive => EditKind::Destructive,
                EditBehavior::Abstain => unreachable!("abstainers skipped above"),
            };
            let Some(edit_id) = world.articles.submit_edit(article_id, editor, kind, now) else {
                continue;
            };
            ctx.attempted_editing[p] = true;

            // --- The vote -------------------------------------------------
            // Voter pool: either the Section III-C2 design rule (previously
            // successful editors of this article) or the Section IV
            // simulation model (any peer may vote on any change), sampled
            // down to at most `max_voters_per_edit` voters. All per-edit
            // buffers live in the reused [`VoteScratch`]; contents, order
            // and RNG draws are identical to the freshly-allocated
            // vectors they replaced.
            let scratch = &mut ctx.vote_scratch;
            if world.config.restrict_voters_to_editors {
                world
                    .articles
                    .article(article_id)
                    .eligible_voters_into(editor, &mut scratch.eligible);
            } else {
                scratch.eligible.clear();
                scratch.eligible.extend(
                    (0..population)
                        .map(|v| PeerId(v as u32))
                        .filter(|&v| v != editor),
                );
            }
            let eligible = &mut scratch.eligible;
            if eligible.len() > world.config.max_voters_per_edit {
                eligible.shuffle(&mut world.rng);
                eligible.truncate(world.config.max_voters_per_edit);
                eligible.sort_unstable();
            }
            let mut in_favor = 0.0f64;
            let mut against = 0.0f64;
            scratch.favor.clear();
            scratch.against.clear();
            let favor_voters = &mut scratch.favor;
            let against_voters = &mut scratch.against;
            scratch.reputations.clear();
            scratch.reputations.extend(
                eligible
                    .iter()
                    .map(|v| world.ledger.editing_reputation(v.index())),
            );
            if world.config.incentive.weighted_voting() {
                world
                    .service
                    .voting_powers_into(&scratch.reputations, &mut scratch.powers);
            } else {
                ServiceDifferentiation::equal_shares_into(eligible.len(), &mut scratch.powers);
            }
            let powers = &scratch.powers;
            for (voter, &power) in eligible.iter().zip(powers.iter()) {
                let vi = voter.index();
                if world.config.incentive.punishes() && !world.ledger.can_vote(vi) {
                    continue;
                }
                // A voter's stance this step normally follows its own
                // chosen edit behaviour: constructive voters support
                // quality, destructive voters oppose it, abstainers stay
                // silent. Adversary units may override the stance
                // (collusive cross-voting, sybil slander); the override
                // resolves to `None` for every peer when no adversaries
                // are configured, leaving the honest path untouched.
                // Offline peers never vote: honest ones carry the idle
                // (Abstain) action while away, and the override is gated
                // here so a departed attacker cannot keep manipulating
                // votes either.
                let supports_edit = match world.adversaries.vote_stance(vi, p) {
                    Some(_) if !world.active.is_online(vi) => continue,
                    Some(VoteDirective::Support) => {
                        world.adversaries.note_override_vote(vi);
                        true
                    }
                    Some(VoteDirective::Oppose) => {
                        world.adversaries.note_override_vote(vi);
                        false
                    }
                    Some(VoteDirective::Abstain) => continue,
                    None => {
                        let stance = ctx.actions[vi].edit;
                        if !stance.participates() {
                            continue;
                        }
                        match (stance, kind) {
                            (EditBehavior::Constructive, EditKind::Constructive) => true,
                            (EditBehavior::Constructive, EditKind::Destructive) => false,
                            (EditBehavior::Destructive, EditKind::Constructive) => false,
                            (EditBehavior::Destructive, EditKind::Destructive) => true,
                            (EditBehavior::Abstain, _) => unreachable!("abstainers skipped above"),
                        }
                    }
                };
                ctx.voted_this_step[vi] = true;
                if supports_edit {
                    in_favor += power;
                    favor_voters.push(vi);
                } else {
                    against += power;
                    against_voters.push(vi);
                }
            }
            let accepted = if world.config.incentive.adaptive_majority() {
                world
                    .service
                    .edit_accepted(world.ledger.editing_reputation(p), in_favor, against)
            } else {
                in_favor + against > 0.0 && in_favor >= against
            };
            world.articles.resolve_edit(edit_id, accepted, now);

            // Editor outcome.
            if accepted {
                ctx.accepted_edits[p] += 1;
                world.accepted_since_punishment[p] += 1;
                if world.config.incentive.punishes() {
                    let since = world.accepted_since_punishment[p];
                    world.config.punishment.on_accepted_edit(
                        &mut world.ledger,
                        p,
                        since,
                        world.config.service.edit_threshold,
                    );
                }
            } else if world.config.incentive.punishes() {
                let outcome = world
                    .config
                    .punishment
                    .on_declined_edit(&mut world.ledger, p);
                if outcome == PunishmentOutcome::EditingRightsRevoked {
                    world.accepted_since_punishment[p] = 0;
                }
            }

            // Voter outcomes: voters on the winning side cast a successful
            // vote, losers an unsuccessful one (punished under the scheme).
            let (winners, losers): (&[usize], &[usize]) = if accepted {
                (favor_voters, against_voters)
            } else {
                (against_voters, favor_voters)
            };
            for &w in winners {
                ctx.successful_votes[w] += 1;
            }
            if world.config.incentive.punishes() {
                for &l in losers {
                    world
                        .config
                        .punishment
                        .on_unsuccessful_vote(&mut world.ledger, l);
                }
            }
        }

        // Editing/voting contribution accounting, collect-then-apply: the
        // per-peer outcomes gathered above are bucketed per ledger shard
        // and applied by parallel workers — bit-identical to recording
        // them inline, because contribution updates are per-peer
        // independent and each shard applies its bucket in peer order.
        ctx.editing_deltas.ensure(&world.ledger);
        // Departed peers are frozen: no delta means no decay while away,
        // so reputation persists until re-entry. The online bitset yields
        // the same ascending peer order as the dense scan it replaces.
        for p in world.active.iter_online() {
            ctx.editing_deltas.push(ContributionDelta::editing(
                p,
                EditingAction {
                    successful_votes: ctx.successful_votes[p],
                    accepted_edits: ctx.accepted_edits[p],
                    attempted: ctx.attempted_editing[p] || ctx.voted_this_step[p],
                },
            ));
        }
        world
            .ledger
            .apply_parallel(&ctx.editing_deltas, world.intra_step_threads());
    }
}
