//! Optional phase — reputation propagation over the trust graph.

use super::{StepContext, StepPhase};
use crate::world::SimWorld;
use collabsim_reputation::propagation::eigentrust::EigenTrust;
use collabsim_reputation::propagation::{PropagationBackend, TrustGraph};

/// Periodically propagates the upload-derived local-trust graph into a
/// global reputation vector through the backend selected by
/// [`PropagationConfig`](crate::config::PropagationConfig).
///
/// Local trust `i → j` is how much bandwidth `j` has uploaded to `i` — the
/// direct-relation history the paper's Section II-C candidates (EigenTrust,
/// MaxFlow) assume. The phase runs its backend every
/// `config.propagation.interval` steps and stores the result in
/// [`SimWorld::global_reputation`]. Under the default
/// `reputation_source = ledger` it deliberately does **not** feed the
/// result back into service differentiation (the paper assumes propagation
/// exists but models reputation as globally visible), so enabling it
/// observes propagation quality without perturbing the core dynamics;
/// under `reputation_source = propagated` the phase additionally refreshes
/// [`SimWorld::propagated_service_reputation`], which selection, bandwidth
/// allocation and edit gating then consume instead of the ledger. It
/// draws randomness exclusively from `world.propagation_rng`, keeping the
/// main step RNG stream untouched.
pub struct PropagationPhase;

impl StepPhase for PropagationPhase {
    fn name(&self) -> &'static str {
        "propagation"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let Some(scheme) = world.config.propagation.scheme else {
            return;
        };
        // `validate()` guarantees interval ≥ 1, and `ctx.now` is 1-based.
        if ctx.now % world.config.propagation.interval != 0 {
            return;
        }
        let population = world.population();
        let mut graph = TrustGraph::new(population);
        for truster in 0..population {
            for trustee in 0..population {
                if truster != trustee {
                    graph.set_trust(truster, trustee, world.uploads.get(trustee, truster));
                }
            }
        }
        // With a configured pre-trusted set, anchor the EigenTrust restart
        // distribution on the K lowest peer ids (honest by construction:
        // adversary units claim peers from the *top* of the id range), so a
        // whitewashed identity cannot inherit propagated trust through the
        // uniform restart. `check()` guarantees the set only combines with
        // the eigentrust scheme and is smaller than the population.
        let pretrusted = world.config.propagation.pretrusted;
        let backend: Box<dyn PropagationBackend> = if pretrusted > 0 {
            Box::new(EigenTrust {
                pre_trusted: (0..pretrusted).collect(),
                ..Default::default()
            })
        } else {
            scheme.backend()
        };
        let reputation = backend.propagate(&graph, &mut world.propagation_rng);
        world.global_reputation = Some(reputation);
        world.propagation_runs += 1;
        // Under `reputation_source = propagated` the service rules read
        // this backend's output instead of the ledger; refresh the mapped
        // cache (a no-op under the default ledger source).
        world.refresh_service_reputation();
    }
}
