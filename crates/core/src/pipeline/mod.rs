//! The step-phase pipeline: one simulation step as a sequence of pluggable
//! phases.
//!
//! The paper's Section-IV protocol executes the same sub-phases every step:
//! action selection → sharing → downloads → editing and voting → utility →
//! Q-learning updates. The monolithic engine used to hard-wire that
//! sequence; here each sub-phase is a [`StepPhase`] trait object operating
//! on the shared [`SimWorld`](crate::world::SimWorld) plus a per-step
//! scratch [`StepContext`], composed by a [`StepPipeline`]:
//!
//! * [`SelectionPhase`] — every agent picks its composite action at the
//!   step's Boltzmann temperature,
//! * [`SharingPhase`] — sharing decisions are applied to the peer registry
//!   and contribution values are recorded,
//! * [`DownloadPhase`] — download requests are collected and each source's
//!   offered upload is allocated under the incentive scheme,
//! * [`EditVotePhase`] — edits are submitted, voted on (gated, weighted and
//!   punished by the scheme) and resolved,
//! * [`UtilityPhase`] — per-peer rewards are computed and evaluation-phase
//!   measurements accumulated,
//! * [`LearningPhase`] — rational agents apply their Q-updates,
//! * [`PropagationPhase`] — (optional, config-gated) periodically
//!   propagates the upload-derived trust graph into a global reputation
//!   vector through the configured
//!   [`PropagationBackend`](collabsim_reputation::propagation::PropagationBackend).
//!
//! **Determinism contract:** phases draw from `world.rng` strictly in
//! pipeline order. Inserting a phase that consumes the step RNG changes
//! every downstream draw; phases with private randomness (like
//! [`PropagationPhase`]) must use their own stream
//! (`world.propagation_rng`). The golden-report test pins the standard
//! pipeline's exact behaviour.
//!
//! Custom phases plug in via [`StepPipeline::push`] /
//! [`StepPipeline::insert`] and
//! [`Simulation::with_pipeline`](crate::engine::Simulation::with_pipeline)
//! without touching the step loop.

mod download;
mod editvote;
mod learning;
mod propagation;
mod selection;
mod sharing;
mod utility;

pub use download::DownloadPhase;
pub use editvote::EditVotePhase;
pub use learning::LearningPhase;
pub use propagation::PropagationPhase;
pub use selection::SelectionPhase;
pub use sharing::SharingPhase;
pub use utility::UtilityPhase;

use crate::action::CollabAction;
use crate::agent::AgentState;
use crate::config::SimulationConfig;
use crate::world::SimWorld;

/// Per-step scratch state handed through the pipeline.
///
/// Earlier phases fill the vectors later phases consume; everything is
/// index-aligned with the peer population and rebuilt each step.
#[derive(Debug, Clone)]
pub struct StepContext {
    /// The step's Boltzmann temperature.
    pub temperature: f64,
    /// The step's simulation time (after the clock tick).
    pub now: u64,
    /// Every agent's observed state at the start of the step
    /// (filled by [`SelectionPhase`]).
    pub current_states: Vec<AgentState>,
    /// Every agent's chosen action (filled by [`SelectionPhase`]).
    pub actions: Vec<CollabAction>,
    /// Bandwidth downloaded by each peer this step
    /// (filled by [`DownloadPhase`]).
    pub downloaded: Vec<f64>,
    /// Highest shared-upload fraction among the sources serving each peer
    /// (filled by [`DownloadPhase`]; a `U_S` observable).
    pub source_upload_seen: Vec<f64>,
    /// Largest bandwidth share each peer obtained at any source
    /// (filled by [`DownloadPhase`]; a `U_S` observable).
    pub bandwidth_share: Vec<f64>,
    /// Successful (winning-side) votes per peer
    /// (filled by [`EditVotePhase`]).
    pub successful_votes: Vec<u32>,
    /// Accepted edits per peer (filled by [`EditVotePhase`]).
    pub accepted_edits: Vec<u32>,
    /// Whether each peer attempted an edit (filled by [`EditVotePhase`]).
    pub attempted_editing: Vec<bool>,
    /// Whether each peer cast a vote (filled by [`EditVotePhase`]).
    pub voted_this_step: Vec<bool>,
    /// Per-peer reward for the step (filled by [`UtilityPhase`], consumed
    /// by [`LearningPhase`]).
    pub rewards: Vec<f64>,
}

impl StepContext {
    /// Fresh scratch state for one step over `population` peers.
    pub fn new(population: usize, temperature: f64, now: u64) -> Self {
        Self {
            temperature,
            now,
            current_states: Vec::with_capacity(population),
            actions: Vec::with_capacity(population),
            downloaded: vec![0.0; population],
            source_upload_seen: vec![0.0; population],
            bandwidth_share: vec![0.0; population],
            successful_votes: vec![0; population],
            accepted_edits: vec![0; population],
            attempted_editing: vec![false; population],
            voted_this_step: vec![false; population],
            rewards: vec![0.0; population],
        }
    }
}

/// One sub-phase of a simulation step.
///
/// Phases are stateless (`&self`): all mutable state lives in the
/// [`SimWorld`] and the per-step [`StepContext`], which keeps a pipeline
/// freely shareable across simulations and threads.
pub trait StepPhase: Send + Sync {
    /// Stable phase name, used in diagnostics and pipeline introspection.
    fn name(&self) -> &'static str;

    /// Executes the phase for the current step.
    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext);
}

/// An ordered sequence of [`StepPhase`]s constituting one simulation step.
pub struct StepPipeline {
    phases: Vec<Box<dyn StepPhase>>,
}

impl StepPipeline {
    /// An empty pipeline (compose with [`StepPipeline::push`]).
    pub fn new() -> Self {
        Self { phases: Vec::new() }
    }

    /// The standard Section-IV pipeline for a configuration: the six
    /// protocol phases, plus the propagation phase when the configuration
    /// enables a propagation backend.
    pub fn standard(config: &SimulationConfig) -> Self {
        let mut pipeline = Self::new();
        pipeline
            .push(SelectionPhase)
            .push(SharingPhase)
            .push(DownloadPhase)
            .push(EditVotePhase)
            .push(UtilityPhase)
            .push(LearningPhase);
        if config.propagation.scheme.is_some() {
            pipeline.push(PropagationPhase);
        }
        pipeline
    }

    /// Appends a phase.
    pub fn push<P: StepPhase + 'static>(&mut self, phase: P) -> &mut Self {
        self.phases.push(Box::new(phase));
        self
    }

    /// Inserts a phase at `index` (0 = first).
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert<P: StepPhase + 'static>(&mut self, index: usize, phase: P) -> &mut Self {
        self.phases.insert(index, Box::new(phase));
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the pipeline has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phase names in execution order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    /// Runs one full step: ticks the clock, builds a fresh [`StepContext`]
    /// and executes every phase in order.
    pub fn run_step(&self, world: &mut SimWorld, temperature: f64) {
        let now = world.clock.tick();
        let mut ctx = StepContext::new(world.population(), temperature, now);
        for phase in &self.phases {
            phase.execute(world, &mut ctx);
        }
    }
}

impl Default for StepPipeline {
    fn default() -> Self {
        Self::standard(&SimulationConfig::default())
    }
}

impl std::fmt::Debug for StepPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPipeline")
            .field("phases", &self.phase_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;
    use collabsim_reputation::propagation::PropagationScheme;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 10,
            initial_articles: 5,
            phases: PhaseConfig {
                training_steps: 30,
                evaluation_steps: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn standard_pipeline_has_the_six_protocol_phases() {
        let pipeline = StepPipeline::standard(&quick_config());
        assert_eq!(
            pipeline.phase_names(),
            vec![
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning"
            ]
        );
    }

    #[test]
    fn propagation_phase_is_added_when_configured() {
        let mut config = quick_config();
        config.propagation.scheme = Some(PropagationScheme::EigenTrust);
        let pipeline = StepPipeline::standard(&config);
        assert_eq!(pipeline.len(), 7);
        assert_eq!(pipeline.phase_names().last(), Some(&"propagation"));
    }

    #[test]
    fn custom_phases_can_be_inserted_without_touching_the_loop() {
        struct CountingPhase;
        impl StepPhase for CountingPhase {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn execute(&self, world: &mut SimWorld, _ctx: &mut StepContext) {
                // Abuses propagation_runs as a visible counter.
                world.propagation_runs += 1;
            }
        }
        let mut pipeline = StepPipeline::standard(&quick_config());
        pipeline.insert(0, CountingPhase);
        assert_eq!(pipeline.phase_names()[0], "counting");
        let mut world = SimWorld::new(quick_config());
        pipeline.run_step(&mut world, 1.0);
        pipeline.run_step(&mut world, 1.0);
        assert_eq!(world.propagation_runs, 2);
        assert_eq!(world.clock.now(), 2);
    }

    #[test]
    fn context_vectors_are_population_sized() {
        let ctx = StepContext::new(7, 1.0, 3);
        assert_eq!(ctx.downloaded.len(), 7);
        assert_eq!(ctx.rewards.len(), 7);
        assert_eq!(ctx.now, 3);
        assert_eq!(ctx.temperature, 1.0);
        assert!(ctx.actions.is_empty(), "selection fills actions");
    }

    #[test]
    fn empty_pipeline_still_ticks_the_clock() {
        let pipeline = StepPipeline::new();
        assert!(pipeline.is_empty());
        let mut world = SimWorld::new(quick_config());
        pipeline.run_step(&mut world, 1.0);
        assert_eq!(world.clock.now(), 1);
    }
}
