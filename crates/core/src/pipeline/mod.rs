//! The step-phase pipeline: one simulation step as a sequence of pluggable
//! phases.
//!
//! The paper's Section-IV protocol executes the same sub-phases every step:
//! action selection → sharing → downloads → editing and voting → utility →
//! Q-learning updates. The monolithic engine used to hard-wire that
//! sequence; here each sub-phase is a [`StepPhase`] trait object operating
//! on the shared [`SimWorld`] plus a per-step
//! scratch [`StepContext`], composed by a [`StepPipeline`]:
//!
//! * [`SelectionPhase`] — every agent picks its composite action at the
//!   step's Boltzmann temperature,
//! * [`SharingPhase`] — sharing decisions are applied to the peer registry
//!   and contribution values are recorded (collect-then-apply: parallel
//!   workers bucket `ContributionDelta`s per ledger shard, the sharded
//!   ledger applies them — bit-identical at any worker count),
//! * [`DownloadPhase`] — download requests are collected and each source's
//!   offered upload is allocated under the incentive scheme,
//! * [`EditVotePhase`] — edits are submitted, voted on (gated, weighted and
//!   punished by the scheme) and resolved,
//! * [`UtilityPhase`] — per-peer rewards are computed and evaluation-phase
//!   measurements accumulated,
//! * [`LearningPhase`] — rational agents apply their Q-updates,
//! * [`PropagationPhase`] — (optional, config-gated) periodically
//!   propagates the upload-derived trust graph into a global reputation
//!   vector through the configured
//!   [`PropagationBackend`](collabsim_reputation::propagation::PropagationBackend),
//! * [`ChurnPhase`] — (optional, spec-gated) applies the configured churn
//!   model between steps: departures, re-entries and whitewashes over the
//!   peer arena, drawing from its own stream (`world.churn_rng`),
//! * [`AdversaryPhase`](crate::adversary::AdversaryPhase) — (optional,
//!   spec-gated) runs the configured strategic adversary units against a
//!   read-only view of the post-churn world and applies their actions
//!   (forced free-riding, timed whitewashes, departures with scheduled
//!   re-entries), on its own stream (`world.adversary_rng`).
//!
//! **Determinism contract:** phases draw from `world.rng` strictly in
//! pipeline order. Inserting a phase that consumes the step RNG changes
//! every downstream draw; phases with private randomness (like
//! [`PropagationPhase`], [`ChurnPhase`] and the adversary phase) must use
//! their own stream (`world.propagation_rng` / `world.churn_rng` /
//! `world.adversary_rng`). The network-fault layer inside
//! [`DownloadPhase`] follows the same rule on `world.net_rng`
//! (connection-state transitions and per-grant loss draws, both in the
//! phase's sequential sections so thread-count invariance holds for every
//! link model); the ideal model draws nothing from it, which is what
//! keeps the default configuration bit-identical to a fault-unaware
//! build. The golden-report test pins the standard pipeline's exact
//! behaviour.
//!
//! Pipelines are assembled by resolving an ordered list of phase *names*
//! against a [`PhaseRegistry`] — [`StepPipeline::standard`] is the default
//! name list of a configuration resolved against
//! [`PhaseRegistry::standard`], and a
//! [`ScenarioSpec`](crate::spec::ScenarioSpec) carries its own list, so
//! custom phases plug in by [`PhaseRegistry::register`] + a spec naming
//! them (or imperatively via [`StepPipeline::push`] /
//! [`StepPipeline::insert`]) without touching the step loop.

mod churn;
mod download;
mod editvote;
mod learning;
mod propagation;
mod registry;
mod selection;
mod sharing;
mod utility;

pub use churn::ChurnPhase;
pub use download::{allocate_grants, DownloadPhase, GrantBatch, RequestTable, TransferTables};
pub use editvote::{EditVotePhase, VoteScratch};
pub use learning::LearningPhase;
pub use propagation::PropagationPhase;
pub use registry::{PhaseFactory, PhaseRegistry};
pub use selection::{BoltzmannCache, SelectionPhase};
pub use sharing::SharingPhase;
pub use utility::UtilityPhase;

use crate::action::CollabAction;
use crate::agent::AgentState;
use crate::config::SimulationConfig;
use crate::observer::{StepObserver, WorldView};
use crate::world::SimWorld;
use collabsim_netsim::peer::PeerId;
use collabsim_reputation::sharded::DeltaBatch;
use std::time::{Duration, Instant};

/// The precomputed effect of one peer's sharing decision: how many of its
/// held articles it will offer (the store installs that prefix of the
/// peer's sorted held list). Collected per shard (possibly in parallel)
/// by [`SharingPhase`], drained sequentially in its apply stage.
pub type OfferPlan = (PeerId, usize);

/// Cumulative per-phase wall-clock totals, recorded by
/// [`StepPipeline::run_step_into`] when enabled.
///
/// Timing is pure observation: enabling it cannot change simulation
/// results. Totals accumulate across steps (they survive
/// [`StepContext::reset`]) so a whole run can be profiled with one enable
/// call — `collabsim-bench`'s `scale_population` binary reports them per
/// population tier.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    enabled: bool,
    entries: Vec<(&'static str, Duration, u64)>,
}

impl PhaseTimings {
    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `elapsed` to the phase's total.
    pub fn record(&mut self, phase: &'static str, elapsed: Duration) {
        if let Some(entry) = self.entries.iter_mut().find(|(name, _, _)| *name == phase) {
            entry.1 += elapsed;
            entry.2 += 1;
        } else {
            self.entries.push((phase, elapsed, 1));
        }
    }

    /// `(phase name, total wall-clock, executions)` in first-seen order.
    pub fn totals(&self) -> &[(&'static str, Duration, u64)] {
        &self.entries
    }

    /// Total wall-clock across all phases.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d, _)| *d).sum()
    }

    /// Drops all recorded totals (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Per-step scratch state handed through the pipeline.
///
/// Earlier phases fill the vectors later phases consume; everything is
/// index-aligned with the peer population and rebuilt each step.
#[derive(Debug, Clone)]
pub struct StepContext {
    /// The step's Boltzmann temperature.
    pub temperature: f64,
    /// The step's simulation time (after the clock tick).
    pub now: u64,
    /// Every agent's observed state at the start of the step
    /// (filled by [`SelectionPhase`]).
    pub current_states: Vec<AgentState>,
    /// Every agent's chosen action (filled by [`SelectionPhase`]).
    pub actions: Vec<CollabAction>,
    /// Bandwidth downloaded by each peer this step
    /// (filled by [`DownloadPhase`]).
    pub downloaded: Vec<f64>,
    /// Highest shared-upload fraction among the sources serving each peer
    /// (filled by [`DownloadPhase`]; a `U_S` observable).
    pub source_upload_seen: Vec<f64>,
    /// Largest bandwidth share each peer obtained at any source
    /// (filled by [`DownloadPhase`]; a `U_S` observable).
    pub bandwidth_share: Vec<f64>,
    /// Successful (winning-side) votes per peer
    /// (filled by [`EditVotePhase`]).
    pub successful_votes: Vec<u32>,
    /// Accepted edits per peer (filled by [`EditVotePhase`]).
    pub accepted_edits: Vec<u32>,
    /// Whether each peer attempted an edit (filled by [`EditVotePhase`]).
    pub attempted_editing: Vec<bool>,
    /// Whether each peer cast a vote (filled by [`EditVotePhase`]).
    pub voted_this_step: Vec<bool>,
    /// Per-peer reward for the step (filled by [`UtilityPhase`], consumed
    /// by [`LearningPhase`]).
    pub rewards: Vec<f64>,
    /// Shard-bucketed sharing-contribution deltas (collect stage of
    /// [`SharingPhase`]; applied to the ledger at the end of the phase).
    pub sharing_deltas: DeltaBatch,
    /// Shard-bucketed editing-contribution deltas (collect stage of
    /// [`EditVotePhase`]).
    pub editing_deltas: DeltaBatch,
    /// Per-shard offered-article plans (collect stage of [`SharingPhase`];
    /// drained by its apply stage, so steady-state steps reuse the
    /// capacity instead of reallocating).
    pub offer_plans: Vec<Vec<OfferPlan>>,
    /// The transfer engine's reusable request/grant tables
    /// (collect → allocate ∥ → apply scratch of [`DownloadPhase`]; fully
    /// rewritten by the phase each step).
    pub transfers: TransferTables,
    /// The reusable per-edit voter-pool buffers of [`EditVotePhase`]
    /// (fully rewritten for every edit).
    pub vote_scratch: VoteScratch,
    /// The selection phase's per-state Boltzmann distribution cache.
    /// Purely a memoisation of `boltzmann_distribution` results — it
    /// survives [`StepContext::reset`] (entries are invalidated by
    /// temperature or Q-row changes, not by step boundaries) and can never
    /// change simulation results.
    pub boltzmann: BoltzmannCache,
    /// Optional per-phase wall-clock instrumentation; accumulates across
    /// steps and survives [`StepContext::reset`].
    pub timings: PhaseTimings,
}

impl StepContext {
    /// Fresh scratch state for one step over `population` peers.
    pub fn new(population: usize, temperature: f64, now: u64) -> Self {
        Self {
            temperature,
            now,
            current_states: Vec::with_capacity(population),
            actions: Vec::with_capacity(population),
            downloaded: vec![0.0; population],
            source_upload_seen: vec![0.0; population],
            bandwidth_share: vec![0.0; population],
            successful_votes: vec![0; population],
            accepted_edits: vec![0; population],
            attempted_editing: vec![false; population],
            voted_this_step: vec![false; population],
            rewards: vec![0.0; population],
            sharing_deltas: DeltaBatch::default(),
            editing_deltas: DeltaBatch::default(),
            offer_plans: Vec::new(),
            transfers: TransferTables::default(),
            vote_scratch: VoteScratch::default(),
            boltzmann: BoltzmannCache::default(),
            timings: PhaseTimings::default(),
        }
    }

    /// Re-initialises the context for the next step without giving up any
    /// allocation: every per-peer vector is cleared and refilled in place,
    /// and the delta batches keep their bucket capacity. After a reset the
    /// observable state is exactly that of a fresh
    /// [`StepContext::new`] (timings excepted — they accumulate), which is
    /// what lets the engine reuse one context across all steps of a run.
    pub fn reset(&mut self, population: usize, temperature: f64, now: u64) {
        self.temperature = temperature;
        self.now = now;
        self.current_states.clear();
        self.actions.clear();
        reset_values(&mut self.downloaded, population, 0.0);
        reset_values(&mut self.source_upload_seen, population, 0.0);
        reset_values(&mut self.bandwidth_share, population, 0.0);
        reset_values(&mut self.successful_votes, population, 0);
        reset_values(&mut self.accepted_edits, population, 0);
        reset_values(&mut self.attempted_editing, population, false);
        reset_values(&mut self.voted_this_step, population, false);
        reset_values(&mut self.rewards, population, 0.0);
        self.sharing_deltas.clear();
        self.editing_deltas.clear();
        for plan in &mut self.offer_plans {
            plan.clear();
        }
    }
}

/// Clears and refills a per-peer vector in place.
fn reset_values<T: Copy>(values: &mut Vec<T>, population: usize, value: T) {
    values.clear();
    values.resize(population, value);
}

/// Splits `population` peers into `workers` contiguous, near-even ranges,
/// returned as ascending bounds `[0, …, population]` — the shard layout the
/// utility and learning phases hand to
/// [`AccumulatorTable::split_mut`](crate::world::AccumulatorTable::split_mut)
/// and [`AgentTable::split_mut`](crate::agent_table::AgentTable::split_mut).
/// The bounds depend only on `(population, workers)`, and because each
/// peer's work is independent the split can never change results.
pub(crate) fn worker_bounds(population: usize, workers: usize) -> Vec<usize> {
    let workers = workers.clamp(1, population.max(1));
    let per_worker = population.div_ceil(workers);
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0);
    for w in 1..=workers {
        bounds.push((w * per_worker).min(population));
    }
    bounds
}

/// One sub-phase of a simulation step.
///
/// Phases are stateless (`&self`): all mutable state lives in the
/// [`SimWorld`] and the per-step [`StepContext`], which keeps a pipeline
/// freely shareable across simulations and threads.
pub trait StepPhase: Send + Sync {
    /// Stable phase name, used in diagnostics and pipeline introspection.
    fn name(&self) -> &'static str;

    /// Executes the phase for the current step.
    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext);
}

/// An ordered sequence of [`StepPhase`]s constituting one simulation step.
pub struct StepPipeline {
    phases: Vec<Box<dyn StepPhase>>,
}

impl StepPipeline {
    /// An empty pipeline (compose with [`StepPipeline::push`]).
    pub fn new() -> Self {
        Self { phases: Vec::new() }
    }

    /// The standard pipeline for a configuration: the default phase-name
    /// order of [`crate::spec::default_phase_names`] (the six Section-IV
    /// protocol phases, preceded by churn and followed by propagation when
    /// the configuration enables them) resolved against
    /// [`PhaseRegistry::standard`].
    pub fn standard(config: &SimulationConfig) -> Self {
        PhaseRegistry::standard()
            .build_pipeline(&crate::spec::default_phase_names(config), config)
            .expect("standard phases are always registered")
    }

    /// Appends a phase.
    pub fn push<P: StepPhase + 'static>(&mut self, phase: P) -> &mut Self {
        self.phases.push(Box::new(phase));
        self
    }

    /// Appends an already-boxed phase (what [`PhaseRegistry`] factories
    /// produce).
    pub fn push_boxed(&mut self, phase: Box<dyn StepPhase>) -> &mut Self {
        self.phases.push(phase);
        self
    }

    /// Inserts a phase at `index` (0 = first).
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert<P: StepPhase + 'static>(&mut self, index: usize, phase: P) -> &mut Self {
        self.phases.insert(index, Box::new(phase));
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the pipeline has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phase names in execution order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    /// Runs one full step: ticks the clock, builds a fresh [`StepContext`]
    /// and executes every phase in order.
    ///
    /// Allocates a context per call; step loops should prefer
    /// [`StepPipeline::run_step_into`] with a reused context.
    pub fn run_step(&self, world: &mut SimWorld, temperature: f64) {
        let mut ctx = StepContext::new(world.population(), temperature, 0);
        self.run_step_into(world, temperature, &mut ctx);
    }

    /// Runs one full step into a caller-owned (reusable) context: ticks
    /// the clock, resets `ctx` in place and executes every phase in order,
    /// recording per-phase wall-clock when `ctx.timings` is enabled.
    pub fn run_step_into(&self, world: &mut SimWorld, temperature: f64, ctx: &mut StepContext) {
        self.run_step_observed(world, temperature, ctx, &mut []);
    }

    /// [`StepPipeline::run_step_into`] with observer callbacks: after every
    /// phase each [`StepObserver`] receives the phase name, its wall-clock
    /// time and a read-only [`WorldView`]; after the last phase the
    /// step-end callback fires. Observers only read, so observation can
    /// never change simulation results.
    pub fn run_step_observed(
        &self,
        world: &mut SimWorld,
        temperature: f64,
        ctx: &mut StepContext,
        observers: &mut [Box<dyn StepObserver>],
    ) {
        let now = world.clock.tick();
        ctx.reset(world.population(), temperature, now);
        if ctx.timings.enabled() || !observers.is_empty() {
            for phase in &self.phases {
                let started = Instant::now();
                phase.execute(world, ctx);
                let elapsed = started.elapsed();
                if ctx.timings.enabled() {
                    ctx.timings.record(phase.name(), elapsed);
                }
                for observer in observers.iter_mut() {
                    observer.on_phase(phase.name(), elapsed, WorldView::new(world), ctx);
                }
            }
        } else {
            for phase in &self.phases {
                phase.execute(world, ctx);
            }
        }
        for observer in observers.iter_mut() {
            observer.on_step_end(WorldView::new(world), ctx);
        }
    }
}

impl Default for StepPipeline {
    fn default() -> Self {
        Self::standard(&SimulationConfig::default())
    }
}

impl std::fmt::Debug for StepPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPipeline")
            .field("phases", &self.phase_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;
    use collabsim_reputation::propagation::PropagationScheme;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 10,
            initial_articles: 5,
            phases: PhaseConfig {
                training_steps: 30,
                evaluation_steps: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn standard_pipeline_has_the_six_protocol_phases() {
        let pipeline = StepPipeline::standard(&quick_config());
        assert_eq!(
            pipeline.phase_names(),
            vec![
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning"
            ]
        );
    }

    #[test]
    fn propagation_phase_is_added_when_configured() {
        let mut config = quick_config();
        config.propagation.scheme = Some(PropagationScheme::EigenTrust);
        let pipeline = StepPipeline::standard(&config);
        assert_eq!(pipeline.len(), 7);
        assert_eq!(pipeline.phase_names().last(), Some(&"propagation"));
    }

    #[test]
    fn custom_phases_can_be_inserted_without_touching_the_loop() {
        struct CountingPhase;
        impl StepPhase for CountingPhase {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn execute(&self, world: &mut SimWorld, _ctx: &mut StepContext) {
                // Abuses propagation_runs as a visible counter.
                world.propagation_runs += 1;
            }
        }
        let mut pipeline = StepPipeline::standard(&quick_config());
        pipeline.insert(0, CountingPhase);
        assert_eq!(pipeline.phase_names()[0], "counting");
        let mut world = SimWorld::new(quick_config());
        pipeline.run_step(&mut world, 1.0);
        pipeline.run_step(&mut world, 1.0);
        assert_eq!(world.propagation_runs, 2);
        assert_eq!(world.clock.now(), 2);
    }

    #[test]
    fn context_vectors_are_population_sized() {
        let ctx = StepContext::new(7, 1.0, 3);
        assert_eq!(ctx.downloaded.len(), 7);
        assert_eq!(ctx.rewards.len(), 7);
        assert_eq!(ctx.now, 3);
        assert_eq!(ctx.temperature, 1.0);
        assert!(ctx.actions.is_empty(), "selection fills actions");
    }

    #[test]
    fn context_reset_restores_fresh_per_step_state() {
        let mut ctx = StepContext::new(5, 1.0, 1);
        ctx.downloaded[3] = 2.5;
        ctx.successful_votes[0] = 7;
        ctx.attempted_editing[4] = true;
        ctx.rewards[2] = -1.0;
        let capacity_before = ctx.downloaded.capacity();
        ctx.reset(5, 2.0, 9);
        let fresh = StepContext::new(5, 2.0, 9);
        assert_eq!(ctx.downloaded, fresh.downloaded);
        assert_eq!(ctx.successful_votes, fresh.successful_votes);
        assert_eq!(ctx.attempted_editing, fresh.attempted_editing);
        assert_eq!(ctx.rewards, fresh.rewards);
        assert_eq!(ctx.temperature, 2.0);
        assert_eq!(ctx.now, 9);
        assert!(ctx.actions.is_empty() && ctx.current_states.is_empty());
        assert_eq!(
            ctx.downloaded.capacity(),
            capacity_before,
            "reuse, not realloc"
        );
        // A reset can also resize for a different population.
        ctx.reset(8, 1.0, 10);
        assert_eq!(ctx.rewards.len(), 8);
    }

    #[test]
    fn reused_context_reproduces_fresh_context_stepping() {
        let config = quick_config();
        let pipeline = StepPipeline::standard(&config);
        let mut world_fresh = SimWorld::new(config.clone());
        let mut world_reused = SimWorld::new(config);
        let mut ctx = StepContext::new(world_reused.population(), 0.0, 0);
        for _ in 0..20 {
            pipeline.run_step(&mut world_fresh, 1.0);
            pipeline.run_step_into(&mut world_reused, 1.0, &mut ctx);
        }
        assert_eq!(world_fresh.clock.now(), world_reused.clock.now());
        for p in 0..world_fresh.population() {
            assert_eq!(
                world_fresh.ledger.sharing_reputation(p),
                world_reused.ledger.sharing_reputation(p)
            );
            assert_eq!(
                world_fresh.ledger.editing_reputation(p),
                world_reused.ledger.editing_reputation(p)
            );
        }
    }

    #[test]
    fn phase_timings_record_every_phase_once_per_step() {
        let config = quick_config();
        let pipeline = StepPipeline::standard(&config);
        let mut world = SimWorld::new(config);
        let mut ctx = StepContext::new(world.population(), 0.0, 0);
        assert!(!ctx.timings.enabled());
        ctx.timings.enable();
        pipeline.run_step_into(&mut world, 1.0, &mut ctx);
        pipeline.run_step_into(&mut world, 1.0, &mut ctx);
        let totals = ctx.timings.totals();
        let names: Vec<&str> = totals.iter().map(|&(name, _, _)| name).collect();
        assert_eq!(names, pipeline.phase_names(), "one entry per phase");
        assert!(totals.iter().all(|&(_, _, count)| count == 2));
        assert!(ctx.timings.total() >= totals[0].1);
        ctx.timings.clear();
        assert!(ctx.timings.totals().is_empty());
        assert!(ctx.timings.enabled(), "clear keeps the flag");
    }

    #[test]
    fn empty_pipeline_still_ticks_the_clock() {
        let pipeline = StepPipeline::new();
        assert!(pipeline.is_empty());
        let mut world = SimWorld::new(quick_config());
        pipeline.run_step(&mut world, 1.0);
        assert_eq!(world.clock.now(), 1);
    }
}
