//! Phase 1 — action selection.

use super::{StepContext, StepPhase};
use crate::agent::AgentState;
use crate::world::SimWorld;

/// Every agent observes its state (reputation bucket) and picks its
/// composite action: rational agents sample the Boltzmann distribution over
/// their Q-values at the step temperature, altruistic and irrational agents
/// return their fixed actions.
///
/// Fills [`StepContext::current_states`] and [`StepContext::actions`].
pub struct SelectionPhase;

impl StepPhase for SelectionPhase {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let current_states: Vec<AgentState> =
            (0..population).map(|p| world.agent_state(p)).collect();
        for (agent, &state) in world.agents.iter_mut().zip(current_states.iter()) {
            let action = agent.choose(state, ctx.temperature, &mut world.rng);
            ctx.actions.push(action);
        }
        ctx.current_states = current_states;
    }
}
