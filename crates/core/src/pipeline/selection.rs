//! Phase 1 — action selection.

use super::{StepContext, StepPhase};
use crate::action::CollabAction;
use crate::agent::AgentState;
use crate::world::SimWorld;

/// Every *online* agent observes its state (reputation bucket) and picks
/// its composite action: rational agents sample the Boltzmann distribution
/// over their Q-values at the step temperature, altruistic and irrational
/// agents return their fixed actions. Offline peers (departed under churn)
/// record [`CollabAction::idle`] without consuming any randomness, so a
/// churn-free run draws exactly as before.
///
/// Fills [`StepContext::current_states`] and [`StepContext::actions`].
pub struct SelectionPhase;

impl StepPhase for SelectionPhase {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let current_states: Vec<AgentState> =
            (0..population).map(|p| world.agent_state(p)).collect();
        for (p, (agent, &state)) in world
            .agents
            .iter_mut()
            .zip(current_states.iter())
            .enumerate()
        {
            let action = if world
                .peers
                .peer(collabsim_netsim::peer::PeerId(p as u32))
                .online
            {
                agent.choose(state, ctx.temperature, &mut world.rng)
            } else {
                CollabAction::idle()
            };
            ctx.actions.push(action);
        }
        ctx.current_states = current_states;
    }
}
