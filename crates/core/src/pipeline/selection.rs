//! Phase 1 — action selection.

use super::{StepContext, StepPhase};
use crate::action::CollabAction;
use crate::agent::AgentState;
use crate::world::SimWorld;
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_rl::boltzmann::{boltzmann_distribution_into, sample_probs};

/// Every *online* agent observes its state (reputation bucket) and picks
/// its composite action: rational agents sample the Boltzmann distribution
/// over their Q-values at the step temperature, altruistic and irrational
/// agents return their fixed actions. Offline peers (departed under churn)
/// keep the pre-filled [`CollabAction::idle`] without being visited at all
/// — the phase iterates the online bitset, so a churn-free run draws
/// exactly as before and offline peers cost nothing. Peers under a forced
/// adversary action (set by the `adversary` phase this step) record that
/// action instead of consulting their agent — likewise without consuming
/// any randomness, so a run without adversaries draws exactly as before.
///
/// Fills [`StepContext::current_states`] and [`StepContext::actions`] in
/// place (no per-step allocation in steady state).
pub struct SelectionPhase;

/// Memoises Boltzmann distributions per state bucket for the selection
/// phase.
///
/// Rational peers in the same state bucket with bit-identical Q-rows (all
/// of them during training, cohorts of never-updated rows during
/// evaluation) share one distribution instead of recomputing 27
/// exponentials each. Correctness does not depend on hit rate: an entry is
/// only reused when the stored temperature bits *and* the full Q-row bits
/// match, and the cached vector is exactly what
/// [`boltzmann_distribution_into`] would produce, so the sampled stream is
/// bit-identical to the uncached policy.
#[derive(Debug, Clone, Default)]
pub struct BoltzmannCache {
    temperature: f64,
    temperature_bits: u64,
    /// Whether the temperature takes `boltzmann_distribution`'s uniform
    /// shortcut (the training phase's `T = f64::MAX`), where the
    /// distribution is `1/n` for *any* Q-row.
    uniform: bool,
    uniform_probs: Vec<f64>,
    entries: Vec<CacheEntry>,
}

#[derive(Debug, Clone, Default)]
struct CacheEntry {
    valid: bool,
    row: Vec<f64>,
    probs: Vec<f64>,
}

impl BoltzmannCache {
    /// Prepares the cache for one step over `buckets` state buckets and
    /// `actions` actions at the step temperature; a temperature change
    /// invalidates every entry.
    pub fn begin_step(&mut self, buckets: usize, actions: usize, temperature: f64) {
        if self.entries.len() != buckets {
            self.entries.clear();
            self.entries.resize_with(buckets, CacheEntry::default);
        }
        if temperature.to_bits() != self.temperature_bits {
            self.temperature = temperature;
            self.temperature_bits = temperature.to_bits();
            for entry in &mut self.entries {
                entry.valid = false;
            }
        }
        // Mirror of the uniform shortcut inside `boltzmann_distribution`:
        // under it the distribution is exactly `1/n` regardless of the
        // Q-row, so one shared vector serves every draw of the step.
        self.uniform = !temperature.is_finite() || temperature >= 1e300;
        if self.uniform && self.uniform_probs.len() != actions {
            self.uniform_probs.clear();
            self.uniform_probs.resize(actions, 1.0 / actions as f64);
        }
    }

    /// Samples an action index from the Boltzmann distribution over `row`
    /// at the step temperature, consuming exactly one `next_u64` — the
    /// same draw [`BoltzmannPolicy::select_action`] performs.
    ///
    /// [`BoltzmannPolicy::select_action`]: collabsim_rl::boltzmann::BoltzmannPolicy
    #[inline]
    pub fn sample(&mut self, bucket: usize, row: &[f64], rng: &mut dyn rand::RngCore) -> usize {
        if self.uniform {
            return sample_probs(&self.uniform_probs, rng);
        }
        let entry = &mut self.entries[bucket];
        let hit = entry.valid
            && entry.row.len() == row.len()
            && entry
                .row
                .iter()
                .zip(row)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !hit {
            boltzmann_distribution_into(row, self.temperature, &mut entry.probs);
            entry.row.clear();
            entry.row.extend_from_slice(row);
            entry.valid = true;
        }
        sample_probs(&entry.probs, rng)
    }
}

impl StepPhase for SelectionPhase {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        // Pre-fill in place: offline peers keep the idle action and a
        // placeholder state (no downstream phase reads an offline peer's
        // state — utility and learning skip them via the same bitset).
        ctx.actions.clear();
        ctx.actions.resize(population, CollabAction::idle());
        ctx.current_states.clear();
        ctx.current_states
            .resize(population, AgentState { bucket: 0 });
        ctx.boltzmann.begin_step(
            world.agents.state_count(),
            world.agents.action_count(),
            ctx.temperature,
        );

        // Split the world borrow: the loop reads the ledger/propagation
        // state, streams the agent table and draws from the step RNG.
        let SimWorld {
            agents,
            active,
            adversaries,
            rng,
            ledger,
            propagated_service_reputation,
            config,
            states,
            ..
        } = world;
        let propagated = propagated_service_reputation.as_deref();
        let min_reputation = config.min_reputation;
        let states = *states;
        let ledger = &*ledger;

        for p in active.iter_online() {
            let reputation = match propagated {
                Some(values) => values[p],
                None => ledger.sharing_reputation(p),
            };
            let state = AgentState::from_reputation(reputation, min_reputation, states);
            ctx.current_states[p] = state;
            let action = if let Some(forced) = adversaries.forced_action(p) {
                // A forced peer does not consult its agent and records no
                // choice (its learner is suspended while the strategy
                // drives) — and consumes no randomness.
                adversaries.note_forced(p);
                forced
            } else {
                match agents.behavior(p) {
                    BehaviorType::Altruistic => {
                        let action = CollabAction::altruistic();
                        agents.record_choice(p, state.bucket, action.to_index());
                        action
                    }
                    BehaviorType::Irrational => {
                        let action = CollabAction::irrational();
                        agents.record_choice(p, state.bucket, action.to_index());
                        action
                    }
                    BehaviorType::Rational => {
                        let row = agents.q_row(p, state.bucket);
                        let index = ctx.boltzmann.sample(state.bucket, row, rng);
                        agents.record_choice(p, state.bucket, index);
                        CollabAction::from_index(index)
                    }
                }
            };
            ctx.actions[p] = action;
        }
    }
}
