//! Phase 1 — action selection.

use super::{StepContext, StepPhase};
use crate::action::CollabAction;
use crate::agent::AgentState;
use crate::world::SimWorld;

/// Every *online* agent observes its state (reputation bucket) and picks
/// its composite action: rational agents sample the Boltzmann distribution
/// over their Q-values at the step temperature, altruistic and irrational
/// agents return their fixed actions. Offline peers (departed under churn)
/// record [`CollabAction::idle`] without consuming any randomness, so a
/// churn-free run draws exactly as before. Peers under a forced adversary
/// action (set by the `adversary` phase this step) record that action
/// instead of consulting their agent — likewise without consuming any
/// randomness, so a run without adversaries draws exactly as before.
///
/// Fills [`StepContext::current_states`] and [`StepContext::actions`].
pub struct SelectionPhase;

impl StepPhase for SelectionPhase {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let current_states: Vec<AgentState> =
            (0..population).map(|p| world.agent_state(p)).collect();
        for (p, (agent, &state)) in world
            .agents
            .iter_mut()
            .zip(current_states.iter())
            .enumerate()
        {
            let online = world
                .peers
                .peer(collabsim_netsim::peer::PeerId(p as u32))
                .online;
            let action = if !online {
                CollabAction::idle()
            } else if let Some(forced) = world.adversaries.forced_action(p) {
                world.adversaries.note_forced(p);
                forced
            } else {
                agent.choose(state, ctx.temperature, &mut world.rng)
            };
            ctx.actions.push(action);
        }
        ctx.current_states = current_states;
    }
}
