//! Phase 3 — downloads and bandwidth allocation.

use super::{StepContext, StepPhase};
use crate::config::DownloadRate;
use crate::world::SimWorld;
use collabsim_netsim::bandwidth::DownloadRequest;
use collabsim_netsim::dht::DhtKey;
use collabsim_netsim::peer::PeerId;
use collabsim_netsim::transfer::TransferStatus;
use rand::Rng;
use std::collections::HashMap;

/// Collects download requests (continuing in-flight transfers, starting new
/// ones probabilistically) and allocates every source's offered upload
/// bandwidth among its competitors under the configured incentive scheme.
///
/// Fills [`StepContext::downloaded`], [`StepContext::source_upload_seen`]
/// and [`StepContext::bandwidth_share`].
pub struct DownloadPhase;

impl StepPhase for DownloadPhase {
    fn name(&self) -> &'static str {
        "download"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let now = ctx.now;
        let sharing_peers = world.peers.sharing_peers();
        let download_probability = match world.config.download_probability {
            DownloadRate::Fixed(p) => p,
            DownloadRate::InverseSharers => {
                if sharing_peers.is_empty() {
                    0.0
                } else {
                    1.0 / sharing_peers.len() as f64
                }
            }
        };

        // Download sources must actually offer upload bandwidth this step:
        // the paper's competition is over "the source's upload bandwidth",
        // so a peer offering only stored articles cannot serve a transfer.
        let upload_sources: Vec<PeerId> = sharing_peers
            .iter()
            .copied()
            .filter(|&s| world.peers.peer(s).offered_upload() > 0.0)
            .collect();
        // The source draw below excludes the downloader via binary search,
        // which needs this list sorted by peer id. `sharing_peers()`
        // iterates the registry in id order today; if churn or registry
        // reordering ever changes that, this must fail loudly instead of
        // silently letting peers pick themselves as sources.
        debug_assert!(
            upload_sources.windows(2).all(|w| w[0] < w[1]),
            "upload sources must be sorted by peer id"
        );

        // Collect download requests per source.
        let mut requests_by_source: HashMap<PeerId, Vec<DownloadRequest>> = HashMap::new();
        let mut request_transfer: HashMap<(PeerId, PeerId), u64> = HashMap::new();
        for p in 0..population {
            let downloader = PeerId(p as u32);
            // Continue an in-flight transfer if its source still offers
            // bandwidth; otherwise abandon it and look for a new source.
            let mut source: Option<PeerId> = None;
            if let Some(tid) = world.active_transfer[p] {
                let t = world.transfers.transfer(tid);
                if t.status == TransferStatus::InProgress
                    && world.peers.peer(t.source).offered_upload() > 0.0
                {
                    source = Some(t.source);
                    request_transfer.insert((downloader, t.source), tid);
                } else {
                    if t.status == TransferStatus::InProgress {
                        world.transfers.cancel(tid, now);
                    }
                    world.active_transfer[p] = None;
                }
            }
            // Otherwise maybe start a new download. The source is a
            // uniform choice among the upload sources other than the
            // downloader itself; instead of materialising that filtered
            // candidate list (O(sources) allocation per peer — the
            // pre-shard scaling bottleneck of this phase), the index is
            // drawn directly and mapped over the downloader's position in
            // the sorted source list. Same single `gen_range` draw over
            // the same count, same chosen peer, so the RNG stream and the
            // trajectory are bit-identical to the list-based code.
            if source.is_none()
                && !upload_sources.is_empty()
                && download_probability > 0.0
                && world.rng.gen_bool(download_probability.min(1.0))
            {
                let own_position = upload_sources.binary_search(&downloader);
                let candidates = upload_sources.len() - usize::from(own_position.is_ok());
                if candidates > 0 {
                    let mut index = world.rng.gen_range(0..candidates);
                    if let Ok(position) = own_position {
                        if index >= position {
                            index += 1;
                        }
                    }
                    let chosen = upload_sources[index];
                    let article = world.pick_article_to_download(downloader, chosen);
                    let tid = world.transfers.start(downloader, chosen, article, now);
                    world.active_transfer[p] = Some(tid);
                    request_transfer.insert((downloader, chosen), tid);
                    source = Some(chosen);
                }
            }
            if let Some(src) = source {
                requests_by_source
                    .entry(src)
                    .or_default()
                    .push(DownloadRequest {
                        downloader,
                        sharing_reputation: world.ledger.sharing_reputation(p),
                        download_capacity: world.peers.peer(downloader).download_capacity,
                        uploaded_to_source: world.uploads.get(p, src.index()),
                    });
            }
        }

        // Allocate each source's offered upload among its downloaders.
        let mut sources: Vec<PeerId> = requests_by_source.keys().copied().collect();
        sources.sort_unstable();
        for source in sources {
            let requests = &requests_by_source[&source];
            let offered = world.peers.peer(source).offered_upload();
            let allocations = world.allocator.allocate(offered, requests);
            for allocation in allocations {
                let d = allocation.downloader.index();
                ctx.downloaded[d] += allocation.bandwidth;
                ctx.source_upload_seen[d] = world
                    .peers
                    .peer(source)
                    .shared_upload_fraction
                    .max(ctx.source_upload_seen[d]);
                ctx.bandwidth_share[d] = ctx.bandwidth_share[d].max(allocation.share);
                world.uploads.add(source.index(), d, allocation.bandwidth);
                if let Some(&tid) = request_transfer.get(&(allocation.downloader, source)) {
                    let status = world.transfers.apply_grant(tid, allocation.bandwidth, now);
                    if status == TransferStatus::Completed {
                        world.active_transfer[d] = None;
                        let article = world.transfers.transfer(tid).article;
                        world.store.add_replica(allocation.downloader, article);
                        world
                            .dht
                            .add_holder(DhtKey::for_article(article.0), allocation.downloader);
                    }
                }
            }
        }
    }
}
