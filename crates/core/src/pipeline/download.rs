//! Phase 3 — downloads and bandwidth allocation.

use super::{StepContext, StepPhase};
use crate::config::DownloadRate;
use crate::world::SimWorld;
use collabsim_netsim::bandwidth::DownloadRequest;
use collabsim_netsim::dht::DhtKey;
use collabsim_netsim::peer::PeerId;
use collabsim_netsim::transfer::TransferStatus;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Collects download requests (continuing in-flight transfers, starting new
/// ones probabilistically) and allocates every source's offered upload
/// bandwidth among its competitors under the configured incentive scheme.
///
/// Fills [`StepContext::downloaded`], [`StepContext::source_upload_seen`]
/// and [`StepContext::bandwidth_share`].
pub struct DownloadPhase;

impl StepPhase for DownloadPhase {
    fn name(&self) -> &'static str {
        "download"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let now = ctx.now;
        let sharing_peers = world.peers.sharing_peers();
        let download_probability = match world.config.download_probability {
            DownloadRate::Fixed(p) => p,
            DownloadRate::InverseSharers => {
                if sharing_peers.is_empty() {
                    0.0
                } else {
                    1.0 / sharing_peers.len() as f64
                }
            }
        };

        // Download sources must actually offer upload bandwidth this step:
        // the paper's competition is over "the source's upload bandwidth",
        // so a peer offering only stored articles cannot serve a transfer.
        let upload_sources: Vec<PeerId> = sharing_peers
            .iter()
            .copied()
            .filter(|&s| world.peers.peer(s).offered_upload() > 0.0)
            .collect();

        // Collect download requests per source.
        let mut requests_by_source: HashMap<PeerId, Vec<DownloadRequest>> = HashMap::new();
        let mut request_transfer: HashMap<(PeerId, PeerId), u64> = HashMap::new();
        for p in 0..population {
            let downloader = PeerId(p as u32);
            // Continue an in-flight transfer if its source still offers
            // bandwidth; otherwise abandon it and look for a new source.
            let mut source: Option<PeerId> = None;
            if let Some(tid) = world.active_transfer[p] {
                let t = world.transfers.transfer(tid);
                if t.status == TransferStatus::InProgress
                    && world.peers.peer(t.source).offered_upload() > 0.0
                {
                    source = Some(t.source);
                    request_transfer.insert((downloader, t.source), tid);
                } else {
                    if t.status == TransferStatus::InProgress {
                        world.transfers.cancel(tid, now);
                    }
                    world.active_transfer[p] = None;
                }
            }
            // Otherwise maybe start a new download.
            if source.is_none()
                && !upload_sources.is_empty()
                && download_probability > 0.0
                && world.rng.gen_bool(download_probability.min(1.0))
            {
                let candidates: Vec<PeerId> = upload_sources
                    .iter()
                    .copied()
                    .filter(|&s| s != downloader)
                    .collect();
                if let Some(&chosen) = candidates.choose(&mut world.rng) {
                    let article = world.pick_article_to_download(downloader, chosen);
                    let tid = world.transfers.start(downloader, chosen, article, now);
                    world.active_transfer[p] = Some(tid);
                    request_transfer.insert((downloader, chosen), tid);
                    source = Some(chosen);
                }
            }
            if let Some(src) = source {
                requests_by_source
                    .entry(src)
                    .or_default()
                    .push(DownloadRequest {
                        downloader,
                        sharing_reputation: world.ledger.sharing_reputation(p),
                        download_capacity: world.peers.peer(downloader).download_capacity,
                        uploaded_to_source: world.uploads[p][src.index()],
                    });
            }
        }

        // Allocate each source's offered upload among its downloaders.
        let mut sources: Vec<PeerId> = requests_by_source.keys().copied().collect();
        sources.sort_unstable();
        for source in sources {
            let requests = &requests_by_source[&source];
            let offered = world.peers.peer(source).offered_upload();
            let allocations = world.allocator.allocate(offered, requests);
            for allocation in allocations {
                let d = allocation.downloader.index();
                ctx.downloaded[d] += allocation.bandwidth;
                ctx.source_upload_seen[d] = world
                    .peers
                    .peer(source)
                    .shared_upload_fraction
                    .max(ctx.source_upload_seen[d]);
                ctx.bandwidth_share[d] = ctx.bandwidth_share[d].max(allocation.share);
                world.uploads[source.index()][d] += allocation.bandwidth;
                if let Some(&tid) = request_transfer.get(&(allocation.downloader, source)) {
                    let status = world.transfers.apply_grant(tid, allocation.bandwidth, now);
                    if status == TransferStatus::Completed {
                        world.active_transfer[d] = None;
                        let article = world.transfers.transfer(tid).article;
                        world.store.add_replica(allocation.downloader, article);
                        world
                            .dht
                            .add_holder(DhtKey::for_article(article.0), allocation.downloader);
                    }
                }
            }
        }
    }
}
