//! Phase 3 — downloads and bandwidth allocation.
//!
//! The phase runs the same three-stage **collect → allocate ∥ → apply**
//! protocol the sharded ledger uses:
//!
//! 1. **Collect** (sequential — it owns the step RNG stream): every peer
//!    either continues its in-flight transfer or probabilistically starts
//!    a new one, and its [`DownloadRequest`] is recorded in the flat
//!    [`RequestTable`] bucketed by source.
//! 2. **Allocate** (parallel): each source's
//!    [`BandwidthAllocator::allocate_into`] call depends only on that
//!    source's offer and request bucket, so contiguous ranges of sources
//!    fan out over scoped workers, each appending to its own
//!    [`GrantBatch`]. Worker count comes from
//!    [`SimWorld::intra_step_threads`] and can never change results.
//! 3. **Apply** (sequential, in source-id order): grants update the step
//!    observables and the upload history, then
//!    [`TransferManager::apply_grants`](collabsim_netsim::transfer::TransferManager::apply_grants)
//!    applies the whole batch and the drained completions update the
//!    article store and DHT and release their transfer slots — the exact
//!    end-of-step state of a sequential source-by-source allocation.
//!
//! All tables live in [`StepContext::transfers`] and are rewritten in
//! place, so steady-state steps perform no allocation here.
//!
//! Fills [`StepContext::downloaded`], [`StepContext::source_upload_seen`]
//! and [`StepContext::bandwidth_share`].

use super::{StepContext, StepPhase};
use crate::config::DownloadRate;
use crate::world::SimWorld;
use collabsim_netsim::bandwidth::{AllocScratch, Allocation, BandwidthAllocator, DownloadRequest};
use collabsim_netsim::dht::DhtKey;
use collabsim_netsim::fault::{
    step_connections, ConnectionState, BACKOFF_BASE_STEPS, MAX_TRANSFER_RETRIES,
    TRANSFER_TIMEOUT_STEPS,
};
use collabsim_netsim::peer::PeerId;
use collabsim_netsim::transfer::TransferStatus;
use rand::Rng;

/// Collects download requests (continuing in-flight transfers, starting new
/// ones probabilistically) and allocates every source's offered upload
/// bandwidth among its competitors under the configured incentive scheme.
pub struct DownloadPhase;

/// A placeholder request used to size the scatter target; every slot is
/// overwritten before it is read.
const EMPTY_REQUEST: DownloadRequest = DownloadRequest {
    downloader: PeerId(0),
    sharing_reputation: 0.0,
    download_capacity: 0.0,
    uploaded_to_source: 0.0,
};

/// CSR-style table of one step's download requests: a flat entry list
/// appended in downloader order by the collect stage, then scattered into
/// dense per-source buckets (a stable counting sort over parallel index
/// vectors) so the grant stage can hand each worker contiguous
/// `&[DownloadRequest]` slices. All buffers are reused across steps.
#[derive(Debug, Clone, Default)]
pub struct RequestTable {
    /// Source peer id per collected entry, in collection order.
    entry_sources: Vec<u32>,
    /// The request per collected entry.
    entry_requests: Vec<DownloadRequest>,
    /// The transfer the request continues or starts, per collected entry.
    entry_transfers: Vec<u64>,
    /// Requests per source peer id (length = population).
    counts: Vec<u32>,
    /// Bucket boundaries per source peer id (length = population + 1):
    /// source `s` owns slots `starts[s]..starts[s + 1]`.
    starts: Vec<u32>,
    /// Scatter cursor, one per source (scratch for `build`).
    cursor: Vec<u32>,
    /// Sources with at least one request, ascending.
    active_sources: Vec<u32>,
    /// Requests grouped by source (each bucket keeps collection order).
    slot_requests: Vec<DownloadRequest>,
    /// Transfer ids grouped by source, aligned with `slot_requests`.
    slot_transfers: Vec<u64>,
}

impl RequestTable {
    /// Clears the table for a new step over `population` peers.
    pub fn begin_step(&mut self, population: usize) {
        self.entry_sources.clear();
        self.entry_requests.clear();
        self.entry_transfers.clear();
        self.active_sources.clear();
        self.counts.clear();
        self.counts.resize(population, 0);
    }

    /// Records one download request directed at `source`.
    pub fn push(&mut self, source: PeerId, request: DownloadRequest, transfer: u64) {
        self.counts[source.index()] += 1;
        self.entry_sources.push(source.0);
        self.entry_requests.push(request);
        self.entry_transfers.push(transfer);
    }

    /// Builds the per-source buckets from the collected entries. The
    /// scatter is a stable counting sort, so within a bucket requests keep
    /// their collection (downloader) order — which is what makes the
    /// bucket slices bit-identical to the hash-map-of-vectors they
    /// replaced.
    pub fn build(&mut self) {
        let population = self.counts.len();
        self.starts.clear();
        self.starts.resize(population + 1, 0);
        let mut total = 0u32;
        for s in 0..population {
            self.starts[s] = total;
            if self.counts[s] > 0 {
                self.active_sources.push(s as u32);
            }
            total += self.counts[s];
        }
        self.starts[population] = total;
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..population]);
        self.slot_requests.clear();
        self.slot_requests.resize(total as usize, EMPTY_REQUEST);
        self.slot_transfers.clear();
        self.slot_transfers.resize(total as usize, 0);
        for (i, &s) in self.entry_sources.iter().enumerate() {
            let slot = self.cursor[s as usize] as usize;
            self.slot_requests[slot] = self.entry_requests[i];
            self.slot_transfers[slot] = self.entry_transfers[i];
            self.cursor[s as usize] += 1;
        }
    }

    /// Number of collected requests.
    pub fn len(&self) -> usize {
        self.entry_requests.len()
    }

    /// Whether no requests were collected.
    pub fn is_empty(&self) -> bool {
        self.entry_requests.is_empty()
    }

    /// Sources with at least one request, ascending (valid after
    /// [`RequestTable::build`]).
    pub fn active_sources(&self) -> &[u32] {
        &self.active_sources
    }

    /// The `k`-th active source's bucket: `(source, requests, transfer
    /// ids)`, requests in collection order.
    pub fn bucket(&self, k: usize) -> (PeerId, &[DownloadRequest], &[u64]) {
        let s = self.active_sources[k] as usize;
        let range = self.starts[s] as usize..self.starts[s + 1] as usize;
        (
            PeerId(s as u32),
            &self.slot_requests[range.clone()],
            &self.slot_transfers[range],
        )
    }
}

/// One worker's output of the parallel grant stage: the [`Allocation`]s of
/// its contiguous range of active sources, appended bucket by bucket, plus
/// the worker-private allocator scratch. Reused across steps.
#[derive(Debug, Clone, Default)]
pub struct GrantBatch {
    allocations: Vec<Allocation>,
    scratch: AllocScratch,
}

impl GrantBatch {
    /// The allocations this worker produced, in bucket order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }
}

/// The parallel grant stage: allocates every active source's offered
/// upload (`offered[k]` pairs with `table.active_sources()[k]`) among its
/// request bucket, fanning contiguous source ranges out over `threads`
/// scoped workers, each appending into its own [`GrantBatch`].
///
/// Concatenating the batches in worker order yields the allocations of
/// all buckets in ascending source order — bit-identical at any worker
/// count, because each bucket's allocation depends only on that bucket.
pub fn allocate_grants(
    allocator: &BandwidthAllocator,
    table: &RequestTable,
    offered: &[f64],
    batches: &mut Vec<GrantBatch>,
    threads: usize,
) {
    let active = table.active_sources().len();
    assert_eq!(offered.len(), active, "one offer per active source");
    let threads = threads.clamp(1, active.max(1));
    if batches.len() != threads {
        batches.resize_with(threads, GrantBatch::default);
    }
    for batch in batches.iter_mut() {
        batch.allocations.clear();
    }
    if threads > 1 {
        let per_worker = active.div_ceil(threads);
        std::thread::scope(|scope| {
            for (worker, batch) in batches.iter_mut().enumerate() {
                let start = (worker * per_worker).min(active);
                let end = ((worker + 1) * per_worker).min(active);
                let offers = &offered[start..end];
                scope.spawn(move || {
                    for (k, &offer) in (start..end).zip(offers) {
                        let (_, requests, _) = table.bucket(k);
                        allocator.allocate_into(
                            offer,
                            requests,
                            &mut batch.scratch,
                            &mut batch.allocations,
                        );
                    }
                });
            }
        });
    } else {
        let batch = &mut batches[0];
        for (k, &offer) in offered.iter().enumerate() {
            let (_, requests, _) = table.bucket(k);
            allocator.allocate_into(offer, requests, &mut batch.scratch, &mut batch.allocations);
        }
    }
}

/// Every reusable buffer of the transfer engine's three stages, carried in
/// [`StepContext`] so steady-state steps allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct TransferTables {
    /// Sharing peers that actually offer upload bandwidth this step,
    /// ascending by peer id.
    upload_sources: Vec<PeerId>,
    /// The step's request table.
    requests: RequestTable,
    /// Offered upload per active source, aligned with
    /// [`RequestTable::active_sources`].
    source_offered: Vec<f64>,
    /// Per-worker grant outputs.
    grant_batches: Vec<GrantBatch>,
    /// `(transfer id, bandwidth)` grants in apply order.
    grant_queue: Vec<(u64, f64)>,
    /// Transfers completed by this step's grants.
    completions: Vec<u64>,
}

impl StepPhase for DownloadPhase {
    fn name(&self) -> &'static str {
        "download"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let now = ctx.now;
        let network = world.config.network;
        let faulty = !network.is_ideal();
        let seed = world.config.seed;
        let tables = &mut ctx.transfers;
        tables.requests.begin_step(population);

        // Fault layer, step 0 — advance every peer's connection state on
        // the dedicated `net_rng` stream. The ideal model has no lifecycle
        // (`connection_rates` is `None`), so it draws nothing here and the
        // stream — and therefore the whole phase — is untouched.
        if let Some(rates) = network.connection_rates() {
            step_connections(&mut world.peers, &rates, &mut world.net_rng);
        }

        // Download sources must actually offer upload bandwidth this step:
        // the paper's competition is over "the source's upload bandwidth",
        // so a peer offering only stored articles cannot serve a transfer.
        // Only online peers can be sharing (`is_sharing` gates on
        // liveness), so the scan walks the online bitset.
        let mut sharing_count = 0usize;
        tables.upload_sources.clear();
        for p in world.active.iter_online() {
            let peer = world.peers.peer(PeerId(p as u32));
            if peer.is_sharing() {
                sharing_count += 1;
                // A disconnected link cannot serve transfers; under the
                // ideal model every peer is permanently `Connected`, so the
                // extra condition is vacuously true there.
                if peer.offered_upload() > 0.0 && peer.connection != ConnectionState::Disconnected {
                    tables.upload_sources.push(peer.id);
                }
            }
        }
        let upload_sources = &tables.upload_sources;
        // The source draw below excludes the downloader via binary search,
        // which needs this list sorted by peer id. The registry iterates
        // in id order today; if churn or registry reordering ever changes
        // that, every peer could silently pick itself as a source — so the
        // invariant is checked in release builds too (one O(sources) pass
        // per step, noise next to the collect loop).
        assert!(
            upload_sources.windows(2).all(|w| w[0] < w[1]),
            "upload sources must be sorted by peer id"
        );
        let download_probability = match world.config.download_probability {
            DownloadRate::Fixed(p) => p,
            DownloadRate::InverseSharers => {
                if sharing_count == 0 {
                    0.0
                } else {
                    1.0 / sharing_count as f64
                }
            }
        };

        // Stage 1 — collect (sequential: this stage owns the RNG stream,
        // so the trajectory is untouched by how later stages are split).
        // Departed peers neither continue nor start downloads (their
        // in-flight transfer was cancelled on departure) and draw no
        // randomness, so the loop walks the online bitset in ascending
        // peer order — identical draws to the dense scan it replaces. The
        // iteration is word-by-word (re-reading each word through
        // `PeerBitset::word`) because the loop body mutates the world;
        // nothing in the body changes the online set itself.
        let online_words = world.active.online().word_count();
        for w in 0..online_words {
            let mut bits = world.active.online().word(w);
            while bits != 0 {
                let p = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let downloader = PeerId(p as u32);
                // Continue an in-flight transfer if its source still offers
                // bandwidth over a live link and the transfer is neither
                // timed out nor backing off; otherwise abandon it and look
                // for a new source (graceful degradation: a downloader
                // whose source link dropped re-draws from the remaining
                // sources below instead of stalling). `hold` keeps a
                // backing-off transfer alive without requesting bandwidth.
                let mut continued: Option<(PeerId, u64)> = None;
                let mut hold = false;
                if let Some(tid) = world.active_transfer[p] {
                    let t = world.transfers.transfer(tid);
                    let (status, t_source) = (t.status, t.source);
                    let source_peer = world.peers.peer(t_source);
                    let source_up = source_peer.offered_upload() > 0.0;
                    let source_connected = source_peer.connection != ConnectionState::Disconnected;
                    let timed_out =
                        faulty && world.transfers.timed_out(tid, now, TRANSFER_TIMEOUT_STEPS);
                    if status == TransferStatus::InProgress
                        && source_up
                        && source_connected
                        && !timed_out
                    {
                        if faulty && world.transfers.in_backoff(tid, now) {
                            hold = true;
                        } else {
                            continued = Some((t_source, tid));
                        }
                    } else {
                        if status == TransferStatus::InProgress {
                            world.transfers.cancel(tid, now);
                            if timed_out {
                                world.net_stats.transfers_timed_out += 1;
                            } else if source_up && !source_connected {
                                world.net_stats.transfers_rerouted += 1;
                            }
                        }
                        world.transfers.release(tid);
                        world.active_transfer[p] = None;
                    }
                }
                // Otherwise maybe start a new download. The source is a
                // uniform choice among the upload sources other than the
                // downloader itself; instead of materialising that filtered
                // candidate list (O(sources) allocation per peer — the
                // pre-shard scaling bottleneck of this phase), the index is
                // drawn directly and mapped over the downloader's position in
                // the sorted source list. Same single `gen_range` draw over
                // the same count, same chosen peer, so the RNG stream and the
                // trajectory are bit-identical to the list-based code.
                if !hold
                    && continued.is_none()
                    && !upload_sources.is_empty()
                    && download_probability > 0.0
                    && world.rng.gen_bool(download_probability.min(1.0))
                {
                    let own_position = upload_sources.binary_search(&downloader);
                    let candidates = upload_sources.len() - usize::from(own_position.is_ok());
                    if candidates > 0 {
                        let mut index = world.rng.gen_range(0..candidates);
                        if let Ok(position) = own_position {
                            if index >= position {
                                index += 1;
                            }
                        }
                        let chosen = upload_sources[index];
                        let article = world.pick_article_to_download(downloader, chosen);
                        let tid = world.transfers.start(downloader, chosen, article, now);
                        world.active_transfer[p] = Some(tid);
                        continued = Some((chosen, tid));
                    }
                }
                if let Some((src, tid)) = continued {
                    tables.requests.push(
                        src,
                        DownloadRequest {
                            downloader,
                            // The service-visible reputation: the ledger value,
                            // or the propagation backend's estimate under
                            // `reputation_source = propagated`.
                            sharing_reputation: world.service_sharing_reputation(p),
                            download_capacity: world.peers.peer(downloader).download_capacity,
                            uploaded_to_source: world.uploads.get(p, src.index()),
                        },
                        tid,
                    );
                }
            }
        }
        tables.requests.build();

        // Stage 2 — allocate, fanned out over the intra-step workers.
        tables.source_offered.clear();
        tables.source_offered.extend(
            tables
                .requests
                .active_sources()
                .iter()
                .map(|&s| world.peers.peer(PeerId(s)).offered_upload()),
        );
        allocate_grants(
            &world.allocator,
            &tables.requests,
            &tables.source_offered,
            &mut tables.grant_batches,
            world.intra_step_threads(),
        );

        // Stage 3 — apply, sequentially in ascending source order (the
        // batches concatenate to exactly that order). Grants update the
        // step observables and the upload history, then the transfer
        // manager applies the whole grant queue and the drained
        // completions update the store/DHT and free their slots.
        tables.grant_queue.clear();
        {
            let mut allocations = tables
                .grant_batches
                .iter()
                .flat_map(GrantBatch::allocations);
            for k in 0..tables.requests.active_sources().len() {
                let (source, requests, transfers) = tables.requests.bucket(k);
                let source_peer = world.peers.peer(source);
                let source_fraction = source_peer.shared_upload_fraction;
                let source_degraded = source_peer.connection == ConnectionState::Degraded;
                for (slot, &tid) in requests.iter().zip(transfers.iter()) {
                    let allocation = allocations
                        .next()
                        .expect("one allocation per collected request");
                    debug_assert_eq!(allocation.downloader, slot.downloader);
                    let d = allocation.downloader.index();
                    let bandwidth = allocation.bandwidth;
                    world.net_stats.grants_offered += bandwidth;
                    // Fault layer — consume delayed and lost grants before
                    // they touch the step observables, the upload history
                    // or the transfer itself. Loss is the only draw, taken
                    // from `net_rng` in this sequential stage, so the core
                    // stream and thread-count invariance are untouched; the
                    // ideal model never enters this block.
                    if faulty {
                        let latency =
                            network.link_latency(seed, allocation.downloader, source, population);
                        if now < world.transfers.transfer(tid).started_at + latency {
                            world.net_stats.grants_delayed += bandwidth;
                            continue;
                        }
                        let mut loss = network.link_loss(allocation.downloader, source, population);
                        if source_degraded {
                            loss = (loss * 2.0).min(1.0);
                        }
                        if loss > 0.0 && world.net_rng.gen_bool(loss) {
                            world.net_stats.grants_lost += bandwidth;
                            let fails = world.transfers.fail_grant(tid, now, BACKOFF_BASE_STEPS);
                            if fails > MAX_TRANSFER_RETRIES {
                                world.transfers.cancel(tid, now);
                                world.transfers.release(tid);
                                world.active_transfer[d] = None;
                                world.net_stats.transfers_failed += 1;
                            }
                            continue;
                        }
                    }
                    world.net_stats.grants_applied += bandwidth;
                    ctx.downloaded[d] += bandwidth;
                    ctx.source_upload_seen[d] = source_fraction.max(ctx.source_upload_seen[d]);
                    ctx.bandwidth_share[d] = ctx.bandwidth_share[d].max(allocation.share);
                    world.uploads.add(source.index(), d, bandwidth);
                    tables.grant_queue.push((tid, bandwidth));
                }
            }
            debug_assert!(allocations.next().is_none(), "no grants left unapplied");
        }
        world
            .transfers
            .apply_grants(&tables.grant_queue, now, &mut tables.completions);
        for &tid in &tables.completions {
            let transfer = world.transfers.transfer(tid);
            let (downloader, article) = (transfer.downloader, transfer.article);
            world.active_transfer[downloader.index()] = None;
            world.store.add_replica(downloader, article);
            world
                .dht
                .add_holder(DhtKey::for_article(article.0), downloader);
            world.transfers.release(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collabsim_netsim::bandwidth::AllocationPolicy;

    fn request(downloader: u32, reputation: f64) -> DownloadRequest {
        DownloadRequest {
            downloader: PeerId(downloader),
            sharing_reputation: reputation,
            download_capacity: 1.0,
            uploaded_to_source: 0.0,
        }
    }

    #[test]
    fn request_table_buckets_keep_collection_order() {
        let mut table = RequestTable::default();
        table.begin_step(6);
        table.push(PeerId(4), request(0, 0.1), 10);
        table.push(PeerId(2), request(1, 0.2), 11);
        table.push(PeerId(4), request(3, 0.3), 12);
        table.push(PeerId(2), request(5, 0.4), 13);
        table.build();
        assert_eq!(table.len(), 4);
        assert_eq!(table.active_sources(), &[2, 4]);
        let (source, requests, transfers) = table.bucket(0);
        assert_eq!(source, PeerId(2));
        assert_eq!(transfers, &[11, 13]);
        assert_eq!(requests[0].downloader, PeerId(1));
        assert_eq!(requests[1].downloader, PeerId(5));
        let (source, requests, transfers) = table.bucket(1);
        assert_eq!(source, PeerId(4));
        assert_eq!(transfers, &[10, 12]);
        assert_eq!(requests[0].downloader, PeerId(0));
        assert_eq!(requests[1].downloader, PeerId(3));
    }

    #[test]
    fn request_table_reuse_resets_cleanly() {
        let mut table = RequestTable::default();
        table.begin_step(3);
        table.push(PeerId(1), request(0, 0.5), 7);
        table.build();
        assert_eq!(table.active_sources(), &[1]);
        table.begin_step(3);
        assert!(table.is_empty());
        table.build();
        assert!(table.active_sources().is_empty());
    }

    #[test]
    fn parallel_grants_match_sequential_at_any_worker_count() {
        let allocator = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
        let mut table = RequestTable::default();
        table.begin_step(8);
        for (downloader, source) in [(0, 3), (1, 3), (2, 5), (4, 6), (7, 5), (6, 3)] {
            table.push(
                PeerId(source),
                request(downloader, f64::from(downloader) * 0.13 + 0.05),
                u64::from(downloader),
            );
        }
        table.build();
        let offered: Vec<f64> = table
            .active_sources()
            .iter()
            .map(|&s| f64::from(s) * 0.2)
            .collect();
        let mut sequential = Vec::new();
        allocate_grants(&allocator, &table, &offered, &mut sequential, 1);
        let reference: Vec<Allocation> = sequential
            .iter()
            .flat_map(GrantBatch::allocations)
            .copied()
            .collect();
        for threads in 2..=5 {
            let mut batches = Vec::new();
            allocate_grants(&allocator, &table, &offered, &mut batches, threads);
            let flattened: Vec<Allocation> = batches
                .iter()
                .flat_map(GrantBatch::allocations)
                .copied()
                .collect();
            assert_eq!(flattened.len(), reference.len());
            for (got, want) in flattened.iter().zip(reference.iter()) {
                assert_eq!(got.downloader, want.downloader);
                assert_eq!(got.share.to_bits(), want.share.to_bits());
                assert_eq!(got.bandwidth.to_bits(), want.bandwidth.to_bits());
            }
        }
    }
}
