//! Phase 6 — Q-learning updates.

use super::{worker_bounds, StepContext, StepPhase};
use crate::agent::AgentState;
use crate::world::SimWorld;

/// Every *online rational* agent applies its Q-update for the step's
/// reward, transitioning to the post-step state (its reputation bucket
/// after the sharing/editing contributions of this step).
///
/// The phase iterates the `online ∧ learners` bitset intersection:
/// fixed-behaviour agents ignore the update by construction, departed
/// peers took no action this step (there is no transition to learn from),
/// and adversary-forced peers did not *choose* their action either — their
/// learner is suspended while the strategy drives, so a forced step can
/// never be credited to the agent's own last choice.
///
/// Each update touches only that peer's Q-block and reads only frozen step
/// state (the rewards vector and the post-step ledger), so the phase fans
/// contiguous peer ranges out over the intra-step workers via
/// [`AgentTable::split_mut`](crate::agent_table::AgentTable::split_mut) —
/// bit-identical at any worker count.
pub struct LearningPhase;

impl StepPhase for LearningPhase {
    fn name(&self) -> &'static str {
        "learning"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let threads = world.intra_step_threads().clamp(1, population.max(1));
        let SimWorld {
            agents,
            active,
            adversaries,
            ledger,
            propagated_service_reputation,
            config,
            states,
            ..
        } = world;
        let active = &*active;
        let ledger = &*ledger;
        let forced = adversaries.forced_actions();
        let propagated = propagated_service_reputation.as_deref();
        let min_reputation = config.min_reputation;
        let states = *states;
        let rewards: &[f64] = &ctx.rewards;
        // The post-step state: the peer's service-visible reputation bucket
        // (same resolution as `SimWorld::agent_state`, reproduced here so
        // workers only capture Sync references).
        let next_bucket = move |p: usize| -> usize {
            let reputation = match propagated {
                Some(values) => values[p],
                None => ledger.sharing_reputation(p),
            };
            AgentState::from_reputation(reputation, min_reputation, states).bucket
        };

        if threads > 1 {
            let bounds = worker_bounds(population, threads);
            let shards = agents.split_mut(&bounds);
            std::thread::scope(|scope| {
                for mut shard in shards {
                    scope.spawn(move || {
                        for p in active.online().iter_range(shard.range()) {
                            if !shard.is_learning(p) || matches!(forced.get(p), Some(Some(_))) {
                                continue;
                            }
                            shard.learn(p, rewards[p], next_bucket(p));
                        }
                    });
                }
            });
        } else {
            for p in active.iter_online_learners() {
                if matches!(forced.get(p), Some(Some(_))) {
                    continue;
                }
                agents.learn(p, rewards[p], next_bucket(p));
            }
        }
    }
}
