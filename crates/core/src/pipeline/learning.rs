//! Phase 6 — Q-learning updates.

use super::{StepContext, StepPhase};
use crate::world::SimWorld;

/// Every rational agent applies its Q-update for the step's reward,
/// transitioning to the post-step state (its reputation bucket after the
/// sharing/editing contributions of this step). Fixed-behaviour agents
/// ignore the call.
pub struct LearningPhase;

impl StepPhase for LearningPhase {
    fn name(&self) -> &'static str {
        "learning"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        for p in 0..world.population() {
            // Departed peers took no action this step, so there is no
            // transition to learn from. Adversary-forced peers did not
            // *choose* their action either — their learner is suspended
            // while the strategy drives, so a forced step can never be
            // credited to the agent's own last choice.
            if !world
                .peers
                .peer(collabsim_netsim::peer::PeerId(p as u32))
                .online
                || world.adversaries.forced_action(p).is_some()
            {
                continue;
            }
            let next_state = world.agent_state(p);
            world.agents[p].learn(ctx.rewards[p], next_state);
        }
    }
}
