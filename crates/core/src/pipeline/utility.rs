//! Phase 5 — utility computation and measurement.

use super::{worker_bounds, StepContext, StepPhase};
use crate::action::{CollabAction, EditBehavior};
use crate::world::{AccumulatorShardMut, SimWorld};
use collabsim_gametheory::utility::{EditingObservation, SharingObservation, UtilityModel};

/// Computes every *online* peer's per-step reward `U = U_S + U_E` from the
/// step's observations, and accumulates the evaluation-phase measurements
/// while the world is in its measuring phase. Departed peers are absent:
/// their pre-filled reward stays zero and their accumulators do not advance
/// (`steps` counts presence, so the per-peer means stay means over online
/// steps) — the phase iterates the online bitset and never visits them.
///
/// Every peer's reward depends only on that peer's step observations, so
/// the phase fans contiguous peer ranges out over the intra-step workers
/// ([`SimWorld::intra_step_threads`]), each writing disjoint reward and
/// accumulator shards — bit-identical at any worker count.
///
/// Fills [`StepContext::rewards`] (consumed by the learning phase).
pub struct UtilityPhase;

/// One peer's reward, from read-only step observations.
#[inline]
fn peer_reward(
    utility: &UtilityModel,
    action: CollabAction,
    source_upload: f64,
    bandwidth_share: f64,
    accepted_edits: u32,
    successful_votes: u32,
) -> f64 {
    let sharing_obs = SharingObservation {
        source_upload,
        bandwidth_share: bandwidth_share.min(1.0),
        disk_share: action.articles.fraction(),
        own_upload: action.bandwidth.fraction(),
    };
    let editing_obs = EditingObservation {
        successful_edits: accepted_edits,
        successful_votes,
    };
    utility.total_utility(&sharing_obs, &editing_obs)
}

/// Accumulates one measured peer-step into an accumulator shard.
#[inline]
fn measure_peer(
    acc: &mut AccumulatorShardMut<'_>,
    p: usize,
    action: CollabAction,
    downloaded: f64,
    reward: f64,
    attempted_editing: bool,
    voted: bool,
) {
    let i = p - acc.start;
    acc.shared_bandwidth_sum[i] += action.bandwidth.fraction();
    acc.shared_articles_sum[i] += action.articles.fraction();
    acc.downloaded_sum[i] += downloaded;
    acc.utility_sum[i] += reward;
    if attempted_editing {
        match action.edit {
            EditBehavior::Constructive => acc.constructive_edits[i] += 1,
            EditBehavior::Destructive => acc.destructive_edits[i] += 1,
            EditBehavior::Abstain => {}
        }
    }
    if voted {
        acc.votes[i] += 1;
    }
    acc.steps[i] += 1;
}

impl StepPhase for UtilityPhase {
    fn name(&self) -> &'static str {
        "utility"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        let population = world.population();
        let threads = world.intra_step_threads().clamp(1, population.max(1));
        let measuring = world.measuring;
        let SimWorld {
            active,
            accumulators,
            config,
            ..
        } = world;
        let active = &*active;
        let utility = &config.utility;
        let StepContext {
            actions,
            source_upload_seen,
            bandwidth_share,
            accepted_edits,
            successful_votes,
            downloaded,
            attempted_editing,
            voted_this_step,
            rewards,
            ..
        } = ctx;
        let actions = &*actions;
        let source_upload_seen = &*source_upload_seen;
        let bandwidth_share = &*bandwidth_share;
        let accepted_edits = &*accepted_edits;
        let successful_votes = &*successful_votes;
        let downloaded = &*downloaded;
        let attempted_editing = &*attempted_editing;
        let voted_this_step = &*voted_this_step;

        let bounds = worker_bounds(population, threads);
        let mut acc_shards = accumulators.split_mut(&bounds);
        // `rewards` splits along the same bounds so each worker owns its
        // range's chunk; offline peers keep the reset's pre-filled 0.0.
        let mut reward_chunks: Vec<&mut [f64]> = Vec::with_capacity(bounds.len() - 1);
        let mut rest = rewards.as_mut_slice();
        for window in bounds.windows(2) {
            let (chunk, tail) = rest.split_at_mut(window[1] - window[0]);
            reward_chunks.push(chunk);
            rest = tail;
        }

        let run_shard = |acc: &mut AccumulatorShardMut<'_>, chunk: &mut [f64]| {
            let start = acc.start;
            for p in active.online().iter_range(start..start + chunk.len()) {
                let action = actions[p];
                let reward = peer_reward(
                    utility,
                    action,
                    source_upload_seen[p],
                    bandwidth_share[p],
                    accepted_edits[p],
                    successful_votes[p],
                );
                chunk[p - start] = reward;
                if measuring {
                    measure_peer(
                        acc,
                        p,
                        action,
                        downloaded[p],
                        reward,
                        attempted_editing[p],
                        voted_this_step[p],
                    );
                }
            }
        };

        if threads > 1 {
            let run_shard = &run_shard;
            std::thread::scope(|scope| {
                for (acc, chunk) in acc_shards.iter_mut().zip(reward_chunks.iter_mut()) {
                    scope.spawn(move || run_shard(acc, chunk));
                }
            });
        } else {
            for (acc, chunk) in acc_shards.iter_mut().zip(reward_chunks.iter_mut()) {
                run_shard(acc, chunk);
            }
        }
    }
}
