//! Phase 5 — utility computation and measurement.

use super::{StepContext, StepPhase};
use crate::action::EditBehavior;
use crate::world::SimWorld;
use collabsim_gametheory::utility::{EditingObservation, SharingObservation};

/// Computes every peer's per-step reward `U = U_S + U_E` from the step's
/// observations, and accumulates the evaluation-phase measurements while
/// the world is in its measuring phase.
///
/// Fills [`StepContext::rewards`] (consumed by the learning phase).
pub struct UtilityPhase;

impl StepPhase for UtilityPhase {
    fn name(&self) -> &'static str {
        "utility"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        for p in 0..world.population() {
            // Departed peers are absent: zero reward, and their measured
            // accumulators do not advance (`steps` counts presence, so the
            // per-peer means stay means over online steps).
            if !world
                .peers
                .peer(collabsim_netsim::peer::PeerId(p as u32))
                .online
            {
                ctx.rewards[p] = 0.0;
                continue;
            }
            let action = ctx.actions[p];
            let sharing_obs = SharingObservation {
                source_upload: ctx.source_upload_seen[p],
                bandwidth_share: ctx.bandwidth_share[p].min(1.0),
                disk_share: action.articles.fraction(),
                own_upload: action.bandwidth.fraction(),
            };
            let editing_obs = EditingObservation {
                successful_edits: ctx.accepted_edits[p],
                successful_votes: ctx.successful_votes[p],
            };
            let reward = world
                .config
                .utility
                .total_utility(&sharing_obs, &editing_obs);
            ctx.rewards[p] = reward;

            if world.measuring {
                let acc = &mut world.accumulators[p];
                acc.shared_bandwidth_sum += action.bandwidth.fraction();
                acc.shared_articles_sum += action.articles.fraction();
                acc.downloaded_sum += ctx.downloaded[p];
                acc.utility_sum += reward;
                if ctx.attempted_editing[p] {
                    match action.edit {
                        EditBehavior::Constructive => acc.constructive_edits += 1,
                        EditBehavior::Destructive => acc.destructive_edits += 1,
                        EditBehavior::Abstain => {}
                    }
                }
                if ctx.voted_this_step[p] {
                    acc.votes += 1;
                }
                acc.steps += 1;
            }
        }
    }
}
