//! Thread-count resolution shared by the scenario runner and the
//! intra-step parallel stages.
//!
//! One environment variable, `SCENARIO_THREADS`, caps every source of
//! parallelism in the crate: the [`crate::experiment::ScenarioRunner`]
//! worker pool, the intra-step collect/apply workers of the sharing and
//! edit-vote phases, and the per-source grant workers of the download
//! phase's batched transfer engine
//! ([`allocate_grants`](crate::pipeline::allocate_grants)). Setting
//! `SCENARIO_THREADS=1` therefore forces a fully sequential execution —
//! which the determinism CI job diffs against the default parallel
//! execution, pinning the parallel == sequential guarantee. Thread counts
//! never affect simulation results; they only affect wall-clock time.

use std::num::NonZeroUsize;

/// The environment variable capping all parallelism (`0` or unparsable
/// values are ignored).
pub const SCENARIO_THREADS_ENV: &str = "SCENARIO_THREADS";

/// The thread count requested via [`SCENARIO_THREADS_ENV`], if any.
pub fn scenario_threads() -> Option<usize> {
    std::env::var(SCENARIO_THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The hardware parallelism, defaulting to 1 if unknown.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker-thread count for automatic (`0`-configured) intra-step stages on
/// a population of the given size: the environment override if present,
/// otherwise the hardware parallelism (capped at 8) for populations large
/// enough to amortise worker startup, and 1 for everything smaller.
pub fn auto_intra_step_threads(population: usize) -> usize {
    if let Some(n) = scenario_threads() {
        return n;
    }
    if population >= 4096 {
        hardware_threads().min(8)
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn small_populations_default_to_sequential() {
        // Unless the environment overrides it, tiny populations get one
        // worker (the override can only raise this test's expectation).
        match scenario_threads() {
            Some(n) => assert_eq!(auto_intra_step_threads(100), n),
            None => assert_eq!(auto_intra_step_threads(100), 1),
        }
    }

    #[test]
    fn large_populations_use_hardware_threads() {
        match scenario_threads() {
            Some(n) => assert_eq!(auto_intra_step_threads(100_000), n),
            None => {
                let n = auto_intra_step_threads(100_000);
                assert!((1..=8).contains(&n));
            }
        }
    }
}
