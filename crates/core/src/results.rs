//! Result rendering: plain-text tables and CSV series.
//!
//! The bench binaries regenerate every figure as a numeric series printed to
//! stdout (and optionally written to CSV); this module holds the shared
//! formatting so the binaries, the examples and EXPERIMENTS.md all show the
//! same columns.

use crate::experiment::LabelledReport;
use crate::report::SimulationReport;
use crate::world::ChurnStats;
use collabsim_gametheory::behavior::BehaviorType;
use std::fmt::Write as _;

/// Renders a sequence of labelled reports as a CSV document with one row per
/// configuration. Columns cover the quantities Figures 3–7 plot.
pub fn to_csv(results: &[LabelledReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "label,parameter,shared_articles,shared_bandwidth,\
         rational_shared_articles,rational_shared_bandwidth,\
         rational_constructive_fraction,constructive_acceptance_rate,\
         destructive_acceptance_rate,mean_article_quality,completed_downloads\n",
    );
    for r in results {
        let report = &r.report;
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
            r.label,
            r.parameter,
            report.shared_articles,
            report.shared_bandwidth,
            report.rational_shared_articles(),
            report.rational_shared_bandwidth(),
            report.rational_constructive_fraction(),
            report.constructive_acceptance_rate(),
            report.destructive_acceptance_rate(),
            report.mean_article_quality,
            report.completed_downloads,
        );
    }
    out
}

/// Renders a fixed-width text table for terminal output.
pub fn to_table(title: &str, results: &[LabelledReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "configuration", "articles", "bandwidth", "rat.articles", "rat.bandw.", "rat.constr."
    );
    for r in results {
        let report = &r.report;
        let _ = writeln!(
            out,
            "{:<24} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>12.4}",
            r.label,
            report.shared_articles,
            report.shared_bandwidth,
            report.rational_shared_articles(),
            report.rational_shared_bandwidth(),
            report.rational_constructive_fraction(),
        );
    }
    out
}

/// Renders the Figure 3 comparison (with vs. without incentive) including
/// the relative improvements the paper reports (≈ +8 % articles, ≈ +11 %
/// bandwidth).
pub fn figure3_summary(with: &SimulationReport, without: &SimulationReport) -> String {
    let article_gain = relative_gain(with.shared_articles, without.shared_articles);
    let bandwidth_gain = relative_gain(with.shared_bandwidth, without.shared_bandwidth);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 3 — sharing with vs. without the incentive scheme"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>16} {:>16} {:>12}",
        "metric", "with incentive", "without", "gain"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>16.4} {:>16.4} {:>11.1}%",
        "shared articles",
        with.shared_articles,
        without.shared_articles,
        article_gain * 100.0
    );
    let _ = writeln!(
        out,
        "{:<22} {:>16.4} {:>16.4} {:>11.1}%",
        "shared bandwidth",
        with.shared_bandwidth,
        without.shared_bandwidth,
        bandwidth_gain * 100.0
    );
    let _ = writeln!(
        out,
        "paper reference: approximately +8% articles, +11% bandwidth"
    );
    out
}

/// Relative gain of `a` over `b`, guarding against a zero baseline.
pub fn relative_gain(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        if a.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (a - b) / b
    }
}

/// Renders the churn counters of a run — the Section-VI reputation-
/// persistence numbers: how much reputation re-entrant identities kept
/// (versus the newcomer minimum `r_min`) and how much whitewashers shed.
pub fn churn_summary(stats: &ChurnStats, r_min: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "churn events: {} re-entries, {} departures, {} whitewashes",
        stats.joins, stats.leaves, stats.whitewashes
    );
    let _ = writeln!(
        out,
        "mean sharing reputation at re-entry: {:.4} (newcomer minimum: {r_min:.4})",
        stats.mean_reentry_reputation()
    );
    let _ = writeln!(
        out,
        "mean reputation shed per whitewash:  {:.4}",
        stats.mean_whitewash_shed()
    );
    out
}

/// Renders the per-behaviour breakdown of a single report.
pub fn behavior_table(report: &SimulationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "type", "peers", "articles", "bandwidth", "downloads", "constr.", "destr."
    );
    for behavior in BehaviorType::ALL {
        let b = report.breakdown(behavior);
        if b.peers == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>10}",
            behavior.label(),
            b.peers,
            b.shared_articles,
            b.shared_bandwidth,
            b.downloaded,
            b.constructive_edits,
            b.destructive_edits,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::LabelledReport;
    use crate::report::{BehaviorBreakdown, SimulationReport};
    use std::collections::BTreeMap;

    fn fake_report(shared_articles: f64, shared_bandwidth: f64) -> SimulationReport {
        let mut by_behavior = BTreeMap::new();
        by_behavior.insert(
            "rational".to_string(),
            BehaviorBreakdown {
                peers: 4,
                shared_articles,
                shared_bandwidth,
                constructive_edits: 3,
                destructive_edits: 1,
                ..Default::default()
            },
        );
        SimulationReport {
            shared_articles,
            shared_bandwidth,
            by_behavior,
            edit_outcomes: Default::default(),
            mean_article_quality: 1.0,
            completed_downloads: 5,
            evaluation_steps: 10,
            seed: 0,
        }
    }

    fn labelled(label: &str, parameter: f64) -> LabelledReport {
        LabelledReport {
            label: label.to_string(),
            parameter,
            report: fake_report(0.3, 0.6),
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_result() {
        let csv = to_csv(&[labelled("a", 1.0), labelled("b", 2.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,parameter"));
        assert!(lines[1].starts_with("a,1,"));
        assert!(lines[2].starts_with("b,2,"));
        // Each data row has the same number of columns as the header.
        let header_cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), header_cols);
    }

    #[test]
    fn table_contains_every_label() {
        let table = to_table(
            "demo",
            &[labelled("config-x", 1.0), labelled("config-y", 2.0)],
        );
        assert!(table.contains("# demo"));
        assert!(table.contains("config-x"));
        assert!(table.contains("config-y"));
    }

    #[test]
    fn figure3_summary_reports_gains() {
        let with = fake_report(0.27, 0.62);
        let without = fake_report(0.25, 0.56);
        let summary = figure3_summary(&with, &without);
        assert!(summary.contains("shared articles"));
        assert!(summary.contains("shared bandwidth"));
        assert!(summary.contains("8% articles"));
        // 0.27 / 0.25 − 1 = 8 %.
        assert!(summary.contains("8.0%"));
    }

    #[test]
    fn relative_gain_edge_cases() {
        assert!((relative_gain(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_gain(0.0, 0.0), 0.0);
        assert_eq!(relative_gain(1.0, 0.0), f64::INFINITY);
        assert!(relative_gain(0.9, 1.0) < 0.0);
    }

    #[test]
    fn behavior_table_skips_absent_types() {
        let table = behavior_table(&fake_report(0.1, 0.2));
        assert!(table.contains("rational"));
        assert!(!table.contains("irrational"));
        assert!(!table.contains("altruistic"));
    }

    #[test]
    fn churn_summary_renders_counters_and_means() {
        let stats = ChurnStats {
            joins: 4,
            leaves: 6,
            whitewashes: 2,
            reentry_reputation_sum: 1.2,
            whitewash_reputation_shed_sum: 0.5,
        };
        let summary = churn_summary(&stats, 0.05);
        assert!(summary.contains("4 re-entries, 6 departures, 2 whitewashes"));
        assert!(summary.contains("0.3000"), "mean re-entry reputation");
        assert!(summary.contains("0.2500"), "mean whitewash shed");
        assert!(summary.contains("0.0500"), "newcomer minimum");
    }
}
