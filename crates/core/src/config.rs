//! Simulation configuration.
//!
//! [`SimulationConfig`] collects every knob of the Section-IV model with the
//! paper's values as defaults: 100 agents, 10 reputation states over
//! `[R_min, 1] = [0.05, 1]`, a 10 000-step training phase with effectively
//! infinite Boltzmann temperature followed by an evaluation phase at
//! `T = 1`, the logistic reputation function with `g = 19`, and the
//! behaviour-mix sweep convention of Section IV-B.

use crate::adversary::AdversarySpec;
use crate::incentive::IncentiveScheme;
use crate::spec::SpecError;
use collabsim_gametheory::behavior::BehaviorMix;
use collabsim_gametheory::utility::UtilityModel;
use collabsim_netsim::churn::ChurnModel;
use collabsim_netsim::fault::LinkModel;
use collabsim_reputation::contribution::ContributionParams;
use collabsim_reputation::propagation::PropagationScheme;
use collabsim_reputation::punishment::PunishmentPolicy;
use collabsim_reputation::service::ServiceParams;
use collabsim_rl::qlearning::QLearningParams;
use serde::{Deserialize, Serialize};

/// Configuration of the optional reputation-propagation phase.
///
/// The paper *assumes* "a mechanism to safely propagate reputation values"
/// exists (Section II-C) and models reputation as globally visible; the
/// propagation phase makes that assumption inspectable by periodically
/// running a concrete backend over the upload-derived trust graph. Disabled
/// by default so the standard pipeline matches the paper's model (and the
/// golden report) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationConfig {
    /// Which backend to run; `None` disables the phase entirely.
    pub scheme: Option<PropagationScheme>,
    /// Steps between propagation rounds (must be ≥ 1).
    pub interval: u64,
    /// Size of the EigenTrust pre-trusted set (`0` = off, the stock
    /// uniform distribution). With `K > 0` the propagation phase anchors
    /// the EigenTrust restart distribution on the `K` lowest peer ids —
    /// honest by construction, since adversary units claim peers from the
    /// *top* of the id range — so a whitewashed identity can no longer
    /// inherit propagated trust through the uniform restart. Only valid
    /// with [`PropagationScheme::EigenTrust`].
    pub pretrusted: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self {
            scheme: None,
            interval: 100,
            pretrusted: 0,
        }
    }
}

/// Which reputation values feed service differentiation, edit gating and
/// punishment-recovery decisions.
///
/// The paper models reputation as globally visible (the ledger); real
/// deployments only see what a propagation mechanism delivers. Switching to
/// [`ReputationSource::Propagated`] makes selection, bandwidth allocation,
/// edit admission and the edit-rights-recovery gate read the configured
/// propagation backend's latest output (mapped onto the `[R_min, 1]`
/// service scale) instead of the ledger — quantifying what realistic
/// propagation costs, especially under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReputationSource {
    /// Globally visible ledger reputation (the paper's assumption; the
    /// default, bit-identical to the pre-switch engine).
    #[default]
    Ledger,
    /// The latest propagated reputation vector of the configured backend
    /// (requires [`PropagationConfig::scheme`] to be set). Until the first
    /// propagation round of a phase, the ledger value is used as the
    /// bootstrap estimate.
    Propagated,
}

impl ReputationSource {
    /// Stable label (`ledger` / `propagated`) used by the spec text format.
    pub fn label(self) -> &'static str {
        match self {
            ReputationSource::Ledger => "ledger",
            ReputationSource::Propagated => "propagated",
        }
    }

    /// Parses a source from its [`ReputationSource::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "ledger" => Some(ReputationSource::Ledger),
            "propagated" => Some(ReputationSource::Propagated),
            _ => None,
        }
    }
}

/// Lengths and temperatures of the two simulation phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Number of training steps (paper: 10 000).
    pub training_steps: u64,
    /// Number of measured evaluation steps after the reputation reset.
    pub evaluation_steps: u64,
    /// Boltzmann temperature during training (paper: the highest possible
    /// floating-point value, i.e. uniform exploration).
    pub training_temperature: f64,
    /// Boltzmann temperature during evaluation (paper: 1).
    pub evaluation_temperature: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        Self {
            training_steps: 10_000,
            evaluation_steps: 2_000,
            training_temperature: f64::MAX,
            evaluation_temperature: 1.0,
        }
    }
}

impl PhaseConfig {
    /// A drastically shortened phase configuration for unit tests and
    /// examples that only need qualitative behaviour.
    pub fn quick() -> Self {
        Self {
            training_steps: 300,
            evaluation_steps: 200,
            ..Default::default()
        }
    }

    /// Total number of simulated steps.
    pub fn total_steps(&self) -> u64 {
        self.training_steps + self.evaluation_steps
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of peers (paper: 100).
    pub population: usize,
    /// Number of reputation-bucket states for the Q-learner (paper: 10).
    pub reputation_states: usize,
    /// Minimum reputation `R_min` (paper: 0.05). Must match the reputation
    /// function's newcomer value; the default logistic `g = 19` gives 0.05.
    pub min_reputation: f64,
    /// `β` of the logistic reputation function (Figure 1 uses 0.1–0.3).
    pub reputation_beta: f64,
    /// Which incentive scheme governs service differentiation.
    pub incentive: IncentiveScheme,
    /// Population mix of behaviour types.
    pub mix: BehaviorMix,
    /// Phase lengths and temperatures.
    pub phases: PhaseConfig,
    /// Q-learning hyper-parameters of the rational agents.
    pub learning: QLearningParams,
    /// Utility-function coefficients (the per-step reward signal).
    pub utility: UtilityModel,
    /// Contribution-value weights and decay.
    pub contribution: ContributionParams,
    /// Service-differentiation parameters (thresholds, majorities).
    pub service: ServiceParams,
    /// Punishment thresholds.
    pub punishment: PunishmentPolicy,
    /// Number of articles seeded into the network before the run.
    pub initial_articles: usize,
    /// Probability that a peer attempts a download in a given step.
    ///
    /// The paper states `P = 1 / N_S`; with 100 sharing peers that yields an
    /// almost interaction-free network in which bandwidth competition (the
    /// very thing service differentiation acts on) virtually never occurs.
    /// We therefore default to one attempted download per peer per step and
    /// expose [`SimulationConfig::with_paper_literal_download_rate`] for the
    /// literal reading; DESIGN.md documents the substitution.
    pub download_probability: DownloadRate,
    /// Probability that a participating peer attempts an edit in a step
    /// (given its edit behaviour is not Abstain).
    pub edit_probability: f64,
    /// Whether voting on an edit is restricted to previously successful
    /// editors of the article (the Section III-C2 design rule). The paper's
    /// *simulation model* (Section IV) lets any peer "vote on any changes",
    /// which is what produces the majority-following behaviour of Figures 6
    /// and 7, so the default is `false`; set to `true` to study the stricter
    /// design rule.
    pub restrict_voters_to_editors: bool,
    /// Maximum number of voters sampled for a single edit's vote (the set
    /// `V` of Section III-C2). Keeps per-step vote counts bounded for large
    /// populations.
    pub max_voters_per_edit: usize,
    /// Optional reputation-propagation phase (off by default).
    pub propagation: PropagationConfig,
    /// Which reputation values feed service decisions: the globally visible
    /// ledger (the paper's assumption, default) or the propagation
    /// backend's latest output. `Propagated` requires a configured
    /// propagation scheme.
    pub reputation_source: ReputationSource,
    /// Uptime discount on sharing reputation: when a peer that spent `d`
    /// steps offline rejoins, its sharing-contribution record is scaled by
    /// `factor^d` before it re-enters service differentiation (through the
    /// configured [`SimulationConfig::reputation_source`] path). `1.0`
    /// (default) disables the mechanism entirely — no state is touched and
    /// runs stay bit-identical to builds without it. Must lie in `(0, 1]`.
    pub reputation_uptime_discount: f64,
    /// Strategic adversary units (strategy name, controlled-peer count,
    /// parameter). Empty by default; a non-empty list prepends the
    /// `adversary` phase to the default phase order. Peers are assigned
    /// from the top of the id range in list order.
    pub adversaries: Vec<AdversarySpec>,
    /// Per-step churn probabilities (joins, departures, whitewashing).
    /// The paper's own simulation is churn-free, so the default is
    /// [`ChurnModel::stable`] and the churn phase only enters the pipeline
    /// when the model generates events. Churn draws from its own RNG
    /// stream, so a stable model leaves the trajectory bit-identical to a
    /// churn-free configuration.
    pub churn: ChurnModel,
    /// Link model of the network substrate: per-link latency, grant loss
    /// and the peer connection-state lifecycle. The paper's network is
    /// ideal, so the default is [`LinkModel::Ideal`], which draws nothing
    /// from the dedicated network RNG stream and is bit-identical to an
    /// engine without any fault layer. Non-ideal models delay and fail
    /// grants in the download phase's apply stage and run the connection
    /// lifecycle on their own RNG stream.
    pub network: LinkModel,
    /// Number of peer-id-range shards of the reputation ledger
    /// (`0` = automatic, based on the population). Sharding never changes
    /// results — parallel shard updates are bit-identical to sequential
    /// ones — it only changes how much intra-step parallelism is available.
    pub ledger_shards: usize,
    /// Worker threads used by the intra-step collect/apply stages of the
    /// sharing and edit-vote phases (`0` = automatic: the
    /// `SCENARIO_THREADS` environment variable if set, otherwise the
    /// hardware parallelism for large populations and `1` for small ones).
    /// Like `ledger_shards`, this cannot change simulation results.
    pub intra_step_threads: usize,
    /// RNG seed; identical configurations with identical seeds reproduce
    /// bit-identical results.
    pub seed: u64,
}

/// How the per-step download probability is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DownloadRate {
    /// A fixed probability per peer per step.
    Fixed(f64),
    /// The paper's literal `P = 1 / N_S` where `N_S` is the number of peers
    /// currently offering files.
    InverseSharers,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            population: 100,
            reputation_states: 10,
            min_reputation: 0.05,
            reputation_beta: 0.2,
            incentive: IncentiveScheme::ReputationBased,
            mix: BehaviorMix::all_rational(),
            phases: PhaseConfig::default(),
            learning: QLearningParams {
                learning_rate: 0.1,
                discount: 0.9,
                initial_q: 0.0,
            },
            utility: UtilityModel::default(),
            contribution: ContributionParams::default(),
            service: ServiceParams::default(),
            punishment: PunishmentPolicy::default(),
            initial_articles: 50,
            download_probability: DownloadRate::Fixed(1.0),
            edit_probability: 0.2,
            restrict_voters_to_editors: false,
            max_voters_per_edit: 10,
            propagation: PropagationConfig::default(),
            reputation_source: ReputationSource::Ledger,
            reputation_uptime_discount: 1.0,
            adversaries: Vec::new(),
            churn: ChurnModel::stable(),
            network: LinkModel::Ideal,
            ledger_shards: 0,
            intra_step_threads: 0,
            seed: 0x5EED_C011_AB01,
        }
    }
}

impl SimulationConfig {
    /// The paper's setting for Figure 3: 100 rational peers, incentive
    /// scheme on.
    pub fn paper_figure3_with_incentive() -> Self {
        Self::default()
    }

    /// The Figure 3 baseline: identical but without any incentive scheme.
    pub fn paper_figure3_without_incentive() -> Self {
        Self {
            incentive: IncentiveScheme::None,
            ..Self::default()
        }
    }

    /// A population-scale preset for the `large_population` scenario
    /// family (10⁴–10⁵ peers): short phases, voting restricted to each
    /// article's previous successful editors (the Section III-C2 design
    /// rule, which keeps the voter pool per edit `O(editors)` instead of
    /// `O(population)`), a reduced edit/download rate, and automatic
    /// ledger sharding + intra-step threading.
    ///
    /// The paper's own configuration is 100 peers; this preset is how the
    /// reproduction exercises the same protocol at populations three
    /// orders of magnitude larger.
    pub fn large_population(population: usize) -> Self {
        Self {
            population,
            initial_articles: 200,
            phases: PhaseConfig {
                training_steps: 30,
                evaluation_steps: 20,
                ..Default::default()
            },
            edit_probability: 0.05,
            restrict_voters_to_editors: true,
            download_probability: DownloadRate::Fixed(0.2),
            ledger_shards: 0,
            intra_step_threads: 0,
            ..Self::default()
        }
    }

    /// Builder-style: set the population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Builder-style: set the ledger shard count (`0` = automatic).
    pub fn with_ledger_shards(mut self, shards: usize) -> Self {
        self.ledger_shards = shards;
        self
    }

    /// Builder-style: set the intra-step worker-thread count
    /// (`0` = automatic).
    pub fn with_intra_step_threads(mut self, threads: usize) -> Self {
        self.intra_step_threads = threads;
        self
    }

    /// Builder-style: set the behaviour mix.
    pub fn with_mix(mut self, mix: BehaviorMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder-style: set the incentive scheme.
    pub fn with_incentive(mut self, incentive: IncentiveScheme) -> Self {
        self.incentive = incentive;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the phase configuration.
    pub fn with_phases(mut self, phases: PhaseConfig) -> Self {
        self.phases = phases;
        self
    }

    /// Builder-style: use the paper's literal `P = 1 / N_S` download rate.
    pub fn with_paper_literal_download_rate(mut self) -> Self {
        self.download_probability = DownloadRate::InverseSharers;
        self
    }

    /// Builder-style: enable the reputation-propagation phase with the
    /// given backend, run every `interval` steps.
    pub fn with_propagation(mut self, scheme: PropagationScheme, interval: u64) -> Self {
        self.propagation = PropagationConfig {
            scheme: Some(scheme),
            interval,
            pretrusted: 0,
        };
        self
    }

    /// Builder-style: anchor the EigenTrust restart distribution on the
    /// `k` lowest (honest-by-construction) peer ids. Requires
    /// [`SimulationConfig::with_propagation`] with
    /// [`PropagationScheme::EigenTrust`].
    pub fn with_pretrusted(mut self, k: usize) -> Self {
        self.propagation.pretrusted = k;
        self
    }

    /// Builder-style: feed service differentiation from the configured
    /// propagation backend's output instead of the globally visible ledger
    /// (requires [`SimulationConfig::with_propagation`]).
    pub fn with_propagated_reputation(mut self) -> Self {
        self.reputation_source = ReputationSource::Propagated;
        self
    }

    /// Builder-style: decay a rejoining peer's sharing-contribution record
    /// by `factor` per offline step (`1.0` = off).
    pub fn with_uptime_discount(mut self, factor: f64) -> Self {
        self.reputation_uptime_discount = factor;
        self
    }

    /// Builder-style: add one strategic adversary unit (see
    /// [`AdversarySpec`]). A non-empty adversary list prepends the
    /// `adversary` phase to the default phase order when the configuration
    /// is built through [`ScenarioSpec`](crate::spec::ScenarioSpec).
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversaries.push(adversary);
        self
    }

    /// Builder-style: set the churn model (joins, departures, whitewashing
    /// between steps). A non-stable model adds the `churn` phase to the
    /// front of the default phase order when the configuration is built
    /// through [`ScenarioSpec`](crate::spec::ScenarioSpec).
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Builder-style: set the network link model (latency, loss,
    /// connection lifecycle). [`LinkModel::Ideal`] — the default — is
    /// bit-identical to an engine without the fault layer.
    pub fn with_network(mut self, network: LinkModel) -> Self {
        self.network = network;
        self
    }

    /// Validates the configuration, returning a typed [`SpecError`] naming
    /// the offending field instead of panicking.
    pub fn check(&self) -> Result<(), SpecError> {
        fn ensure(field: &'static str, ok: bool, message: &str) -> Result<(), SpecError> {
            if ok {
                Ok(())
            } else {
                Err(SpecError::invalid(field, message))
            }
        }
        ensure(
            "population",
            self.population > 1,
            "population must exceed 1",
        )?;
        ensure(
            "reputation_states",
            self.reputation_states > 0,
            "need at least one reputation state",
        )?;
        ensure(
            "min_reputation",
            self.min_reputation > 0.0 && self.min_reputation < 1.0,
            "min reputation must lie in (0, 1)",
        )?;
        ensure(
            "reputation_beta",
            self.reputation_beta > 0.0,
            "reputation beta must be positive",
        )?;
        ensure(
            "edit_probability",
            (0.0..=1.0).contains(&self.edit_probability),
            "edit probability must lie in [0, 1]",
        )?;
        if let DownloadRate::Fixed(p) = self.download_probability {
            ensure(
                "download_probability",
                (0.0..=1.0).contains(&p),
                "download probability must lie in [0, 1]",
            )?;
        }
        ensure(
            "max_voters_per_edit",
            self.max_voters_per_edit > 0,
            "need at least one voter per edit",
        )?;
        ensure(
            "propagation",
            self.propagation.interval > 0,
            "propagation interval must be at least 1 step",
        )?;
        ensure(
            "reputation_source",
            self.reputation_source == ReputationSource::Ledger || self.propagation.scheme.is_some(),
            "propagated reputation requires a configured propagation scheme",
        )?;
        ensure(
            "propagation",
            self.propagation.pretrusted == 0
                || self.propagation.scheme == Some(PropagationScheme::EigenTrust),
            "a pre-trusted set requires the eigentrust propagation scheme",
        )?;
        ensure(
            "propagation",
            self.propagation.pretrusted < self.population,
            "pre-trusted set must be smaller than the population",
        )?;
        ensure(
            "reputation_uptime_discount",
            self.reputation_uptime_discount > 0.0 && self.reputation_uptime_discount <= 1.0,
            "uptime discount factor must lie in (0, 1]",
        )?;
        for adversary in &self.adversaries {
            adversary
                .check()
                .map_err(|m| SpecError::invalid("adversaries", &m))?;
        }
        let claimed: usize = self.adversaries.iter().map(AdversarySpec::count).sum();
        ensure(
            "adversaries",
            claimed + 2 <= self.population,
            "adversaries must leave at least two honest peers",
        )?;
        self.learning
            .check()
            .map_err(|m| SpecError::invalid("learning", &m))?;
        self.contribution
            .check()
            .map_err(|m| SpecError::invalid("contribution", &m))?;
        self.service
            .check()
            .map_err(|m| SpecError::invalid("service", &m))?;
        self.punishment
            .check()
            .map_err(|m| SpecError::invalid("punishment", &m))?;
        self.churn
            .check()
            .map_err(|m| SpecError::invalid("churn", &m))?;
        self.network
            .check()
            .map_err(|m| SpecError::invalid("network", &m))?;
        ensure(
            "service",
            self.service.edit_threshold > self.min_reputation,
            "edit threshold must exceed R_min",
        )?;
        Ok(())
    }

    /// Panicking shim around [`SimulationConfig::check`], kept for callers
    /// that treat an invalid configuration as a programming error. New code
    /// should call [`SimulationConfig::check`] (or build configurations
    /// through the validating [`ScenarioSpec`](crate::spec::ScenarioSpec)
    /// builder) and handle the typed error.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; the message names the offending field.
    pub fn validate(&self) {
        if let Err(error) = self.check() {
            panic!("{error}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collabsim_gametheory::behavior::BehaviorType;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimulationConfig::default();
        assert_eq!(c.population, 100);
        assert_eq!(c.reputation_states, 10);
        assert_eq!(c.min_reputation, 0.05);
        assert_eq!(c.phases.training_steps, 10_000);
        assert_eq!(c.phases.training_temperature, f64::MAX);
        assert_eq!(c.phases.evaluation_temperature, 1.0);
        assert_eq!(c.incentive, IncentiveScheme::ReputationBased);
        c.validate();
    }

    #[test]
    fn figure3_configs_differ_only_in_incentive() {
        let with = SimulationConfig::paper_figure3_with_incentive();
        let without = SimulationConfig::paper_figure3_without_incentive();
        assert_eq!(with.incentive, IncentiveScheme::ReputationBased);
        assert_eq!(without.incentive, IncentiveScheme::None);
        assert_eq!(with.population, without.population);
        assert_eq!(with.mix, without.mix);
    }

    #[test]
    fn builder_methods_compose() {
        let c = SimulationConfig::default()
            .with_mix(BehaviorMix::sweep(BehaviorType::Altruistic, 0.6))
            .with_incentive(IncentiveScheme::TitForTat)
            .with_seed(42)
            .with_phases(PhaseConfig::quick())
            .with_paper_literal_download_rate();
        assert_eq!(c.seed, 42);
        assert_eq!(c.incentive, IncentiveScheme::TitForTat);
        assert_eq!(c.phases.training_steps, 300);
        assert_eq!(c.download_probability, DownloadRate::InverseSharers);
        assert!((c.mix.altruistic() - 0.6).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn propagation_is_disabled_by_default_and_composes_via_builder() {
        let c = SimulationConfig::default();
        assert_eq!(c.propagation.scheme, None);
        let c = c.with_propagation(PropagationScheme::Gossip, 50);
        assert_eq!(c.propagation.scheme, Some(PropagationScheme::Gossip));
        assert_eq!(c.propagation.interval, 50);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "propagation interval")]
    fn zero_propagation_interval_rejected() {
        let mut c = SimulationConfig::default().with_propagation(PropagationScheme::EigenTrust, 1);
        c.propagation.interval = 0;
        c.validate();
    }

    #[test]
    fn pretrusted_set_requires_eigentrust_and_room() {
        let c = SimulationConfig::default()
            .with_propagation(PropagationScheme::EigenTrust, 50)
            .with_pretrusted(5);
        c.validate();
        let gossip = SimulationConfig::default()
            .with_propagation(PropagationScheme::Gossip, 50)
            .with_pretrusted(5);
        assert!(gossip.check().is_err(), "pretrusted needs eigentrust");
        let oversized = SimulationConfig::default()
            .with_propagation(PropagationScheme::EigenTrust, 50)
            .with_pretrusted(SimulationConfig::default().population);
        assert!(oversized.check().is_err(), "pretrusted must leave room");
    }

    #[test]
    fn uptime_discount_must_lie_in_unit_interval() {
        SimulationConfig::default()
            .with_uptime_discount(0.95)
            .validate();
        SimulationConfig::default()
            .with_uptime_discount(1.0)
            .validate();
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                SimulationConfig::default()
                    .with_uptime_discount(bad)
                    .check()
                    .is_err(),
                "factor {bad} must be rejected"
            );
        }
    }

    #[test]
    fn large_population_preset_is_valid_and_bounded() {
        let c = SimulationConfig::large_population(10_000);
        assert_eq!(c.population, 10_000);
        assert!(c.restrict_voters_to_editors);
        assert_eq!(c.ledger_shards, 0, "auto sharding");
        assert_eq!(c.intra_step_threads, 0, "auto threading");
        assert!(c.phases.total_steps() <= 100, "preset must stay runnable");
        c.validate();
    }

    #[test]
    fn sharding_and_threading_builders_compose() {
        let c = SimulationConfig::default()
            .with_population(64)
            .with_ledger_shards(8)
            .with_intra_step_threads(4);
        assert_eq!(c.population, 64);
        assert_eq!(c.ledger_shards, 8);
        assert_eq!(c.intra_step_threads, 4);
        c.validate();
    }

    #[test]
    fn total_steps_adds_phases() {
        let p = PhaseConfig {
            training_steps: 100,
            evaluation_steps: 50,
            ..Default::default()
        };
        assert_eq!(p.total_steps(), 150);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        SimulationConfig {
            population: 1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "edit threshold")]
    fn threshold_below_rmin_rejected() {
        let c = SimulationConfig {
            min_reputation: 0.5,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn network_defaults_to_ideal_and_composes_via_builder() {
        let c = SimulationConfig::default();
        assert_eq!(c.network, LinkModel::Ideal);
        let c = c.with_network(LinkModel::IidLoss { loss: 0.05 });
        assert_eq!(c.network, LinkModel::IidLoss { loss: 0.05 });
        c.validate();
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn out_of_range_network_model_rejected() {
        SimulationConfig::default()
            .with_network(LinkModel::IidLoss { loss: 1.5 })
            .validate();
    }

    #[test]
    #[should_panic(expected = "download probability")]
    fn bad_download_probability_rejected() {
        SimulationConfig {
            download_probability: DownloadRate::Fixed(1.5),
            ..Default::default()
        }
        .validate();
    }
}
