//! The learning adversary: a Q-learning attacker trained by the arms-race
//! harness.
//!
//! The five scripted strategies of the adversary subsystem encode fixed
//! attack recipes; [`LearningAdversary`] instead *discovers* one. Each
//! controlled peer runs a tabular Q-learner (the same
//! `collabsim_rl` machinery the honest rational agents use) over a
//! discretised observation of its own standing — reputation bucket,
//! punishment proximity, steps since its last identity reset, vote-rights
//! status — and a small macro-action space built from the typed
//! [`AdversaryAction`]s: lurk, free-ride, cooperate, vandalise (bare or
//! under full-sharing cover), whitewash, or lie low. The reward is damage
//! dealt minus reputation shed: the bandwidth the peer extracted from the
//! network that step, minus the sharing reputation a whitewash discarded.
//!
//! **Determinism contract.** All randomness comes from the dedicated
//! `adversary_rng` stream handed to [`AdversaryStrategy::on_step`]. In
//! training mode (`adversary = learning,K,<alpha>` with `alpha > 0`) each
//! acting peer consumes exactly one draw per step (a Boltzmann sample over
//! its Q-row). In **frozen** mode (`alpha = 0`) action selection is the
//! deterministic greedy argmax and the strategy draws *nothing* — a frozen
//! policy replays bit-identically at any `SCENARIO_THREADS` setting. A
//! frozen *untrained* learner is inert by construction: ties in the
//! all-zero Q-table break towards action 0, which is "lurk" (emit
//! nothing), so inserting it leaves the golden report untouched.
//!
//! Trained policies travel through the checkpoint layer: the strategy
//! implements [`AdversaryStrategy::export_policy`] /
//! [`AdversaryStrategy::restore_policy`], and the snapshot codec carries
//! the resulting [`PolicyState`] so training is resumable and a trained
//! Q-table can be injected into a frozen evaluation fork.

use super::{AdversaryAction, AdversaryStrategy, PeerPolicyState, PolicyState};
use crate::action::{CollabAction, EditBehavior, ShareLevel};
use crate::observer::WorldView;
use collabsim_netsim::peer::PeerId;
use collabsim_rl::boltzmann::{boltzmann_distribution, sample_probs};
use collabsim_rl::qtable::QTable;
use collabsim_rl::space::StateSpace;
use rand::rngs::StdRng;

/// Reputation buckets of the observation space.
pub const REPUTATION_BUCKETS: usize = 4;
/// Punishment-proximity levels: clean / approaching / punished.
pub const PUNISHMENT_LEVELS: usize = 3;
/// Steps-since-reset buckets (fresh / settling / established / veteran).
pub const RESET_AGE_BUCKETS: usize = 4;
/// Vote-rights states (revoked / intact).
pub const VOTE_STATES: usize = 2;

/// Total observation states:
/// `REPUTATION_BUCKETS × PUNISHMENT_LEVELS × RESET_AGE_BUCKETS × VOTE_STATES`.
pub const OBSERVATION_STATES: usize =
    REPUTATION_BUCKETS * PUNISHMENT_LEVELS * RESET_AGE_BUCKETS * VOTE_STATES;

/// The attacker's macro-actions, in Q-table column order. Index 0 **must**
/// stay the no-op: greedy ties break to the lowest index, so an untrained
/// all-zero table lurks and the frozen learner is provably inert.
pub const ATTACK_ACTIONS: usize = 7;

/// Steps a lying-low peer stays offline before its scheduled re-entry.
const LIE_LOW_STEPS: u64 = 8;
/// Discount factor of the attacker's Q-update.
const DISCOUNT: f64 = 0.9;
/// Boltzmann temperature of training-mode exploration.
const TEMPERATURE: f64 = 1.0;

/// Steps-since-reset bucket boundaries (upper-exclusive, last unbounded).
const RESET_AGE_BOUNDS: [u64; 3] = [25, 75, 150];

/// A Q-learning adversary strategy (registry name `learning`).
///
/// The [`AdversarySpec`](super::AdversarySpec) parameter is the learning
/// rate `alpha`: `alpha > 0` trains (Boltzmann exploration plus Q-updates),
/// `alpha = 0` freezes the policy (greedy replay, zero RNG draws, no
/// updates). The Q-table is shared across the unit's peers — every
/// controlled peer feeds the same table, which is what makes small units
/// learn at a usable rate — while the per-peer trajectory state
/// (last state/action, reset age, reward baselines) is tracked per peer.
pub struct LearningAdversary {
    alpha: f64,
    q: QTable,
    updates: u64,
    per_peer: Vec<PeerTrajectory>,
}

/// Per-peer trajectory state of the learner.
#[derive(Debug, Clone)]
struct PeerTrajectory {
    /// The `(state, action)` awaiting its reward, if any.
    last: Option<(usize, usize)>,
    /// Steps since the peer last whitewashed (saturating).
    steps_since_reset: u64,
    /// Total downloaded bandwidth observed at the previous step (the
    /// damage baseline; reset to 0 when a whitewash clears the upload
    /// history).
    last_downloaded: f64,
    /// Reputation shed by a whitewash emitted last step, charged against
    /// the next observed reward.
    pending_shed: f64,
}

impl Default for PeerTrajectory {
    fn default() -> Self {
        Self {
            last: None,
            steps_since_reset: u64::MAX / 2,
            last_downloaded: 0.0,
            pending_shed: 0.0,
        }
    }
}

impl LearningAdversary {
    /// A fresh learner with the given learning rate (`0` = frozen).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` (the registry factory
    /// validates first and reports a typed error).
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "learning rate must lie in [0, 1]"
        );
        Self {
            alpha,
            q: QTable::zeroed(OBSERVATION_STATES, ATTACK_ACTIONS),
            updates: 0,
            per_peer: Vec::new(),
        }
    }

    /// Whether the policy is frozen (`alpha = 0`): greedy replay, no
    /// updates, no RNG draws.
    pub fn is_frozen(&self) -> bool {
        self.alpha == 0.0
    }

    /// The attacker's Q-table.
    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// Number of Q-updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Discretises one peer's observation into a state index.
    fn observe(view: &WorldView<'_>, peer: usize, steps_since_reset: u64) -> usize {
        let world = view.world();
        let r_min = world.config.min_reputation;
        let rep_bucket = StateSpace::new(REPUTATION_BUCKETS).bucket(
            world.ledger.sharing_reputation(peer),
            r_min,
            1.0,
        );
        let punishment = if !world.ledger.can_edit(peer) {
            2
        } else if 2 * world.ledger.declined_edits(peer)
            >= world.config.punishment.max_declined_edits
        {
            1
        } else {
            0
        };
        let reset_age = RESET_AGE_BOUNDS
            .iter()
            .position(|&bound| steps_since_reset < bound)
            .unwrap_or(RESET_AGE_BOUNDS.len());
        let vote = usize::from(world.ledger.can_vote(peer));
        ((rep_bucket * PUNISHMENT_LEVELS + punishment) * RESET_AGE_BUCKETS + reset_age)
            * VOTE_STATES
            + vote
    }

    /// Total bandwidth `peer` has downloaded so far (the damage signal:
    /// the sum of every other peer's uploads to it).
    fn downloaded(view: &WorldView<'_>, peer: usize) -> f64 {
        let uploads = &view.world().uploads;
        (0..view.population())
            .map(|source| uploads.get(source, peer))
            .sum()
    }

    /// Emits the world actions of one macro-action; returns whether the
    /// peer whitewashed (so the caller resets its trajectory baselines).
    fn emit(
        &mut self,
        choice: usize,
        peer: PeerId,
        now: u64,
        actions: &mut Vec<AdversaryAction>,
    ) -> bool {
        let forced = |action: CollabAction| AdversaryAction::Act { peer, action };
        match choice {
            0 => {} // Lurk: the peer behaves like its underlying agent.
            1 => actions.push(forced(CollabAction::idle())),
            2 => actions.push(forced(CollabAction::altruistic())),
            3 => actions.push(forced(CollabAction {
                bandwidth: ShareLevel::Half,
                articles: ShareLevel::Half,
                edit: EditBehavior::Destructive,
            })),
            4 => actions.push(forced(CollabAction {
                bandwidth: ShareLevel::Full,
                articles: ShareLevel::Full,
                edit: EditBehavior::Destructive,
            })),
            5 => {
                actions.push(AdversaryAction::Whitewash { peer });
                return true;
            }
            6 => {
                actions.push(AdversaryAction::Depart { peer });
                actions.push(AdversaryAction::RejoinAt {
                    peer,
                    step: now + LIE_LOW_STEPS,
                });
            }
            other => unreachable!("attack action {other} out of range"),
        }
        false
    }
}

impl AdversaryStrategy for LearningAdversary {
    fn name(&self) -> &'static str {
        "learning"
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        if self.per_peer.len() != peers.len() {
            self.per_peer = vec![PeerTrajectory::default(); peers.len()];
        }
        let now = view.now();
        let frozen = self.is_frozen();
        for (slot, &peer) in peers.iter().enumerate() {
            let p = peer.index();
            // An offline peer (lying low) neither observes nor acts; its
            // pending transition is settled when it returns.
            if !view.world().peers.peer(peer).online {
                continue;
            }
            let steps_since_reset = self.per_peer[slot].steps_since_reset;
            let state = Self::observe(&view, p, steps_since_reset);
            let downloaded = Self::downloaded(&view, p);
            if frozen {
                // Greedy replay: deterministic, drawing nothing.
                let choice = self.q.greedy_action(state);
                let reset = self.emit(choice, peer, now, actions);
                let traj = &mut self.per_peer[slot];
                traj.steps_since_reset = if reset {
                    0
                } else {
                    traj.steps_since_reset.saturating_add(1)
                };
                continue;
            }
            // Settle the previous transition: reward is the bandwidth
            // extracted since the last observation minus the reputation a
            // whitewash shed in between.
            {
                let traj = &mut self.per_peer[slot];
                if let Some((prev_state, prev_action)) = traj.last {
                    let reward = (downloaded - traj.last_downloaded) - traj.pending_shed;
                    let target = reward + DISCOUNT * self.q.max_value(state);
                    let old = self.q.get(prev_state, prev_action);
                    self.q.set(
                        prev_state,
                        prev_action,
                        (1.0 - self.alpha) * old + self.alpha * target,
                    );
                    self.updates += 1;
                }
                traj.pending_shed = 0.0;
            }
            // Boltzmann exploration over the Q-row: exactly one RNG draw.
            let probs = boltzmann_distribution(self.q.row(state), TEMPERATURE);
            let choice = sample_probs(&probs, rng);
            let shed_if_reset = (view.world().ledger.sharing_reputation(p)
                - view.world().config.min_reputation)
                .max(0.0);
            let reset = self.emit(choice, peer, now, actions);
            let traj = &mut self.per_peer[slot];
            traj.last = Some((state, choice));
            if reset {
                // The whitewash wipes the upload history, so the damage
                // baseline restarts at zero and the shed reputation is
                // charged against the next reward.
                traj.pending_shed = shed_if_reset;
                traj.last_downloaded = 0.0;
                traj.steps_since_reset = 0;
            } else {
                traj.last_downloaded = downloaded;
                traj.steps_since_reset = traj.steps_since_reset.saturating_add(1);
            }
        }
    }

    fn export_policy(&self) -> Option<PolicyState> {
        Some(PolicyState {
            states: OBSERVATION_STATES as u32,
            actions: ATTACK_ACTIONS as u32,
            q: (0..OBSERVATION_STATES)
                .flat_map(|s| self.q.row(s).iter().copied())
                .collect(),
            updates: self.updates,
            per_peer: self
                .per_peer
                .iter()
                .map(|traj| PeerPolicyState {
                    last_state: traj.last.map(|(s, _)| s as u64),
                    last_action: traj.last.map(|(_, a)| a as u32).unwrap_or(0),
                    steps_since_reset: traj.steps_since_reset,
                    last_downloaded: traj.last_downloaded,
                    pending_shed: traj.pending_shed,
                })
                .collect(),
        })
    }

    fn restore_policy(&mut self, policy: &PolicyState) {
        // A policy of a different shape (older code, different strategy)
        // is ignored rather than corrupting the table.
        if policy.states as usize != OBSERVATION_STATES
            || policy.actions as usize != ATTACK_ACTIONS
            || policy.q.len() != OBSERVATION_STATES * ATTACK_ACTIONS
        {
            return;
        }
        for (index, &value) in policy.q.iter().enumerate() {
            self.q
                .set(index / ATTACK_ACTIONS, index % ATTACK_ACTIONS, value);
        }
        self.updates = policy.updates;
        self.per_peer = policy
            .per_peer
            .iter()
            .map(|state| PeerTrajectory {
                last: state.last_state.map(|s| {
                    (
                        (s as usize).min(OBSERVATION_STATES - 1),
                        (state.last_action as usize).min(ATTACK_ACTIONS - 1),
                    )
                }),
                steps_since_reset: state.steps_since_reset,
                last_downloaded: state.last_downloaded,
                pending_shed: state.pending_shed,
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversarySpec;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use crate::spec::ScenarioSpec;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 16,
            initial_articles: 8,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn action_zero_is_the_lurk_noop() {
        let mut learner = LearningAdversary::new(0.0);
        let mut actions = Vec::new();
        let reset = learner.emit(0, PeerId(3), 7, &mut actions);
        assert!(actions.is_empty(), "lurk must emit nothing");
        assert!(!reset);
    }

    #[test]
    fn every_macro_action_emits_within_bounds() {
        let mut learner = LearningAdversary::new(0.5);
        for choice in 0..ATTACK_ACTIONS {
            let mut actions = Vec::new();
            learner.emit(choice, PeerId(9), 11, &mut actions);
            assert!(actions.len() <= 2, "action {choice}");
        }
    }

    #[test]
    fn frozen_untrained_learner_is_bit_identical_to_no_adversary() {
        let config = quick_config();
        let baseline = Simulation::new(config.clone()).run();
        let mut with_learner = config;
        with_learner.adversaries = vec![AdversarySpec::new("learning", 3).with_parameter(0.0)];
        let report = Simulation::from_spec(&ScenarioSpec::from_config(with_learner).unwrap())
            .unwrap()
            .run();
        assert_eq!(
            report, baseline,
            "frozen all-zero policy must lurk and leave the run untouched"
        );
    }

    #[test]
    fn training_mode_updates_the_table_and_stays_finite() {
        let mut config = quick_config();
        config.adversaries = vec![AdversarySpec::new("learning", 3).with_parameter(0.2)];
        let mut sim = Simulation::from_spec(&ScenarioSpec::from_config(config).unwrap()).unwrap();
        sim.run();
        let policy = sim.world().adversaries.export_policies();
        let exported = policy[0].as_ref().expect("learning unit exports a policy");
        assert!(exported.updates > 0, "training must update the table");
        assert!(exported.q.iter().all(|v| v.is_finite()));
        assert_eq!(exported.per_peer.len(), 3);
    }

    #[test]
    fn policy_round_trips_through_export_and_restore() {
        let mut config = quick_config();
        config.adversaries = vec![AdversarySpec::new("learning", 2).with_parameter(0.3)];
        let mut sim = Simulation::from_spec(&ScenarioSpec::from_config(config).unwrap()).unwrap();
        sim.run();
        let exported = sim.world().adversaries.export_policies()[0]
            .clone()
            .expect("policy exported");
        let mut fresh = LearningAdversary::new(0.0);
        fresh.restore_policy(&exported);
        let round = fresh.export_policy().expect("restored policy re-exports");
        assert_eq!(round.q, exported.q);
        assert_eq!(round.updates, exported.updates);
        assert_eq!(round.per_peer.len(), exported.per_peer.len());
    }

    #[test]
    fn mismatched_policy_shapes_are_ignored() {
        let mut learner = LearningAdversary::new(0.0);
        learner.restore_policy(&PolicyState {
            states: 3,
            actions: 2,
            q: vec![9.0; 6],
            updates: 77,
            per_peer: Vec::new(),
        });
        assert_eq!(learner.updates(), 0, "foreign policy must be rejected");
        assert!(learner.q_table().iter().all(|(_, _, v)| v == 0.0));
    }

    #[test]
    fn trained_frozen_replay_is_deterministic_across_runs() {
        let mut train = quick_config();
        train.adversaries = vec![AdversarySpec::new("learning", 3).with_parameter(0.4)];
        let train_spec = ScenarioSpec::from_config(train).unwrap();
        let mut sim = Simulation::from_spec(&train_spec).unwrap();
        sim.run();
        let policies = sim.world().adversaries.export_policies();

        let mut frozen = quick_config();
        frozen.adversaries = vec![AdversarySpec::new("learning", 3).with_parameter(0.0)];
        let frozen_spec = ScenarioSpec::from_config(frozen).unwrap();
        let run = |policies: &[Option<PolicyState>]| {
            let mut sim = Simulation::from_spec(&frozen_spec).unwrap();
            sim.world_mut().adversaries.restore_policies(policies);
            sim.run()
        };
        assert_eq!(run(&policies), run(&policies));
    }
}
