//! The built-in adversary strategies and the registry resolving spec names
//! into them.
//!
//! Five scripted strategies ship with the engine, covering the attack
//! classes the paper's incentive scheme is supposed to defeat (a sixth,
//! the Q-learning [`LearningAdversary`](super::LearningAdversary), lives in
//! the sibling `learning` module and registers here as `learning`):
//!
//! | name | attack |
//! |------|--------|
//! | `adaptive-whitewash` | vandalise, whitewash **just before** punishment bites |
//! | `naive-whitewash` | the same vandal, whitewashing at random times (the stochastic baseline) |
//! | `collusion-ring` | share fully, cross-vote each other's destructive edits, abstain outside |
//! | `oscillating-freerider` | build reputation, then free-ride on it, cyclically |
//! | `sybil-slander` | contribute nothing, slander every outsider edit, cycle identities on detection |
//! | `learning` | whatever the arms-race trainer discovers (parameter = learning rate, 0 = frozen) |
//!
//! Custom strategies register like custom phases: implement
//! [`AdversaryStrategy`], [`AdversaryRegistry::register`] a factory, and
//! name it in an [`AdversarySpec`] — the engine never changes.

use super::{AdversaryAction, AdversaryRoster, AdversarySpec, AdversaryStrategy, VotePolicy};
use crate::action::{CollabAction, EditBehavior, ShareLevel};
use crate::config::SimulationConfig;
use crate::observer::WorldView;
use crate::spec::SpecError;
use collabsim_netsim::peer::PeerId;
use rand::rngs::StdRng;
use rand::Rng;

/// The vandal action shared by both whitewash strategies: share half of
/// both resources (enough reputation to keep editing rights and service
/// flowing) while submitting destructive edits.
fn vandal_action() -> CollabAction {
    CollabAction {
        bandwidth: ShareLevel::Half,
        articles: ShareLevel::Half,
        edit: EditBehavior::Destructive,
    }
}

/// **`adaptive-whitewash`** — a vandal that watches its own
/// declined-edit counter and resets its identity *exactly when the
/// malicious-editor punishment is about to bite*: one more declined edit
/// would trigger the reputation reset and editing lockout, so the
/// whitewash pre-empts it — the fresh identity gets a full new decline
/// allowance and never suffers the punishment cycle. Voting-rights
/// revocations are deliberately ignored: they are cheap for a vandal whose
/// damage is edits, and reacting to them would thrash the identity.
///
/// Parameter: re-entry delay in steps. With a non-zero delay the strategy
/// additionally departs after each whitewash and schedules the re-entry
/// through the timed [`ReentrySchedule`](collabsim_netsim::churn::ReentrySchedule)
/// (lie low, then return), the "timed whitewash" of the ROADMAP.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveWhitewash {
    /// Steps to stay offline after each whitewash (0 = stay online).
    pub rejoin_delay: u64,
}

impl AdversaryStrategy for AdaptiveWhitewash {
    fn name(&self) -> &'static str {
        "adaptive-whitewash"
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        _rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        let world = view.world();
        let policy = &world.config.punishment;
        for &peer in peers {
            if !world.peers.peer(peer).online {
                continue;
            }
            let p = peer.index();
            actions.push(AdversaryAction::Act {
                peer,
                action: vandal_action(),
            });
            // `PunishmentPolicy` punishes when a counter *exceeds* its
            // maximum, i.e. on the (max+1)-th offence — so a counter at the
            // maximum means the very next declined edit triggers the
            // revocation. Declined edits accumulate at most one per step
            // (one edit attempt per peer-step), so this check can never be
            // overtaken within a step.
            let edit_punishment_imminent =
                world.ledger.declined_edits(p) >= policy.max_declined_edits;
            if edit_punishment_imminent || !world.ledger.can_edit(p) {
                actions.push(AdversaryAction::Whitewash { peer });
                if self.rejoin_delay > 0 {
                    actions.push(AdversaryAction::Depart { peer });
                    actions.push(AdversaryAction::RejoinAt {
                        peer,
                        step: view.now() + self.rejoin_delay,
                    });
                }
            }
        }
    }
}

/// **`naive-whitewash`** — the same vandal as [`AdaptiveWhitewash`], but
/// whitewashing *stochastically* (a fixed per-peer-per-step probability)
/// with no regard for the punishment state: the strategic baseline the
/// adaptive variant is measured against. It resets while its record is
/// still valuable and it sits out the punishments it fails to dodge.
///
/// Parameter: the whitewash probability (0 = the 0.02 default).
#[derive(Debug, Clone, Copy)]
pub struct NaiveWhitewash {
    /// Per-peer whitewash probability per step.
    pub probability: f64,
}

impl Default for NaiveWhitewash {
    fn default() -> Self {
        Self { probability: 0.02 }
    }
}

impl AdversaryStrategy for NaiveWhitewash {
    fn name(&self) -> &'static str {
        "naive-whitewash"
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        let world = view.world();
        for &peer in peers {
            if !world.peers.peer(peer).online {
                continue;
            }
            actions.push(AdversaryAction::Act {
                peer,
                action: vandal_action(),
            });
            if rng.gen_bool(self.probability) {
                actions.push(AdversaryAction::Whitewash { peer });
            }
        }
    }
}

/// **`collusion-ring`** — members share everything (earning full sharing
/// reputation, service priority and the right to edit), submit destructive
/// edits, and *cross-vote*: every member supports every other member's
/// edits and abstains on outsider edits, so the ring spends no unsuccessful
/// votes on content it does not care about. Parameter: unused.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollusionRing;

impl AdversaryStrategy for CollusionRing {
    fn name(&self) -> &'static str {
        "collusion-ring"
    }

    fn vote_policy(&self) -> VotePolicy {
        VotePolicy::SupportRing
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        _rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        let world = view.world();
        for &peer in peers {
            if !world.peers.peer(peer).online {
                continue;
            }
            actions.push(AdversaryAction::Act {
                peer,
                action: CollabAction {
                    bandwidth: ShareLevel::Full,
                    articles: ShareLevel::Full,
                    edit: EditBehavior::Destructive,
                },
            });
        }
    }
}

/// **`oscillating-freerider`** — alternates between a *build* half-cycle
/// (share everything, look like a model citizen) and a *milk* half-cycle
/// (share nothing while still downloading on the reputation built before).
/// The oscillation defeats naive "current behaviour" heuristics; the
/// contribution decay of the reputation function is what limits it.
///
/// Parameter: the full cycle length in steps (0 = the 60-step default).
#[derive(Debug, Clone, Copy)]
pub struct OscillatingFreeRider {
    /// Full build+milk cycle length in steps.
    pub period: u64,
}

impl Default for OscillatingFreeRider {
    fn default() -> Self {
        Self { period: 60 }
    }
}

impl AdversaryStrategy for OscillatingFreeRider {
    fn name(&self) -> &'static str {
        "oscillating-freerider"
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        _rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        let world = view.world();
        // The registry factory validates `period >= 2`; clamp here too so a
        // directly constructed strategy with a degenerate period cannot
        // divide by zero.
        let period = self.period.max(2);
        let building = view.now() % period < period / 2;
        let share = if building {
            ShareLevel::Full
        } else {
            ShareLevel::None
        };
        for &peer in peers {
            if !world.peers.peer(peer).online {
                continue;
            }
            actions.push(AdversaryAction::Act {
                peer,
                action: CollabAction {
                    bandwidth: share,
                    articles: share,
                    edit: EditBehavior::Abstain,
                },
            });
        }
    }
}

/// **`sybil-slander`** — a set of throwaway identities that contribute
/// nothing, never edit, and vote **against every outsider edit** (and for
/// each other's, though they submit none). When the punishment machinery
/// catches a sybil (voting rights revoked), the identity is whitewashed and
/// the slander continues — sybil cycling amplified by `R_min` newcomers
/// always being allowed to vote. Parameter: unused.
#[derive(Debug, Clone, Copy, Default)]
pub struct SybilSlander;

impl AdversaryStrategy for SybilSlander {
    fn name(&self) -> &'static str {
        "sybil-slander"
    }

    fn vote_policy(&self) -> VotePolicy {
        VotePolicy::SlanderOutsiders
    }

    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        _rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    ) {
        let world = view.world();
        for &peer in peers {
            if !world.peers.peer(peer).online {
                continue;
            }
            let p = peer.index();
            actions.push(AdversaryAction::Act {
                peer,
                action: CollabAction {
                    bandwidth: ShareLevel::None,
                    articles: ShareLevel::None,
                    edit: EditBehavior::Abstain,
                },
            });
            if !world.ledger.can_vote(p) {
                actions.push(AdversaryAction::Whitewash { peer });
            }
        }
    }
}

/// A factory producing one boxed strategy for a spec (or a human-readable
/// parameter error).
pub type StrategyFactory = Box<
    dyn Fn(&AdversarySpec, &SimulationConfig) -> Result<Box<dyn AdversaryStrategy>, String>
        + Send
        + Sync,
>;

/// A name → [`AdversaryStrategy`]-factory table resolving
/// [`AdversarySpec`]s into an [`AdversaryRoster`] — the adversary-side
/// sibling of [`PhaseRegistry`](crate::pipeline::PhaseRegistry).
pub struct AdversaryRegistry {
    entries: Vec<(String, StrategyFactory)>,
}

impl AdversaryRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The standard registry: the built-in strategies under their stable
    /// names (`adaptive-whitewash`, `naive-whitewash`, `collusion-ring`,
    /// `oscillating-freerider`, `sybil-slander`, `learning`).
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry
            .register("adaptive-whitewash", |spec, _| {
                let delay = spec.parameter();
                if delay.fract() != 0.0 {
                    return Err(format!(
                        "adaptive-whitewash rejoin delay must be a whole number of steps, \
                         got {delay}"
                    ));
                }
                Ok(Box::new(AdaptiveWhitewash {
                    rejoin_delay: delay as u64,
                }))
            })
            .register("naive-whitewash", |spec, _| {
                let probability = if spec.parameter() > 0.0 {
                    spec.parameter()
                } else {
                    NaiveWhitewash::default().probability
                };
                if probability > 1.0 {
                    return Err(format!(
                        "naive-whitewash probability must lie in (0, 1], got {probability}"
                    ));
                }
                Ok(Box::new(NaiveWhitewash { probability }))
            })
            .register("collusion-ring", |_, _| Ok(Box::new(CollusionRing)))
            .register("oscillating-freerider", |spec, _| {
                let raw = spec.parameter();
                if raw.fract() != 0.0 {
                    return Err(format!(
                        "oscillating-freerider period must be a whole number of steps, got {raw}"
                    ));
                }
                let period = if raw > 0.0 {
                    raw as u64
                } else {
                    OscillatingFreeRider::default().period
                };
                if period < 2 {
                    return Err(format!(
                        "oscillating-freerider period must be at least 2 steps, got {raw}"
                    ));
                }
                Ok(Box::new(OscillatingFreeRider { period }))
            })
            .register("sybil-slander", |_, _| Ok(Box::new(SybilSlander)))
            .register("learning", |spec, _| {
                let alpha = spec.parameter();
                if alpha > 1.0 {
                    return Err(format!(
                        "learning rate must lie in [0, 1] (0 = frozen greedy replay), got {alpha}"
                    ));
                }
                Ok(Box::new(super::LearningAdversary::new(alpha)))
            });
        registry
    }

    /// Registers (or replaces — latest registration wins) a named strategy
    /// factory. The factory receives the spec (for the parameter) and the
    /// full configuration, and may reject bad parameters with a message.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F) -> &mut Self
    where
        F: Fn(&AdversarySpec, &SimulationConfig) -> Result<Box<dyn AdversaryStrategy>, String>
            + Send
            + Sync
            + 'static,
    {
        let name = name.into();
        self.entries.retain(|(existing, _)| *existing != name);
        self.entries.push((name, Box::new(factory)));
        self
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Instantiates one strategy for a spec.
    pub fn instantiate(
        &self,
        spec: &AdversarySpec,
        config: &SimulationConfig,
    ) -> Result<Box<dyn AdversaryStrategy>, SpecError> {
        let factory = self
            .entries
            .iter()
            .find(|(n, _)| n == spec.strategy())
            .map(|(_, factory)| factory)
            .ok_or_else(|| SpecError::UnknownStrategy {
                name: spec.strategy().to_string(),
            })?;
        factory(spec, config).map_err(|message| SpecError::InvalidField {
            field: "adversaries",
            message,
        })
    }

    /// Resolves every [`AdversarySpec`] of a configuration into an
    /// [`AdversaryRoster`] (an empty spec list yields the inert empty
    /// roster).
    pub fn build_roster(&self, config: &SimulationConfig) -> Result<AdversaryRoster, SpecError> {
        if config.adversaries.is_empty() {
            return Ok(AdversaryRoster::empty());
        }
        let mut units = Vec::with_capacity(config.adversaries.len());
        for spec in &config.adversaries {
            let strategy = self.instantiate(spec, config)?;
            units.push((spec.strategy().to_string(), spec.count(), strategy));
        }
        Ok(AdversaryRoster::from_units(config.population, units))
    }

    /// Validates that every adversary spec of a configuration resolves and
    /// has acceptable parameters — without building a roster, so sweep
    /// pre-checks do not allocate population-sized control tables per spec
    /// (the structural count/field checks are
    /// [`SimulationConfig::check`](crate::config::SimulationConfig::check)'s
    /// job).
    pub fn check_config(&self, config: &SimulationConfig) -> Result<(), SpecError> {
        for spec in &config.adversaries {
            self.instantiate(spec, config)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for AdversaryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for AdversaryRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_knows_all_builtin_strategies() {
        let registry = AdversaryRegistry::standard();
        assert_eq!(registry.len(), 6);
        for name in [
            "adaptive-whitewash",
            "naive-whitewash",
            "collusion-ring",
            "oscillating-freerider",
            "sybil-slander",
            "learning",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        assert!(!registry.contains("no-such-strategy"));
        assert!(!registry.is_empty());
    }

    #[test]
    fn unknown_strategy_is_a_typed_error() {
        let registry = AdversaryRegistry::standard();
        let config = SimulationConfig {
            adversaries: vec![AdversarySpec::new("wormhole", 2)],
            ..Default::default()
        };
        let err = registry.build_roster(&config).unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownStrategy {
                name: "wormhole".to_string()
            }
        );
        assert!(err.to_string().contains("wormhole"));
    }

    #[test]
    fn bad_parameters_are_rejected_with_field_errors() {
        let registry = AdversaryRegistry::standard();
        let mut config = SimulationConfig {
            adversaries: vec![AdversarySpec::new("naive-whitewash", 2).with_parameter(1.5)],
            ..Default::default()
        };
        let err = registry.check_config(&config).unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "adversaries",
                ..
            }
        ));
        config.adversaries =
            vec![AdversarySpec::new("oscillating-freerider", 2).with_parameter(1.0)];
        assert!(registry.check_config(&config).is_err());
        // A fractional rejoin delay is rejected, not silently truncated.
        config.adversaries = vec![AdversarySpec::new("adaptive-whitewash", 2).with_parameter(0.5)];
        assert!(registry.check_config(&config).is_err());
    }

    #[test]
    fn parameters_default_when_zero() {
        let registry = AdversaryRegistry::standard();
        let config = SimulationConfig::default();
        let strategy = registry
            .instantiate(&AdversarySpec::new("naive-whitewash", 1), &config)
            .unwrap();
        assert_eq!(strategy.name(), "naive-whitewash");
        let strategy = registry
            .instantiate(&AdversarySpec::new("oscillating-freerider", 1), &config)
            .unwrap();
        assert_eq!(strategy.name(), "oscillating-freerider");
    }

    #[test]
    fn custom_registrations_replace_standard_ones() {
        let mut registry = AdversaryRegistry::standard();
        registry.register("collusion-ring", |_, _| Ok(Box::new(SybilSlander)));
        assert_eq!(registry.len(), 6, "replacement, not addition");
        let config = SimulationConfig::default();
        let strategy = registry
            .instantiate(&AdversarySpec::new("collusion-ring", 1), &config)
            .unwrap();
        assert_eq!(strategy.name(), "sybil-slander", "latest wins");
    }
}
