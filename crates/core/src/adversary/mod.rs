//! The adversary subsystem: strategic attack agents driving the simulation
//! from inside.
//!
//! The incentive scheme of the paper exists to defeat adversaries —
//! free-riders, whitewashers, vote manipulators — yet a purely stochastic
//! churn model cannot *time* its attacks. This module adds strategic
//! adversaries: an [`AdversaryStrategy`] observes a read-only
//! [`WorldView`] every step and emits typed [`AdversaryAction`]s (forced
//! free-riding, timed whitewashes, on/off oscillation, departures with
//! scheduled re-entries), which the [`AdversaryPhase`] applies to the world
//! before action selection runs.
//!
//! The moving parts:
//!
//! * [`AdversarySpec`] — the declarative description of one adversary unit
//!   (strategy name, number of controlled peers, one strategy parameter),
//!   carried by [`SimulationConfig::adversaries`](crate::config::SimulationConfig::adversaries) and the
//!   [`ScenarioSpec`](crate::spec::ScenarioSpec) text format,
//! * [`AdversaryRegistry`] — named
//!   strategy factories (five built-ins; custom strategies register like
//!   custom phases),
//! * [`AdversaryRoster`] — the per-run state: instantiated strategy units,
//!   their controlled peers, forced actions, vote directives, the timed
//!   [`ReentrySchedule`] and per-unit [`AttackStats`],
//! * [`AdversaryPhase`] — the registry-resolved step phase (name
//!   `adversary`) that runs every unit and applies its actions,
//! * [`AttackMetricsObserver`] — a [`StepObserver`] aggregating per-unit
//!   damage, reputation retention and time-to-detection.
//!
//! **Determinism contract:** the phase draws exclusively from
//! `world.adversary_rng`, and with no adversaries configured it is not even
//! part of the default phase order — a run without adversaries is
//! bit-identical to a build without this module. With adversaries enabled,
//! everything the phase does is sequential and seeded, so parallel scenario
//! execution still reproduces sequential reports bit for bit.

mod learning;
mod strategies;

pub use learning::{
    LearningAdversary, ATTACK_ACTIONS, OBSERVATION_STATES, PUNISHMENT_LEVELS, REPUTATION_BUCKETS,
    RESET_AGE_BUCKETS, VOTE_STATES,
};
pub use strategies::{
    AdaptiveWhitewash, AdversaryRegistry, CollusionRing, NaiveWhitewash, OscillatingFreeRider,
    StrategyFactory, SybilSlander,
};

use crate::action::CollabAction;
use crate::observer::{StepObserver, WorldView};
use crate::pipeline::{StepContext, StepPhase};
use crate::world::SimWorld;
use collabsim_netsim::churn::ReentrySchedule;
use collabsim_netsim::peer::PeerId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Declarative description of one adversary unit: which strategy controls
/// how many peers, with one strategy-specific parameter.
///
/// Units are listed in
/// [`SimulationConfig::adversaries`](crate::config::SimulationConfig::adversaries);
/// peers are
/// assigned deterministically from the **top of the id range**, in list
/// order (the first unit controls the highest ids), so the assignment is a
/// pure function of the spec and the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarySpec {
    strategy: String,
    count: usize,
    parameter: f64,
}

impl AdversarySpec {
    /// A unit of `count` peers driven by the named strategy, with the
    /// strategy's default parameter (`0.0` — every built-in treats zero as
    /// "use my default").
    pub fn new(strategy: impl Into<String>, count: usize) -> Self {
        Self {
            strategy: strategy.into(),
            count,
            parameter: 0.0,
        }
    }

    /// Returns the spec with an explicit strategy parameter (meaning is
    /// strategy-specific: whitewash probability, oscillation period, rejoin
    /// delay …).
    pub fn with_parameter(mut self, parameter: f64) -> Self {
        self.parameter = parameter;
        self
    }

    /// The strategy name resolved against an
    /// [`AdversaryRegistry`].
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Number of peers the unit controls.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The strategy parameter (`0.0` = strategy default).
    pub fn parameter(&self) -> f64 {
        self.parameter
    }

    /// Validates the spec's structure (the name is resolved later, against
    /// a registry). Names are restricted to `[A-Za-z0-9_-]` so the
    /// `ScenarioSpec` text format round-trips them exactly.
    pub fn check(&self) -> Result<(), String> {
        if self.strategy.is_empty() {
            return Err("adversary strategy name must not be empty".to_string());
        }
        if !self
            .strategy
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "adversary strategy name `{}` may only contain [A-Za-z0-9_-]",
                self.strategy
            ));
        }
        if self.count == 0 {
            return Err("adversary unit must control at least one peer".to_string());
        }
        if !self.parameter.is_finite() || self.parameter < 0.0 {
            return Err(format!(
                "adversary parameter must be finite and >= 0, got {}",
                self.parameter
            ));
        }
        Ok(())
    }
}

/// One typed action an [`AdversaryStrategy`] can take on a step.
///
/// Actions referencing peers in impossible states (whitewashing an offline
/// peer, rejoining an online one) or peers the emitting unit does not
/// control are silently skipped by the phase — a strategy observing a
/// stale view must not be able to corrupt the world, and no strategy can
/// puppet honest peers or another unit's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryAction {
    /// Override the peer's action for this step: the selection phase uses
    /// this instead of the agent's learned/fixed choice (and draws no
    /// randomness for the peer). This is how strategies free-ride, share
    /// tactically or submit destructive edits on cue.
    Act {
        /// The controlled peer.
        peer: PeerId,
        /// The action to force.
        action: CollabAction,
    },
    /// Reset the peer's identity in place (reputation to `R_min`,
    /// punishment counters cleared, rights restored, upload history
    /// forgotten) — the strategic version of the churn model's whitewash.
    Whitewash {
        /// The controlled peer (must be online).
        peer: PeerId,
    },
    /// Take the peer offline (offers withdrawn, in-flight download
    /// cancelled; the ledger record freezes, exactly like a churn
    /// departure).
    Depart {
        /// The controlled peer (must be online).
        peer: PeerId,
    },
    /// Bring a departed peer back online immediately.
    Rejoin {
        /// The controlled peer (must be offline).
        peer: PeerId,
    },
    /// Schedule a departed peer's re-entry at a future step through the
    /// [`ReentrySchedule`] — the timed-whitewash/lie-low primitive.
    RejoinAt {
        /// The controlled peer.
        peer: PeerId,
        /// The step at which the re-entry fires.
        step: u64,
    },
}

/// How a unit's peers vote on edits, applied as an override inside the
/// edit-vote phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VotePolicy {
    /// No override: the peer's (possibly forced) edit behaviour decides its
    /// stance, exactly like an honest peer.
    #[default]
    Honest,
    /// Support every edit submitted by a member of the same unit; abstain
    /// on everything else (a stealthy collusion ring — no unsuccessful
    /// votes wasted on outsiders).
    SupportRing,
    /// Support the unit's own edits and vote **against** every outsider
    /// edit (sybil slander — maximally destructive voting).
    SlanderOutsiders,
    /// Never vote on anything — maximum stealth: the unit's peers cannot
    /// accumulate unsuccessful votes, so the vote-punishment machinery
    /// never sees them.
    Silent,
}

/// The resolved stance of one overridden vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteDirective {
    /// Vote in favour of the edit.
    Support,
    /// Vote against the edit.
    Oppose,
    /// Cast no vote on this edit.
    Abstain,
}

/// A strategic adversary: observes the world each step and emits actions
/// for its controlled peers.
///
/// Strategies are stateful (`&mut self`) — cycle counters, cooldowns and
/// per-peer memories live inside the strategy — and draw any randomness
/// they need from the dedicated adversary RNG stream handed to
/// [`AdversaryStrategy::on_step`], never from the main step RNG.
pub trait AdversaryStrategy: Send {
    /// Stable strategy name (diagnostics; the registry key is the spec's).
    fn name(&self) -> &'static str;

    /// The voting override applied to the unit's peers (resolved once at
    /// roster construction).
    fn vote_policy(&self) -> VotePolicy {
        VotePolicy::Honest
    }

    /// Observes the world and pushes this step's actions for the unit's
    /// `peers` into `actions`. Called once per step, before action
    /// selection; the view reflects the post-churn state.
    ///
    /// **Caveat:** during this callback the roster itself is detached from
    /// the world (it is what is calling you), so `view.world().adversaries`
    /// is empty. Coordinate through the `peers` argument and the
    /// strategy's own state, not through the roster.
    fn on_step(
        &mut self,
        peers: &[PeerId],
        view: WorldView<'_>,
        rng: &mut StdRng,
        actions: &mut Vec<AdversaryAction>,
    );

    /// Exports the strategy's learned policy for checkpointing, if it has
    /// one. Scripted strategies return `None` (the default); the
    /// [`LearningAdversary`] exports its Q-table and per-peer trajectory
    /// state so training survives a snapshot/resume cycle.
    fn export_policy(&self) -> Option<PolicyState> {
        None
    }

    /// Restores a previously exported policy. The default is a no-op;
    /// implementations must tolerate (and ignore) a policy of a foreign
    /// shape rather than panic, since a snapshot may have been written by a
    /// differently configured strategy.
    fn restore_policy(&mut self, _policy: &PolicyState) {}
}

/// A serialized adversary policy: the learned Q-table plus the per-peer
/// trajectory state needed to resume training mid-run. Plain data — the
/// snapshot codec encodes it bit-exactly (f64 via `to_bits`) so a frozen
/// policy replays identically after a round trip.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyState {
    /// Observation-state count of the Q-table.
    pub states: u32,
    /// Action count of the Q-table.
    pub actions: u32,
    /// Row-major Q-values (`states * actions` entries).
    pub q: Vec<f64>,
    /// Number of Q-updates applied so far.
    pub updates: u64,
    /// Per-controlled-peer trajectory state, index-aligned with the unit's
    /// peer list.
    pub per_peer: Vec<PeerPolicyState>,
}

/// One controlled peer's trajectory state inside a [`PolicyState`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PeerPolicyState {
    /// The state of the pending `(state, action)` transition, if any.
    pub last_state: Option<u64>,
    /// The action of the pending transition (0 when none is pending).
    pub last_action: u32,
    /// Steps since the peer's last identity reset (saturating).
    pub steps_since_reset: u64,
    /// Damage baseline: total downloaded bandwidth at the last observation.
    pub last_downloaded: f64,
    /// Reputation shed by a whitewash, charged against the next reward.
    pub pending_shed: f64,
}

/// Running per-unit attack counters maintained by the [`AdversaryPhase`]
/// as it applies actions (the action-side metrics; the outcome-side
/// metrics — damage, retention, detection — live in
/// [`AttackMetricsObserver`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackStats {
    /// Whitewashes performed by the strategy.
    pub resets: u64,
    /// Sharing reputation above `R_min` discarded across those whitewashes
    /// (what the strategy paid to shed its records).
    pub reputation_shed_sum: f64,
    /// Peer-steps in which a forced action was actually consumed by the
    /// selection phase (an action forced onto a peer that departs in the
    /// same adversary step is never consumed and not counted).
    pub forced_steps: u64,
    /// Strategic departures performed.
    pub departures: u64,
    /// Re-entries performed (immediate and scheduled).
    pub rejoins: u64,
    /// Votes cast through the unit's vote-policy override.
    pub override_votes: u64,
}

impl AttackStats {
    /// Mean reputation shed per whitewash (0 with no whitewashes). Lower is
    /// better for the attacker: a well-timed whitewash discards a record
    /// that was already worthless.
    pub fn shed_per_reset(&self) -> f64 {
        if self.resets == 0 {
            0.0
        } else {
            self.reputation_shed_sum / self.resets as f64
        }
    }
}

/// One instantiated adversary unit of a roster.
pub struct AdversaryUnit {
    name: String,
    peers: Vec<PeerId>,
    policy: VotePolicy,
    strategy: Box<dyn AdversaryStrategy>,
    stats: AttackStats,
}

impl AdversaryUnit {
    /// The strategy name the unit was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The peers the unit controls, ascending by id.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// The unit's voting override policy.
    pub fn vote_policy(&self) -> VotePolicy {
        self.policy
    }

    /// The unit's running action-side counters.
    pub fn stats(&self) -> &AttackStats {
        &self.stats
    }
}

impl std::fmt::Debug for AdversaryUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryUnit")
            .field("name", &self.name)
            .field("peers", &self.peers.len())
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

/// The per-run adversary state carried by [`SimWorld`]: instantiated units,
/// the peer → unit control map, this step's forced actions, the timed
/// re-entry schedule and the action scratch.
///
/// An empty roster (no adversaries configured) is inert by construction:
/// every query short-circuits, nothing is allocated per step, and the
/// [`AdversaryPhase`] returns immediately.
#[derive(Debug, Default)]
pub struct AdversaryRoster {
    units: Vec<AdversaryUnit>,
    /// Unit index per peer (`None` = honest), index-aligned with peers.
    controller: Vec<Option<u32>>,
    /// This step's forced action per peer, cleared and refilled by the
    /// phase each step.
    forced: Vec<Option<CollabAction>>,
    /// Timed re-entries queued by `RejoinAt` actions.
    schedule: ReentrySchedule,
    reentry_scratch: Vec<PeerId>,
    action_scratch: Vec<AdversaryAction>,
}

impl AdversaryRoster {
    /// An inert roster with no units.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a roster from instantiated `(name, strategy)` pairs and their
    /// peer counts, assigning peers from the top of the id range in unit
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the total peer count does not leave at least two honest
    /// peers (callers validate through
    /// [`SimulationConfig::check`](crate::config::SimulationConfig::check)
    /// first).
    pub fn from_units(
        population: usize,
        units: Vec<(String, usize, Box<dyn AdversaryStrategy>)>,
    ) -> Self {
        let total: usize = units.iter().map(|(_, count, _)| count).sum();
        assert!(
            total + 2 <= population,
            "adversaries must leave at least two honest peers ({total} of {population} claimed)"
        );
        let mut controller = vec![None; population];
        let mut built = Vec::with_capacity(units.len());
        let mut next = population;
        for (index, (name, count, strategy)) in units.into_iter().enumerate() {
            let start = next - count;
            let peers: Vec<PeerId> = (start..next).map(|p| PeerId(p as u32)).collect();
            for peer in &peers {
                controller[peer.index()] = Some(index as u32);
            }
            next = start;
            let policy = strategy.vote_policy();
            built.push(AdversaryUnit {
                name,
                peers,
                policy,
                strategy,
                stats: AttackStats::default(),
            });
        }
        Self {
            units: built,
            controller,
            forced: vec![None; population],
            schedule: ReentrySchedule::new(),
            reentry_scratch: Vec::new(),
            action_scratch: Vec::new(),
        }
    }

    /// Whether the roster has no units (and is therefore inert).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The instantiated units, in spec order.
    pub fn units(&self) -> &[AdversaryUnit] {
        &self.units
    }

    /// The per-unit running attack counters, in unit order (checkpoint
    /// export; everything else a roster holds is either rebuilt from the
    /// spec — units, controller map — or per-step scratch).
    pub fn export_unit_stats(&self) -> Vec<AttackStats> {
        self.units.iter().map(|unit| unit.stats).collect()
    }

    /// Overwrites the per-unit attack counters with a checkpoint export.
    ///
    /// # Panics
    ///
    /// Panics if the export does not match the roster's unit count.
    pub fn restore_unit_stats(&mut self, stats: &[AttackStats]) {
        assert_eq!(
            stats.len(),
            self.units.len(),
            "attack-stats export does not match the unit count"
        );
        for (unit, restored) in self.units.iter_mut().zip(stats) {
            unit.stats = *restored;
        }
    }

    /// The per-unit learned policies, in unit order (checkpoint export;
    /// `None` for scripted units).
    pub fn export_policies(&self) -> Vec<Option<PolicyState>> {
        self.units
            .iter()
            .map(|unit| unit.strategy.export_policy())
            .collect()
    }

    /// Hands each unit its checkpointed policy (`None` entries and scripted
    /// units are no-ops).
    ///
    /// # Panics
    ///
    /// Panics if the export does not match the roster's unit count.
    pub fn restore_policies(&mut self, policies: &[Option<PolicyState>]) {
        assert_eq!(
            policies.len(),
            self.units.len(),
            "policy export does not match the unit count"
        );
        for (unit, policy) in self.units.iter_mut().zip(policies) {
            if let Some(policy) = policy {
                unit.strategy.restore_policy(policy);
            }
        }
    }

    /// The queued timed re-entries (checkpoint export).
    pub fn schedule_entries(&self) -> &[(u64, PeerId)] {
        self.schedule.entries()
    }

    /// Overwrites the timed re-entry schedule with a checkpoint export.
    pub fn restore_schedule(&mut self, entries: Vec<(u64, PeerId)>) {
        self.schedule = ReentrySchedule::from_entries(entries);
    }

    /// The unit index controlling `peer`, if any.
    pub fn controller_of(&self, peer: usize) -> Option<usize> {
        if self.units.is_empty() {
            return None;
        }
        self.controller
            .get(peer)
            .copied()
            .flatten()
            .map(|u| u as usize)
    }

    /// The action forced onto `peer` for the current step, if any. The
    /// selection phase consults this and skips the agent's own choice (and
    /// its RNG draw) when a forced action is present.
    #[inline]
    pub fn forced_action(&self, peer: usize) -> Option<CollabAction> {
        if self.units.is_empty() {
            return None;
        }
        self.forced.get(peer).copied().flatten()
    }

    /// The whole forced-action table as a slice (empty for a default
    /// roster). The parallel learning phase captures this instead of
    /// calling [`AdversaryRoster::forced_action`] per peer so its scoped
    /// workers share one `Sync` borrow; `slice.get(p)` reproduces the
    /// per-peer accessor's semantics exactly.
    #[inline]
    pub fn forced_actions(&self) -> &[Option<CollabAction>] {
        if self.units.is_empty() {
            return &[];
        }
        &self.forced
    }

    /// The voting override of `voter` on an edit submitted by `editor`
    /// (`None` = no override; the voter's own stance logic applies).
    #[inline]
    pub fn vote_stance(&self, voter: usize, editor: usize) -> Option<VoteDirective> {
        let unit = self.controller_of(voter)?;
        match self.units[unit].policy {
            VotePolicy::Honest => None,
            VotePolicy::SupportRing => {
                if self.controller_of(editor) == Some(unit) {
                    Some(VoteDirective::Support)
                } else {
                    Some(VoteDirective::Abstain)
                }
            }
            VotePolicy::SlanderOutsiders => {
                if self.controller_of(editor) == Some(unit) {
                    Some(VoteDirective::Support)
                } else {
                    Some(VoteDirective::Oppose)
                }
            }
            VotePolicy::Silent => Some(VoteDirective::Abstain),
        }
    }

    /// Records that `voter` cast a vote through its unit's override (called
    /// by the edit-vote phase so [`AttackStats::override_votes`] counts the
    /// manipulation volume).
    pub fn note_override_vote(&mut self, voter: usize) {
        if let Some(unit) = self.controller_of(voter) {
            self.units[unit].stats.override_votes += 1;
        }
    }

    /// Runs one adversary step: drains due timed re-entries, clears the
    /// forced-action table, lets every unit observe the world and emit
    /// actions, and applies them in emission order.
    pub fn run_step(&mut self, world: &mut SimWorld, now: u64, rng: &mut StdRng) {
        self.reentry_scratch.clear();
        self.schedule.drain_due(now, &mut self.reentry_scratch);
        for i in 0..self.reentry_scratch.len() {
            let peer = self.reentry_scratch[i];
            if !world.peers.peer(peer).online {
                world.rejoin_peer(peer, now);
                if let Some(unit) = self.controller_of(peer.index()) {
                    self.units[unit].stats.rejoins += 1;
                }
            }
        }
        for slot in &mut self.forced {
            *slot = None;
        }
        let mut actions = std::mem::take(&mut self.action_scratch);
        for index in 0..self.units.len() {
            actions.clear();
            {
                let unit = &mut self.units[index];
                unit.strategy
                    .on_step(&unit.peers, WorldView::new(world), rng, &mut actions);
            }
            for &action in &actions {
                self.apply(world, index, now, action);
            }
        }
        actions.clear();
        self.action_scratch = actions;
    }

    /// Applies one action for the unit at `index`, skipping actions whose
    /// peer is in an impossible state — or not controlled by the emitting
    /// unit: a strategy can only act on its own peers, so a buggy (or
    /// malicious) custom strategy cannot puppet honest peers or another
    /// unit's.
    fn apply(&mut self, world: &mut SimWorld, index: usize, now: u64, action: AdversaryAction) {
        let target = match action {
            AdversaryAction::Act { peer, .. }
            | AdversaryAction::Whitewash { peer }
            | AdversaryAction::Depart { peer }
            | AdversaryAction::Rejoin { peer }
            | AdversaryAction::RejoinAt { peer, .. } => peer,
        };
        if self.controller_of(target.index()) != Some(index) {
            return;
        }
        let stats = &mut self.units[index].stats;
        match action {
            AdversaryAction::Act { peer, action } => {
                // The consumption is what counts: `forced_steps` is
                // incremented by the selection phase when the action is
                // actually used (a peer departed later this same phase
                // never consumes it).
                self.forced[peer.index()] = Some(action);
            }
            AdversaryAction::Whitewash { peer } => {
                if world.peers.peer(peer).online {
                    let shed = world.whitewash_peer(peer, now);
                    stats.resets += 1;
                    stats.reputation_shed_sum += shed;
                }
            }
            AdversaryAction::Depart { peer } => {
                if world.peers.peer(peer).online && world.peers.online().count() > 2 {
                    world.depart_peer(peer, now);
                    stats.departures += 1;
                }
            }
            AdversaryAction::Rejoin { peer } => {
                if !world.peers.peer(peer).online {
                    world.rejoin_peer(peer, now);
                    stats.rejoins += 1;
                }
            }
            AdversaryAction::RejoinAt { peer, step } => {
                // Only a peer that is actually offline needs a scheduled
                // re-entry; if the paired `Depart` was skipped (e.g. the
                // two-online-peers floor), queuing one would rejoin the
                // peer at a stale time after a later unrelated departure.
                if !world.peers.peer(peer).online {
                    self.schedule.schedule(step, peer);
                }
            }
        }
    }

    /// Records that `peer`'s forced action was consumed by the selection
    /// phase this step (the [`AttackStats::forced_steps`] counter).
    pub fn note_forced(&mut self, peer: usize) {
        if let Some(unit) = self.controller_of(peer) {
            self.units[unit].stats.forced_steps += 1;
        }
    }
}

/// The adversary step phase (registry name `adversary`): runs every
/// configured strategy unit against a read-only view of the post-churn
/// world and applies the emitted actions, all on the dedicated
/// `world.adversary_rng` stream.
///
/// With an empty roster the phase returns before touching anything, so a
/// pipeline that includes it on a spec without adversaries is bit-identical
/// to one without the phase (pinned by `tests/adversary_prop.rs`).
pub struct AdversaryPhase;

impl StepPhase for AdversaryPhase {
    fn name(&self) -> &'static str {
        "adversary"
    }

    fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
        if world.adversaries.is_empty() {
            return;
        }
        let now = ctx.now;
        // The roster needs `&mut world` while strategies hold a read-only
        // view; temporarily lifting roster and RNG out of the world splits
        // the borrow without clones.
        let mut roster = std::mem::take(&mut world.adversaries);
        let mut rng = std::mem::replace(&mut world.adversary_rng, StdRng::seed_from_u64(0));
        roster.run_step(world, now, &mut rng);
        world.adversary_rng = rng;
        world.adversaries = roster;
    }
}

/// Per-unit outcome metrics aggregated by [`AttackMetricsObserver`].
#[derive(Debug, Clone, PartialEq)]
pub struct UnitAttackMetrics {
    /// The unit's strategy name.
    pub name: String,
    /// The peers the unit controls.
    pub peers: Vec<usize>,
    /// Bandwidth downloaded by the unit's peers during the measured
    /// evaluation phase (the service the attackers extracted — "damage
    /// dealt" on the sharing side).
    pub damage_bandwidth: f64,
    /// Destructive edits by unit peers that were *accepted* during
    /// measurement (damage dealt on the content side).
    pub destructive_accepted: u64,
    /// Sum over measured steps of the unit's mean sharing reputation
    /// (divide by `samples` for the retention figure).
    pub reputation_sum: f64,
    /// Measured steps contributing to `reputation_sum`.
    pub samples: u64,
    /// First step at which any unit peer lost voting or editing rights
    /// (`None` = the attack was never detected by the punishment
    /// machinery).
    pub first_detection: Option<u64>,
    /// Voting-rights revocations observed on unit peers (the cheap
    /// punishment — a vandal can keep editing without a vote).
    pub vote_revocations: u64,
    /// Editing-rights revocations observed on unit peers (the expensive
    /// punishment: both reputations reset and editing locked until the
    /// sharing reputation recovers).
    pub edit_revocations: u64,
}

impl UnitAttackMetrics {
    /// Mean sharing reputation the unit's peers retained over the measured
    /// steps (0 with no samples).
    pub fn mean_reputation_retained(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.reputation_sum / self.samples as f64
        }
    }

    /// Total rights revocations of either kind.
    pub fn rights_revocations(&self) -> u64 {
        self.vote_revocations + self.edit_revocations
    }
}

/// A [`StepObserver`] producing per-strategy outcome metrics: damage dealt,
/// reputation retained and time-to-detection. Attach before
/// [`Simulation::run`](crate::engine::Simulation::run); read the metrics
/// back through
/// [`Simulation::observer`](crate::engine::Simulation::observer).
///
/// Observation is read-only — attaching the observer can never change
/// simulation results.
#[derive(Debug, Default)]
pub struct AttackMetricsObserver {
    metrics: Vec<UnitAttackMetrics>,
    /// `(can_vote, can_edit)` per tracked peer at the previous step,
    /// flattened in unit order (detects right-revocation transitions).
    prev_rights: Vec<(bool, bool)>,
}

impl AttackMetricsObserver {
    /// A fresh observer (units are discovered at run start).
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-unit metrics, in spec order.
    pub fn metrics(&self) -> &[UnitAttackMetrics] {
        &self.metrics
    }

    /// The metrics of the first unit with the given strategy name.
    pub fn unit(&self, name: &str) -> Option<&UnitAttackMetrics> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

impl StepObserver for AttackMetricsObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_run_start(&mut self, world: WorldView<'_>) {
        self.metrics.clear();
        self.prev_rights.clear();
        for unit in world.world().adversaries.units() {
            let peers: Vec<usize> = unit.peers().iter().map(|p| p.index()).collect();
            for &p in &peers {
                self.prev_rights.push((
                    world.world().ledger.can_vote(p),
                    world.world().ledger.can_edit(p),
                ));
            }
            self.metrics.push(UnitAttackMetrics {
                name: unit.name().to_string(),
                peers,
                damage_bandwidth: 0.0,
                destructive_accepted: 0,
                reputation_sum: 0.0,
                samples: 0,
                first_detection: None,
                vote_revocations: 0,
                edit_revocations: 0,
            });
        }
    }

    fn on_step_end(&mut self, world: WorldView<'_>, ctx: &StepContext) {
        if self.metrics.is_empty() {
            return;
        }
        let w = world.world();
        let now = world.now();
        let mut flat = 0usize;
        for metrics in &mut self.metrics {
            let mut reputation = 0.0;
            for &p in &metrics.peers {
                // Retention is the *service-visible* reputation: the
                // propagated estimate under `reputation_source =
                // propagated`, the ledger otherwise — what an attacker
                // retained is what the service rules still grant it.
                reputation += w.service_sharing_reputation(p);
                if w.measuring {
                    metrics.damage_bandwidth += ctx.downloaded[p];
                    if ctx.actions.get(p).map(|a| a.edit)
                        == Some(crate::action::EditBehavior::Destructive)
                    {
                        metrics.destructive_accepted += u64::from(ctx.accepted_edits[p]);
                    }
                }
                let rights = (w.ledger.can_vote(p), w.ledger.can_edit(p));
                let prev = self.prev_rights[flat];
                if prev.0 && !rights.0 {
                    metrics.vote_revocations += 1;
                    metrics.first_detection.get_or_insert(now);
                }
                if prev.1 && !rights.1 {
                    metrics.edit_revocations += 1;
                    metrics.first_detection.get_or_insert(now);
                }
                self.prev_rights[flat] = rights;
                flat += 1;
            }
            if w.measuring && !metrics.peers.is_empty() {
                metrics.reputation_sum += reputation / metrics.peers.len() as f64;
                metrics.samples += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use crate::spec::ScenarioSpec;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 16,
            initial_articles: 8,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn adversary_spec_validation() {
        assert!(AdversarySpec::new("adaptive-whitewash", 3).check().is_ok());
        assert!(AdversarySpec::new("", 3).check().is_err());
        assert!(AdversarySpec::new("has space", 3).check().is_err());
        assert!(AdversarySpec::new("has,comma", 3).check().is_err());
        assert!(AdversarySpec::new("ok", 0).check().is_err());
        assert!(AdversarySpec::new("ok", 1)
            .with_parameter(f64::NAN)
            .check()
            .is_err());
        assert!(AdversarySpec::new("ok", 1)
            .with_parameter(-1.0)
            .check()
            .is_err());
    }

    #[test]
    fn roster_assigns_peers_from_the_top_in_unit_order() {
        let roster = AdversaryRoster::from_units(
            10,
            vec![
                ("a".to_string(), 2, Box::new(CollusionRing) as _),
                ("b".to_string(), 3, Box::new(SybilSlander) as _),
            ],
        );
        assert_eq!(roster.units().len(), 2);
        assert_eq!(roster.units()[0].peers(), &[PeerId(8), PeerId(9)]);
        assert_eq!(
            roster.units()[1].peers(),
            &[PeerId(5), PeerId(6), PeerId(7)]
        );
        assert_eq!(roster.controller_of(9), Some(0));
        assert_eq!(roster.controller_of(5), Some(1));
        assert_eq!(roster.controller_of(0), None);
        assert!(!roster.is_empty());
        assert!(AdversaryRoster::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two honest peers")]
    fn roster_rejects_claiming_almost_everyone() {
        let _ = AdversaryRoster::from_units(
            4,
            vec![("a".to_string(), 3, Box::new(CollusionRing) as _)],
        );
    }

    #[test]
    fn ring_vote_stances_support_inside_and_abstain_outside() {
        let roster = AdversaryRoster::from_units(
            10,
            vec![
                ("ring".to_string(), 2, Box::new(CollusionRing) as _),
                ("sybil".to_string(), 2, Box::new(SybilSlander) as _),
            ],
        );
        // Ring peers: 8, 9. Sybil peers: 6, 7.
        assert_eq!(roster.vote_stance(8, 9), Some(VoteDirective::Support));
        assert_eq!(roster.vote_stance(8, 0), Some(VoteDirective::Abstain));
        assert_eq!(roster.vote_stance(8, 6), Some(VoteDirective::Abstain));
        assert_eq!(roster.vote_stance(6, 7), Some(VoteDirective::Support));
        assert_eq!(roster.vote_stance(6, 0), Some(VoteDirective::Oppose));
        assert_eq!(roster.vote_stance(0, 8), None, "honest voters unaffected");
    }

    #[test]
    fn empty_roster_pipeline_is_bit_identical_to_the_standard_pipeline() {
        let config = quick_config();
        let without = Simulation::new(config.clone()).run();
        let spec = ScenarioSpec::builder()
            .configure(|c| *c = config)
            .phase_order([
                "adversary",
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning",
            ])
            .build()
            .unwrap();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        assert_eq!(sim.pipeline().phase_names()[0], "adversary");
        assert_eq!(sim.run(), without, "empty roster must be inert");
    }

    #[test]
    fn forced_actions_bypass_the_agents() {
        let mut config = quick_config();
        config.adversaries = vec![AdversarySpec::new("oscillating-freerider", 3)];
        let mut sim = Simulation::from_spec(&ScenarioSpec::from_config(config).unwrap()).unwrap();
        sim.add_observer(AttackMetricsObserver::new());
        sim.run();
        let unit = &sim.world().adversaries.units()[0];
        assert_eq!(unit.name(), "oscillating-freerider");
        assert_eq!(unit.peers().len(), 3);
        assert_eq!(
            unit.stats().forced_steps,
            3 * 100,
            "every online unit peer is forced every step"
        );
        let metrics: &AttackMetricsObserver = sim.observer(0).expect("attached above");
        let m = metrics.unit("oscillating-freerider").expect("tracked");
        assert_eq!(m.samples, 40, "one retention sample per measured step");
        assert!(m.mean_reputation_retained() > 0.0);
    }

    #[test]
    fn whitewash_actions_reset_identity_and_are_counted() {
        let mut config = quick_config();
        config.adversaries = vec![AdversarySpec::new("naive-whitewash", 2).with_parameter(0.05)];
        let mut sim = Simulation::from_spec(&ScenarioSpec::from_config(config).unwrap()).unwrap();
        sim.run();
        let stats = *sim.world().adversaries.units()[0].stats();
        assert!(stats.resets > 0, "5% per peer-step over 200 peer-steps");
        assert!(stats.reputation_shed_sum >= 0.0);
        assert!(stats.shed_per_reset() >= 0.0);
    }

    #[test]
    fn actions_on_uncontrolled_peers_are_ignored() {
        use collabsim_netsim::peer::PeerId;

        /// Tries to puppet and whitewash peer 0, which it does not control.
        struct Overreacher;
        impl AdversaryStrategy for Overreacher {
            fn name(&self) -> &'static str {
                "overreacher"
            }
            fn on_step(
                &mut self,
                _peers: &[PeerId],
                _view: WorldView<'_>,
                _rng: &mut StdRng,
                actions: &mut Vec<AdversaryAction>,
            ) {
                actions.push(AdversaryAction::Act {
                    peer: PeerId(0),
                    action: CollabAction::idle(),
                });
                actions.push(AdversaryAction::Whitewash { peer: PeerId(0) });
                actions.push(AdversaryAction::Depart { peer: PeerId(0) });
            }
        }
        let mut registry = AdversaryRegistry::standard();
        registry.register("overreacher", |_, _| Ok(Box::new(Overreacher)));

        let mut config = quick_config();
        config.adversaries = vec![AdversarySpec::new("overreacher", 2)];
        let honest_baseline = {
            let mut plain = quick_config();
            plain.adversaries = vec![AdversarySpec::new("overreacher", 2)];
            plain
        };
        let spec = ScenarioSpec::from_config(config).unwrap();
        let mut sim = crate::engine::Simulation::from_spec_with_registries(
            &spec,
            &crate::pipeline::PhaseRegistry::standard(),
            &registry,
        )
        .unwrap();
        sim.run();
        let stats = *sim.world().adversaries.units()[0].stats();
        assert_eq!(stats.forced_steps, 0, "honest peer 0 was never puppeted");
        assert_eq!(stats.resets, 0, "honest peer 0 was never whitewashed");
        assert_eq!(stats.departures, 0, "honest peer 0 never departed");
        assert!(sim.world().peers.peer(PeerId(0)).online);
        // And the run is identical to the same spec under a strategy that
        // emits nothing: the overreach had zero effect on the world.
        let mut inert_registry = AdversaryRegistry::standard();
        inert_registry.register("overreacher", |_, _| {
            struct Inert;
            impl AdversaryStrategy for Inert {
                fn name(&self) -> &'static str {
                    "inert"
                }
                fn on_step(
                    &mut self,
                    _peers: &[PeerId],
                    _view: WorldView<'_>,
                    _rng: &mut StdRng,
                    _actions: &mut Vec<AdversaryAction>,
                ) {
                }
            }
            Ok(Box::new(Inert))
        });
        let inert_spec = ScenarioSpec::from_config(honest_baseline).unwrap();
        let inert_report = crate::engine::Simulation::from_spec_with_registries(
            &inert_spec,
            &crate::pipeline::PhaseRegistry::standard(),
            &inert_registry,
        )
        .unwrap()
        .run();
        let report = crate::engine::Simulation::from_spec_with_registries(
            &spec,
            &crate::pipeline::PhaseRegistry::standard(),
            &registry,
        )
        .unwrap()
        .run();
        assert_eq!(report, inert_report);
    }

    #[test]
    fn offline_adversary_peers_cast_no_override_votes() {
        use crate::pipeline::{PhaseRegistry, StepContext, StepPhase};
        use collabsim_netsim::peer::PeerId;

        // A phase that takes the *second* ring peer offline on step 1 and
        // keeps it there, so the only way the unit's override-vote counter
        // can move is the remaining online member voting on the offline
        // member's edits — which never exist. Any override vote therefore
        // proves an offline peer voted.
        struct DepartLastPhase;
        impl StepPhase for DepartLastPhase {
            fn name(&self) -> &'static str {
                "depart-last"
            }
            fn execute(&self, world: &mut SimWorld, ctx: &mut StepContext) {
                let last = PeerId(world.population() as u32 - 1);
                if world.peers.peer(last).online {
                    world.depart_peer(last, ctx.now);
                }
            }
        }
        let mut registry = PhaseRegistry::standard();
        registry.register("depart-last", |_| Box::new(DepartLastPhase));

        let mut config = quick_config();
        config.population = 12;
        config.edit_probability = 0.5;
        config.adversaries = vec![AdversarySpec::new("collusion-ring", 2)];
        let spec = ScenarioSpec::builder()
            .configure(|c| *c = config)
            .phase_order([
                "depart-last",
                "adversary",
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning",
            ])
            .build()
            .unwrap();
        let mut sim = crate::engine::Simulation::from_spec_with_registry(&spec, &registry).unwrap();
        sim.run();
        let unit = &sim.world().adversaries.units()[0];
        assert!(
            unit.stats().forced_steps > 0,
            "the online ring member keeps acting"
        );
        assert_eq!(
            unit.stats().override_votes,
            0,
            "a departed ring member must not vote through the override"
        );
    }

    #[test]
    fn adversary_runs_are_seed_deterministic_and_observer_passive() {
        let mut config = quick_config();
        config.adversaries = vec![
            AdversarySpec::new("adaptive-whitewash", 2),
            AdversarySpec::new("collusion-ring", 3),
        ];
        let spec = ScenarioSpec::from_config(config).unwrap();
        let a = Simulation::from_spec(&spec).unwrap().run();
        let mut observed = Simulation::from_spec(&spec).unwrap();
        observed.add_observer(AttackMetricsObserver::new());
        let b = observed.run();
        assert_eq!(a, b, "observer must be passive; seed must pin the run");
    }
}
