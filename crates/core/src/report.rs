//! Simulation output: the quantities the paper's figures report.
//!
//! The evaluation metrics of Section V are: the percentage of shared files
//! and shared bandwidth per user and per *rational* user (Figures 3–5), the
//! ratio of constructive to destructive edits done by rational agents
//! (Figures 6–7), and the percentage of accepted constructive edits.
//! [`SimulationReport`] carries exactly those aggregates, broken down by
//! behaviour type, plus a few diagnostics (mean reputation, download volume,
//! article quality) used by the ablations.
//!
//! The report is deliberately **closed**: its `Debug` form is pinned
//! bit-for-bit by the golden determinism test, so it never grows a field
//! per new statistic. Anything beyond these paper aggregates — per-step
//! time series, churn dynamics, phase timings — streams through a
//! [`StepObserver`](crate::observer::StepObserver) (or is read off
//! [`SimWorld`](crate::world::SimWorld) after the run, e.g.
//! [`ChurnStats`](crate::world::ChurnStats)) instead.

use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::article::EditOutcomeCounts;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-behaviour-type aggregates over the measured evaluation phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BehaviorBreakdown {
    /// Number of peers of this type.
    pub peers: usize,
    /// Mean fraction of bandwidth shared per peer-step.
    pub shared_bandwidth: f64,
    /// Mean fraction of articles shared per peer-step.
    pub shared_articles: f64,
    /// Mean bandwidth downloaded per peer-step.
    pub downloaded: f64,
    /// Mean sharing reputation at the end of the run.
    pub final_sharing_reputation: f64,
    /// Mean editing reputation at the end of the run.
    pub final_editing_reputation: f64,
    /// Constructive edit attempts by peers of this type.
    pub constructive_edits: u64,
    /// Destructive edit attempts by peers of this type.
    pub destructive_edits: u64,
    /// Votes cast by peers of this type.
    pub votes: u64,
    /// Mean per-step utility (reward) of peers of this type.
    pub mean_utility: f64,
}

impl BehaviorBreakdown {
    /// Fraction of this type's edit attempts that were constructive
    /// (0 if the type attempted no edits).
    pub fn constructive_edit_fraction(&self) -> f64 {
        let total = self.constructive_edits + self.destructive_edits;
        if total == 0 {
            0.0
        } else {
            self.constructive_edits as f64 / total as f64
        }
    }

    /// Total edit attempts by this type.
    pub fn total_edits(&self) -> u64 {
        self.constructive_edits + self.destructive_edits
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Mean fraction of bandwidth shared per peer-step, over all peers —
    /// Figure 3/4's "percentage of shared bandwidth".
    pub shared_bandwidth: f64,
    /// Mean fraction of articles shared per peer-step, over all peers —
    /// Figure 3/4's "percentage of shared articles".
    pub shared_articles: f64,
    /// Breakdown per behaviour type (Figure 5 reads the rational entry).
    pub by_behavior: BTreeMap<String, BehaviorBreakdown>,
    /// Outcome counts of all edits decided during the evaluation phase.
    pub edit_outcomes: EditOutcomeCounts,
    /// Mean article quality at the end of the run.
    pub mean_article_quality: f64,
    /// Number of completed downloads during the evaluation phase.
    pub completed_downloads: usize,
    /// Number of evaluation steps measured.
    pub evaluation_steps: u64,
    /// The seed the run used (for reproduction).
    pub seed: u64,
}

impl SimulationReport {
    /// Breakdown for a behaviour type (zero-default if the type was absent).
    pub fn breakdown(&self, behavior: BehaviorType) -> BehaviorBreakdown {
        self.by_behavior
            .get(behavior.label())
            .copied()
            .unwrap_or_default()
    }

    /// The rational peers' mean shared-bandwidth fraction — the Figure 5
    /// series.
    pub fn rational_shared_bandwidth(&self) -> f64 {
        self.breakdown(BehaviorType::Rational).shared_bandwidth
    }

    /// The rational peers' mean shared-articles fraction — the Figure 5
    /// series.
    pub fn rational_shared_articles(&self) -> f64 {
        self.breakdown(BehaviorType::Rational).shared_articles
    }

    /// Fraction of rational peers' edits that were constructive — the
    /// Figure 6/7 series.
    pub fn rational_constructive_fraction(&self) -> f64 {
        self.breakdown(BehaviorType::Rational)
            .constructive_edit_fraction()
    }

    /// Percentage of decided constructive edits that were accepted, over the
    /// whole network.
    pub fn constructive_acceptance_rate(&self) -> f64 {
        self.edit_outcomes.constructive_acceptance_rate()
    }

    /// Percentage of decided destructive edits that slipped through.
    pub fn destructive_acceptance_rate(&self) -> f64 {
        self.edit_outcomes.destructive_acceptance_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimulationReport {
        let mut by_behavior = BTreeMap::new();
        by_behavior.insert(
            "rational".to_string(),
            BehaviorBreakdown {
                peers: 10,
                shared_bandwidth: 0.6,
                shared_articles: 0.25,
                constructive_edits: 30,
                destructive_edits: 10,
                ..Default::default()
            },
        );
        by_behavior.insert(
            "altruistic".to_string(),
            BehaviorBreakdown {
                peers: 5,
                shared_bandwidth: 1.0,
                shared_articles: 1.0,
                constructive_edits: 50,
                ..Default::default()
            },
        );
        SimulationReport {
            shared_bandwidth: 0.7,
            shared_articles: 0.5,
            by_behavior,
            edit_outcomes: EditOutcomeCounts {
                accepted_constructive: 60,
                declined_constructive: 20,
                accepted_destructive: 5,
                declined_destructive: 5,
                pending: 0,
            },
            mean_article_quality: 0.9,
            completed_downloads: 100,
            evaluation_steps: 500,
            seed: 1,
        }
    }

    #[test]
    fn breakdown_lookup_by_type() {
        let r = report();
        assert_eq!(r.breakdown(BehaviorType::Rational).peers, 10);
        assert_eq!(r.breakdown(BehaviorType::Altruistic).peers, 5);
        assert_eq!(r.breakdown(BehaviorType::Irrational).peers, 0);
    }

    #[test]
    fn rational_series_accessors() {
        let r = report();
        assert!((r.rational_shared_bandwidth() - 0.6).abs() < 1e-12);
        assert!((r.rational_shared_articles() - 0.25).abs() < 1e-12);
        assert!((r.rational_constructive_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn acceptance_rates() {
        let r = report();
        assert!((r.constructive_acceptance_rate() - 0.75).abs() < 1e-12);
        assert!((r.destructive_acceptance_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_behavior_has_zero_breakdown() {
        let r = report();
        let missing = r.breakdown(BehaviorType::Irrational);
        assert_eq!(missing.total_edits(), 0);
        assert_eq!(missing.constructive_edit_fraction(), 0.0);
    }

    #[test]
    fn constructive_fraction_handles_zero_edits() {
        let b = BehaviorBreakdown::default();
        assert_eq!(b.constructive_edit_fraction(), 0.0);
        let b = BehaviorBreakdown {
            constructive_edits: 3,
            destructive_edits: 1,
            ..Default::default()
        };
        assert!((b.constructive_edit_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(b.total_edits(), 4);
    }
}
