//! The simulation's agents.
//!
//! "In the simulation, every peer is represented by a self-learning agent"
//! (Section IV) — but only the *rational* peers actually learn; altruistic
//! peers always share the most they can and behave constructively, while
//! irrational peers free-ride and vandalise (Section IV-B). [`CollabAgent`]
//! wraps the three cases behind a single `choose`/`learn` interface so the
//! engine does not branch on behaviour types.

use crate::action::CollabAction;
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_rl::boltzmann::BoltzmannPolicy;
use collabsim_rl::qlearning::{QLearningAgent, QLearningParams};
use collabsim_rl::space::{ActionSpace, StateSpace};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The observable state an agent conditions its policy on: its reputation
/// bucket (the paper uses 10 buckets over `[R_min, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentState {
    /// The reputation bucket index in `0..reputation_states`.
    pub bucket: usize,
}

impl AgentState {
    /// Buckets a sharing reputation into a state, following the paper's
    /// partition of `[R_min, 1]` into equal-width intervals.
    pub fn from_reputation(reputation: f64, min_reputation: f64, states: StateSpace) -> Self {
        Self {
            bucket: states.bucket(reputation, min_reputation, 1.0),
        }
    }
}

/// A peer-level agent: behaviour type plus (for rational peers) a learner.
#[derive(Debug, Clone)]
pub struct CollabAgent {
    behavior: BehaviorType,
    learner: Option<QLearningAgent>,
    /// Last chosen action (needed for the delayed Q-update once the reward
    /// for the step is known).
    last_action: Option<CollabAction>,
    /// State in which the last action was chosen.
    last_state: Option<AgentState>,
}

impl CollabAgent {
    /// Creates an agent of the given behaviour type. Rational agents get a
    /// fresh Q-learner over `states × 27` actions; the other types carry no
    /// learner.
    pub fn new(behavior: BehaviorType, states: StateSpace, params: QLearningParams) -> Self {
        let learner = match behavior {
            BehaviorType::Rational => Some(QLearningAgent::new(
                states,
                CollabAction::action_space(),
                params,
            )),
            BehaviorType::Altruistic | BehaviorType::Irrational => None,
        };
        Self {
            behavior,
            learner,
            last_action: None,
            last_state: None,
        }
    }

    /// The agent's behaviour type.
    pub fn behavior(&self) -> BehaviorType {
        self.behavior
    }

    /// Whether the agent learns (i.e. is rational).
    pub fn is_learning(&self) -> bool {
        self.learner.is_some()
    }

    /// Read access to the rational agent's Q-table (None for fixed-behaviour
    /// agents).
    pub fn learner(&self) -> Option<&QLearningAgent> {
        self.learner.as_ref()
    }

    /// The action space shared by all agents.
    pub fn action_space() -> ActionSpace {
        CollabAction::action_space()
    }

    /// Chooses the action for the current step.
    ///
    /// * Altruistic agents always return [`CollabAction::altruistic`].
    /// * Irrational agents always return [`CollabAction::irrational`].
    /// * Rational agents sample from the Boltzmann distribution over their
    ///   Q-values at the given `temperature`.
    pub fn choose(
        &mut self,
        state: AgentState,
        temperature: f64,
        rng: &mut dyn RngCore,
    ) -> CollabAction {
        let action = match self.behavior {
            BehaviorType::Altruistic => CollabAction::altruistic(),
            BehaviorType::Irrational => CollabAction::irrational(),
            BehaviorType::Rational => {
                let learner = self
                    .learner
                    .as_ref()
                    .expect("rational agents always carry a learner");
                let policy = BoltzmannPolicy::new(temperature);
                let index = learner.select_action(state.bucket, &policy, rng);
                CollabAction::from_index(index)
            }
        };
        self.last_action = Some(action);
        self.last_state = Some(state);
        action
    }

    /// Applies the Q-learning update for the reward observed after the last
    /// chosen action, transitioning to `next_state`. Fixed-behaviour agents
    /// ignore the call.
    ///
    /// # Panics
    ///
    /// Panics if called on a rational agent before any action was chosen.
    pub fn learn(&mut self, reward: f64, next_state: AgentState) {
        let Some(learner) = self.learner.as_mut() else {
            return;
        };
        let state = self
            .last_state
            .expect("learn() requires a prior choose() call");
        let action = self
            .last_action
            .expect("learn() requires a prior choose() call");
        learner.update(state.bucket, action.to_index(), reward, next_state.bucket);
    }

    /// The action the agent chose most recently, if any.
    pub fn last_action(&self) -> Option<CollabAction> {
        self.last_action
    }

    /// The rational agent's current greedy action for a state (None for
    /// fixed-behaviour agents) — used by the evaluation to report what a
    /// converged agent would do deterministically.
    pub fn greedy_action(&self, state: AgentState) -> Option<CollabAction> {
        self.learner
            .as_ref()
            .map(|l| CollabAction::from_index(l.greedy_action(state.bucket)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{EditBehavior, ShareLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn states() -> StateSpace {
        StateSpace::new(10)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn state_bucketing_matches_paper_partition() {
        let s = AgentState::from_reputation(0.05, 0.05, states());
        assert_eq!(s.bucket, 0);
        let s = AgentState::from_reputation(1.0, 0.05, states());
        assert_eq!(s.bucket, 9);
        let s = AgentState::from_reputation(0.5, 0.05, states());
        assert!(s.bucket >= 4 && s.bucket <= 5);
    }

    #[test]
    fn altruistic_agent_always_shares_everything() {
        let mut a = CollabAgent::new(
            BehaviorType::Altruistic,
            states(),
            QLearningParams::default(),
        );
        assert!(!a.is_learning());
        let mut r = rng();
        for _ in 0..10 {
            let action = a.choose(AgentState { bucket: 0 }, 1.0, &mut r);
            assert_eq!(action, CollabAction::altruistic());
        }
        assert_eq!(a.last_action(), Some(CollabAction::altruistic()));
        assert!(a.greedy_action(AgentState { bucket: 0 }).is_none());
    }

    #[test]
    fn irrational_agent_always_freerides_and_vandalises() {
        let mut a = CollabAgent::new(
            BehaviorType::Irrational,
            states(),
            QLearningParams::default(),
        );
        let mut r = rng();
        let action = a.choose(AgentState { bucket: 3 }, 1.0, &mut r);
        assert_eq!(action.bandwidth, ShareLevel::None);
        assert_eq!(action.articles, ShareLevel::None);
        assert_eq!(action.edit, EditBehavior::Destructive);
    }

    #[test]
    fn learn_is_a_noop_for_fixed_agents() {
        let mut a = CollabAgent::new(
            BehaviorType::Altruistic,
            states(),
            QLearningParams::default(),
        );
        // Does not panic even without a prior choose().
        a.learn(1.0, AgentState { bucket: 0 });
    }

    #[test]
    fn rational_agent_explores_all_actions_at_high_temperature() {
        let mut a = CollabAgent::new(BehaviorType::Rational, states(), QLearningParams::default());
        assert!(a.is_learning());
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let action = a.choose(AgentState { bucket: 0 }, f64::MAX, &mut r);
            seen.insert(action.to_index());
        }
        assert_eq!(seen.len(), 27, "uniform exploration should hit all actions");
    }

    #[test]
    fn rational_agent_learns_to_prefer_rewarded_action() {
        let mut a = CollabAgent::new(BehaviorType::Rational, states(), QLearningParams::default());
        let mut r = rng();
        let state = AgentState { bucket: 2 };
        let target = CollabAction::altruistic();
        // Training: uniform exploration, reward only the target action.
        for _ in 0..3_000 {
            let action = a.choose(state, f64::MAX, &mut r);
            let reward = if action == target { 1.0 } else { 0.0 };
            a.learn(reward, state);
        }
        assert_eq!(a.greedy_action(state), Some(target));
        // Evaluation at T = 1 picks the learned action clearly more often
        // than the 1/27 ≈ 3.7 % a uniform policy would (the bootstrapped
        // Q-values of the other actions stay within ~1 reward unit of the
        // target, so the Boltzmann preference is moderate, not absolute).
        let picked = (0..500)
            .filter(|_| a.choose(state, 1.0, &mut r) == target)
            .count();
        assert!(picked > 40, "picked the learned action only {picked}/500");
    }

    #[test]
    #[should_panic(expected = "prior choose")]
    fn learn_before_choose_panics_for_rational_agents() {
        let mut a = CollabAgent::new(BehaviorType::Rational, states(), QLearningParams::default());
        a.learn(1.0, AgentState { bucket: 0 });
    }
}
