//! Incentive schemes and the service policies they induce.
//!
//! The paper compares its reputation-based scheme against running the same
//! network *without* incentives (Figure 3) and argues in Section II why the
//! direct-relation tit-for-tat of BitTorrent cannot replace it. All three
//! appear here as variants of [`IncentiveScheme`]; the engine queries the
//! scheme for the concrete policies (bandwidth allocation, voting weights,
//! editing admission) each time it needs one, so a single engine code path
//! serves the incentive run, the baseline and the TFT comparison.

use collabsim_netsim::bandwidth::AllocationPolicy;
use serde::{Deserialize, Serialize};

/// Which incentive scheme governs the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncentiveScheme {
    /// No incentives: equal bandwidth split, unweighted simple-majority
    /// voting, no editing threshold, no punishments.
    None,
    /// The paper's reputation-based scheme: bandwidth proportional to `R_S`,
    /// voting weighted by `R_E`, editing gated on `R_S ≥ θ`, adaptive
    /// majority, and punishments for malicious voters/editors.
    ReputationBased,
    /// Direct-relation tit-for-tat (BitTorrent-style): bandwidth
    /// proportional to what the downloader previously uploaded to this
    /// source; editing/voting behave like the no-incentive baseline because
    /// TFT has no notion of non-direct contributions — precisely the
    /// shortcoming the paper's scheme addresses.
    TitForTat,
}

impl IncentiveScheme {
    /// All schemes in a stable order (used by ablation sweeps).
    pub const ALL: [IncentiveScheme; 3] = [
        IncentiveScheme::None,
        IncentiveScheme::ReputationBased,
        IncentiveScheme::TitForTat,
    ];

    /// Short label used in CSV output and bench identifiers.
    pub fn label(self) -> &'static str {
        match self {
            IncentiveScheme::None => "none",
            IncentiveScheme::ReputationBased => "reputation",
            IncentiveScheme::TitForTat => "tit-for-tat",
        }
    }

    /// Parses a scheme from its [`IncentiveScheme::label`] (the inverse
    /// mapping, used by the `ScenarioSpec` text format).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }

    /// The bandwidth-allocation policy this scheme induces.
    pub fn allocation_policy(self) -> AllocationPolicy {
        match self {
            IncentiveScheme::None => AllocationPolicy::EqualSplit,
            IncentiveScheme::ReputationBased => AllocationPolicy::WeightedByReputation,
            IncentiveScheme::TitForTat => AllocationPolicy::TitForTat,
        }
    }

    /// Whether votes are weighted by editing reputation.
    pub fn weighted_voting(self) -> bool {
        matches!(self, IncentiveScheme::ReputationBased)
    }

    /// Whether editing requires the sharing-reputation threshold `θ`.
    pub fn gated_editing(self) -> bool {
        matches!(self, IncentiveScheme::ReputationBased)
    }

    /// Whether the adaptive (reputation-dependent) majority applies; the
    /// baseline uses a fixed simple majority.
    pub fn adaptive_majority(self) -> bool {
        matches!(self, IncentiveScheme::ReputationBased)
    }

    /// Whether malicious voters/editors are punished.
    pub fn punishes(self) -> bool {
        matches!(self, IncentiveScheme::ReputationBased)
    }

    /// Whether voting is restricted to previously successful editors of the
    /// article. This restriction is part of the collaboration-network design
    /// (it keeps voters knowledgeable) and applies to every scheme; only the
    /// *weighting* of those votes is incentive-specific.
    pub fn restricts_voters_to_editors(self) -> bool {
        true
    }
}

/// Toggles for the `abl3_service_differentiation` ablation: the full
/// reputation-based scheme with individual mechanisms switched off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeAblation {
    /// Keep reputation-proportional bandwidth allocation.
    pub differentiate_bandwidth: bool,
    /// Keep reputation-weighted voting.
    pub weighted_voting: bool,
    /// Keep the editing threshold.
    pub gated_editing: bool,
    /// Keep punishments.
    pub punishments: bool,
}

impl SchemeAblation {
    /// The full scheme (nothing ablated).
    pub fn full() -> Self {
        Self {
            differentiate_bandwidth: true,
            weighted_voting: true,
            gated_editing: true,
            punishments: true,
        }
    }

    /// Everything off — equivalent to [`IncentiveScheme::None`].
    pub fn none() -> Self {
        Self {
            differentiate_bandwidth: false,
            weighted_voting: false,
            gated_editing: false,
            punishments: false,
        }
    }

    /// Label of the single mechanism that is disabled relative to the full
    /// scheme, or "full"/"none" for the extremes. Used in ablation tables.
    pub fn label(&self) -> &'static str {
        match (
            self.differentiate_bandwidth,
            self.weighted_voting,
            self.gated_editing,
            self.punishments,
        ) {
            (true, true, true, true) => "full",
            (false, false, false, false) => "none",
            (false, true, true, true) => "no-bandwidth-differentiation",
            (true, false, true, true) => "no-weighted-voting",
            (true, true, false, true) => "no-edit-threshold",
            (true, true, true, false) => "no-punishment",
            _ => "custom",
        }
    }

    /// The standard ablation set: full scheme plus each mechanism removed
    /// one at a time, plus the no-incentive extreme.
    pub fn standard_set() -> Vec<SchemeAblation> {
        vec![
            Self::full(),
            Self {
                differentiate_bandwidth: false,
                ..Self::full()
            },
            Self {
                weighted_voting: false,
                ..Self::full()
            },
            Self {
                gated_editing: false,
                ..Self::full()
            },
            Self {
                punishments: false,
                ..Self::full()
            },
            Self::none(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            IncentiveScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn reputation_scheme_enables_every_mechanism() {
        let s = IncentiveScheme::ReputationBased;
        assert_eq!(
            s.allocation_policy(),
            AllocationPolicy::WeightedByReputation
        );
        assert!(s.weighted_voting());
        assert!(s.gated_editing());
        assert!(s.adaptive_majority());
        assert!(s.punishes());
    }

    #[test]
    fn baseline_disables_differentiation() {
        let s = IncentiveScheme::None;
        assert_eq!(s.allocation_policy(), AllocationPolicy::EqualSplit);
        assert!(!s.weighted_voting());
        assert!(!s.gated_editing());
        assert!(!s.adaptive_majority());
        assert!(!s.punishes());
    }

    #[test]
    fn tit_for_tat_differentiates_bandwidth_only() {
        let s = IncentiveScheme::TitForTat;
        assert_eq!(s.allocation_policy(), AllocationPolicy::TitForTat);
        assert!(!s.weighted_voting());
        assert!(!s.gated_editing());
    }

    #[test]
    fn voter_restriction_applies_to_all_schemes() {
        for s in IncentiveScheme::ALL {
            assert!(s.restricts_voters_to_editors());
        }
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(SchemeAblation::full().label(), "full");
        assert_eq!(SchemeAblation::none().label(), "none");
        let no_vote = SchemeAblation {
            weighted_voting: false,
            ..SchemeAblation::full()
        };
        assert_eq!(no_vote.label(), "no-weighted-voting");
    }

    #[test]
    fn standard_ablation_set_is_distinctly_labelled() {
        let set = SchemeAblation::standard_set();
        assert_eq!(set.len(), 6);
        let labels: std::collections::HashSet<_> = set.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
