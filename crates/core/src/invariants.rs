//! Invariant-checking observers for the scenario fuzzer.
//!
//! Each observer here watches one structural invariant of the simulation
//! through the passive [`StepObserver`] interface and *records* violations
//! instead of panicking, so the spec fuzzer (`tests/spec_fuzz.rs`) can run
//! a generated scenario to completion, collect every violation and shrink
//! the offending spec to a minimal reproducer. The four invariants:
//!
//! * [`ReputationBoundsObserver`] — every peer's sharing and editing
//!   reputation stays inside `[R_min, 1]` at every step (the range of the
//!   paper's logistic reputation function),
//! * [`ConservationObserver`] — bandwidth conservation of the fault layer:
//!   `grants_offered == grants_applied + grants_lost + grants_delayed`
//!   (see [`NetStats`]),
//! * [`ArenaBoundObserver`] — the transfer arena never holds more slots
//!   than there are peers (each downloader has at most one active
//!   transfer),
//! * [`ActiveSetObserver`] — the incrementally maintained
//!   [`ActiveSets`](crate::active::ActiveSets) bitsets equal a
//!   from-scratch recompute.
//!
//! Violations are formatted eagerly into strings (with step numbers and
//! offending values) so an observer can be interrogated after the run with
//! no lifetime coupling to the world.

use crate::observer::{StepObserver, WorldView};
use crate::pipeline::StepContext;
use crate::report::SimulationReport;
use crate::world::NetStats;

/// Tolerance for floating-point reputation bounds (the logistic function
/// lands exactly on the bounds only in the limit; accumulation error can
/// overshoot by a few ulps).
const BOUNDS_EPS: f64 = 1e-9;

/// Relative tolerance for the bandwidth-conservation residual.
const CONSERVATION_REL_EPS: f64 = 1e-6;

/// How many violations each observer keeps before it stops recording (a
/// broken invariant often fires every step; the fuzzer only needs proof
/// plus a little context, not millions of identical lines).
const MAX_RECORDED: usize = 16;

fn record(violations: &mut Vec<String>, message: String) {
    if violations.len() < MAX_RECORDED {
        violations.push(message);
    }
}

/// Checks that every peer's sharing/editing reputation stays inside
/// `[R_min, 1]` after every step.
#[derive(Debug, Default)]
pub struct ReputationBoundsObserver {
    violations: Vec<String>,
}

impl ReputationBoundsObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded violations, empty when the invariant held.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl StepObserver for ReputationBoundsObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        let min = world.world().config.min_reputation;
        let (lo, hi) = (min - BOUNDS_EPS, 1.0 + BOUNDS_EPS);
        for peer in 0..world.population() {
            for (kind, value) in [
                ("sharing", world.sharing_reputation(peer)),
                ("editing", world.editing_reputation(peer)),
            ] {
                if !(lo..=hi).contains(&value) {
                    record(
                        &mut self.violations,
                        format!(
                            "step {}: peer {peer} {kind} reputation {value} outside [{min}, 1]",
                            world.now()
                        ),
                    );
                }
            }
        }
    }
}

/// Checks bandwidth conservation of the fault layer at the end of a run:
/// every offered grant must be accounted for as applied, lost or delayed.
#[derive(Debug, Default)]
pub struct ConservationObserver {
    violations: Vec<String>,
    stats: NetStats,
}

impl ConservationObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded violations, empty when the invariant held.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The fault-layer accounting observed at the end of the run.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

impl StepObserver for ConservationObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_run_end(&mut self, world: WorldView<'_>, _report: &SimulationReport) {
        let stats = world.world().net_stats;
        self.stats = stats;
        let residual = stats.conservation_residual().abs();
        let scale = stats.grants_offered.abs().max(1.0);
        if residual > CONSERVATION_REL_EPS * scale {
            record(
                &mut self.violations,
                format!(
                    "bandwidth conservation violated: offered {} != applied {} + lost {} \
                     + delayed {} (residual {residual})",
                    stats.grants_offered,
                    stats.grants_applied,
                    stats.grants_lost,
                    stats.grants_delayed,
                ),
            );
        }
    }
}

/// Checks that the transfer arena never outgrows the population (each
/// downloader holds at most one active transfer slot).
#[derive(Debug, Default)]
pub struct ArenaBoundObserver {
    violations: Vec<String>,
}

impl ArenaBoundObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded violations, empty when the invariant held.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl StepObserver for ArenaBoundObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        let slots = world.world().transfers.slot_count();
        let population = world.population();
        if slots > population {
            record(
                &mut self.violations,
                format!(
                    "step {}: transfer arena holds {slots} slots for {population} peers",
                    world.now()
                ),
            );
        }
    }
}

/// Checks that the incrementally maintained
/// [`ActiveSets`](crate::active::ActiveSets) bitsets always equal a
/// from-scratch recompute from the peer registry.
#[derive(Debug, Default)]
pub struct ActiveSetObserver {
    violations: Vec<String>,
}

impl ActiveSetObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded violations, empty when the invariant held.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl StepObserver for ActiveSetObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        let w = world.world();
        if !w.active.matches(&w.peers, &w.behaviors) {
            record(
                &mut self.violations,
                format!(
                    "step {}: active sets diverged from a from-scratch recompute",
                    world.now()
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use collabsim_netsim::fault::LinkModel;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 12,
            initial_articles: 6,
            phases: PhaseConfig {
                training_steps: 40,
                evaluation_steps: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn run_with_observers(config: SimulationConfig) -> Vec<String> {
        let mut sim = Simulation::new(config);
        sim.add_observer(ReputationBoundsObserver::new());
        sim.add_observer(ConservationObserver::new());
        sim.add_observer(ArenaBoundObserver::new());
        sim.add_observer(ActiveSetObserver::new());
        sim.run();
        let mut all = Vec::new();
        all.extend_from_slice(
            sim.observer::<ReputationBoundsObserver>(0)
                .expect("attached")
                .violations(),
        );
        all.extend_from_slice(
            sim.observer::<ConservationObserver>(1)
                .expect("attached")
                .violations(),
        );
        all.extend_from_slice(
            sim.observer::<ArenaBoundObserver>(2)
                .expect("attached")
                .violations(),
        );
        all.extend_from_slice(
            sim.observer::<ActiveSetObserver>(3)
                .expect("attached")
                .violations(),
        );
        all
    }

    #[test]
    fn ideal_run_holds_all_invariants() {
        let violations = run_with_observers(quick_config());
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn faulty_run_holds_all_invariants() {
        let config = SimulationConfig {
            network: LinkModel::IidLoss { loss: 0.2 },
            ..quick_config()
        };
        let violations = run_with_observers(config);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn conservation_observer_reports_fault_accounting() {
        let config = SimulationConfig {
            network: LinkModel::IidLoss { loss: 0.3 },
            ..quick_config()
        };
        let mut sim = Simulation::new(config);
        sim.add_observer(ConservationObserver::new());
        sim.run();
        let observer: &ConservationObserver = sim.observer(0).expect("attached");
        let stats = observer.stats();
        assert!(stats.grants_offered > 0.0, "grants must flow");
        assert!(
            stats.grants_lost > 0.0,
            "a 30% lossy link must lose some grants: {stats:?}"
        );
        assert!(observer.violations().is_empty());
    }

    #[test]
    fn violations_are_recorded_not_panicked() {
        // A deliberately broken bound (reputation can never exceed 0.0)
        // must surface as recorded strings, capped at MAX_RECORDED.
        #[derive(Default)]
        struct Broken {
            violations: Vec<String>,
        }
        impl StepObserver for Broken {
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
                for peer in 0..world.population() {
                    if world.sharing_reputation(peer) > 0.0 {
                        record(
                            &mut self.violations,
                            format!("peer {peer} reputation above zero"),
                        );
                    }
                }
            }
        }
        let mut sim = Simulation::new(quick_config());
        sim.add_observer(Broken::default());
        sim.run();
        let observer: &Broken = sim.observer(0).expect("attached");
        assert!(!observer.violations.is_empty());
        assert!(observer.violations.len() <= MAX_RECORDED);
    }
}
