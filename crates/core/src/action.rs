//! The composite action space of the simulation model.
//!
//! Section IV-B of the paper: "With regard to sharing, an agent can choose
//! from three different participation levels for each resource: 0 %, 50 % or
//! 100 % of their bandwidth; and 0, 50 or 100 files. If an agent is
//! interested in editing and voting, it can do it either constructively or
//! destructively." A [`CollabAction`] is therefore the triple
//! (bandwidth level, article level, edit/vote behaviour); the third
//! dimension additionally allows *abstaining* so that not editing is a
//! choice the learner can make.
//!
//! Actions are flattened into indices `0..27` for the tabular Q-learner via
//! the mixed-radix encoding of [`collabsim_rl::space`].

use collabsim_rl::space::{flatten_action, unflatten_action_into, ActionSpace};
use serde::{Deserialize, Serialize};

/// Per-dimension cardinalities of the composite action space:
/// 3 bandwidth levels × 3 article levels × 3 edit behaviours.
pub const ACTION_DIMS: [usize; 3] = [3, 3, 3];

/// A sharing participation level (applies to bandwidth and to articles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShareLevel {
    /// Share nothing.
    None,
    /// Share half of the resource (50 % bandwidth / 50 files).
    Half,
    /// Share everything (100 % bandwidth / 100 files).
    Full,
}

impl ShareLevel {
    /// All levels in index order.
    pub const ALL: [ShareLevel; 3] = [ShareLevel::None, ShareLevel::Half, ShareLevel::Full];

    /// The level as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        match self {
            ShareLevel::None => 0.0,
            ShareLevel::Half => 0.5,
            ShareLevel::Full => 1.0,
        }
    }

    /// The level as an article count out of the paper's 100-article storage.
    pub fn article_count(self) -> u32 {
        match self {
            ShareLevel::None => 0,
            ShareLevel::Half => 50,
            ShareLevel::Full => 100,
        }
    }

    /// Index of the level within its action dimension.
    pub fn index(self) -> usize {
        match self {
            ShareLevel::None => 0,
            ShareLevel::Half => 1,
            ShareLevel::Full => 2,
        }
    }

    /// Level from a dimension index.
    ///
    /// # Panics
    ///
    /// Panics if the index is not 0, 1 or 2.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

/// The editing/voting behaviour chosen for a time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EditBehavior {
    /// Neither edit nor vote this step.
    Abstain,
    /// Edit constructively and vote for quality (for constructive edits,
    /// against destructive ones).
    Constructive,
    /// Vandalise and vote against quality.
    Destructive,
}

impl EditBehavior {
    /// All behaviours in index order.
    pub const ALL: [EditBehavior; 3] = [
        EditBehavior::Abstain,
        EditBehavior::Constructive,
        EditBehavior::Destructive,
    ];

    /// Index of the behaviour within its action dimension.
    pub fn index(self) -> usize {
        match self {
            EditBehavior::Abstain => 0,
            EditBehavior::Constructive => 1,
            EditBehavior::Destructive => 2,
        }
    }

    /// Behaviour from a dimension index.
    ///
    /// # Panics
    ///
    /// Panics if the index is not 0, 1 or 2.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Whether this behaviour participates in editing/voting at all.
    pub fn participates(self) -> bool {
        self != EditBehavior::Abstain
    }
}

/// One agent's complete action for one time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CollabAction {
    /// How much upload bandwidth to share.
    pub bandwidth: ShareLevel,
    /// How many articles to offer.
    pub articles: ShareLevel,
    /// Editing/voting behaviour.
    pub edit: EditBehavior,
}

impl CollabAction {
    /// The action space descriptor (27 actions).
    pub fn action_space() -> ActionSpace {
        ActionSpace::product(&ACTION_DIMS)
    }

    /// The altruistic peer's fixed action: share everything, act
    /// constructively.
    pub fn altruistic() -> Self {
        Self {
            bandwidth: ShareLevel::Full,
            articles: ShareLevel::Full,
            edit: EditBehavior::Constructive,
        }
    }

    /// The irrational peer's fixed action: free-ride and vandalise.
    pub fn irrational() -> Self {
        Self {
            bandwidth: ShareLevel::None,
            articles: ShareLevel::None,
            edit: EditBehavior::Destructive,
        }
    }

    /// The idle action recorded for peers that are offline this step
    /// (departed under churn): share nothing, abstain from editing and
    /// voting. Keeps the per-peer action vector index-aligned without
    /// consuming any randomness for absent peers.
    pub fn idle() -> Self {
        Self {
            bandwidth: ShareLevel::None,
            articles: ShareLevel::None,
            edit: EditBehavior::Abstain,
        }
    }

    /// Flattens the action into an index `0..27`.
    pub fn to_index(self) -> usize {
        flatten_action(
            &[
                self.bandwidth.index(),
                self.articles.index(),
                self.edit.index(),
            ],
            &ACTION_DIMS,
        )
    }

    /// Reconstructs the action from a flat index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn from_index(index: usize) -> Self {
        let mut coords = [0usize; 3];
        unflatten_action_into(index, &ACTION_DIMS, &mut coords);
        Self {
            bandwidth: ShareLevel::from_index(coords[0]),
            articles: ShareLevel::from_index(coords[1]),
            edit: EditBehavior::from_index(coords[2]),
        }
    }

    /// Iterator over every action in index order.
    pub fn all() -> impl Iterator<Item = CollabAction> {
        (0..Self::action_space().len()).map(Self::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_has_27_actions() {
        assert_eq!(CollabAction::action_space().len(), 27);
        assert_eq!(CollabAction::all().count(), 27);
    }

    #[test]
    fn index_roundtrip_covers_every_action() {
        for index in 0..27 {
            let action = CollabAction::from_index(index);
            assert_eq!(action.to_index(), index);
        }
    }

    #[test]
    fn share_level_fractions_and_counts() {
        assert_eq!(ShareLevel::None.fraction(), 0.0);
        assert_eq!(ShareLevel::Half.fraction(), 0.5);
        assert_eq!(ShareLevel::Full.fraction(), 1.0);
        assert_eq!(ShareLevel::None.article_count(), 0);
        assert_eq!(ShareLevel::Half.article_count(), 50);
        assert_eq!(ShareLevel::Full.article_count(), 100);
    }

    #[test]
    fn fixed_behaviour_actions() {
        let alt = CollabAction::altruistic();
        assert_eq!(alt.bandwidth, ShareLevel::Full);
        assert_eq!(alt.articles, ShareLevel::Full);
        assert_eq!(alt.edit, EditBehavior::Constructive);
        let irr = CollabAction::irrational();
        assert_eq!(irr.bandwidth, ShareLevel::None);
        assert_eq!(irr.edit, EditBehavior::Destructive);
    }

    #[test]
    fn edit_behaviour_participation() {
        assert!(!EditBehavior::Abstain.participates());
        assert!(EditBehavior::Constructive.participates());
        assert!(EditBehavior::Destructive.participates());
    }

    #[test]
    fn level_and_behaviour_index_roundtrip() {
        for level in ShareLevel::ALL {
            assert_eq!(ShareLevel::from_index(level.index()), level);
        }
        for behavior in EditBehavior::ALL {
            assert_eq!(EditBehavior::from_index(behavior.index()), behavior);
        }
    }

    #[test]
    fn all_actions_are_distinct() {
        let set: std::collections::HashSet<CollabAction> = CollabAction::all().collect();
        assert_eq!(set.len(), 27);
    }
}
