//! Experiment definitions: scenario grids, the parallel runner, and the
//! parameter sweeps behind every figure.
//!
//! The machinery has three layers:
//!
//! 1. [`ScenarioGrid`] — declares an experiment as the cartesian product of
//!    behaviour mixes × incentive schemes × seeds over a base
//!    [`SimulationConfig`], expanding into labelled
//!    [`ScenarioSpec`]s. Expansion order is
//!    fixed (mix-major, then scheme, then seed) so cell labels and result
//!    order are deterministic.
//! 2. [`ScenarioRunner`] — executes independent specs on a work-stealing
//!    pool of scoped OS threads (each spec owns its own RNG stream, so
//!    parallel and sequential execution produce bit-identical per-spec
//!    [`SimulationReport`]s). `Parallelism::Sequential` forces in-order
//!    single-threaded execution for debugging and for the
//!    parallel-equals-sequential regression tests;
//!    [`ScenarioRunner::run_specs_with_registry`] resolves custom phases.
//! 3. The figure helpers (`mix_sweep`, `figure3_*`, `ablation_*`) — each of
//!    the paper's Figures 3–7 and the DESIGN.md ablations reduced to a grid
//!    declaration plus a [`run_batch`] call, printed by the
//!    `collabsim-bench` binaries.

use crate::adversary::AdversaryRegistry;
use crate::config::SimulationConfig;
use crate::engine::Simulation;
use crate::incentive::IncentiveScheme;
use crate::pipeline::PhaseRegistry;
use crate::report::SimulationReport;
use crate::spec::{ScenarioSpec, SpecError};
use collabsim_gametheory::behavior::{BehaviorMix, BehaviorType};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The percentages swept in the paper's mix experiments (Section IV-B:
/// "the occurrence of each user type is varied from 10 − 100 %"; the figures
/// plot 10–90 %).
pub const MIX_SWEEP_PERCENTAGES: [u32; 9] = [10, 20, 30, 40, 50, 60, 70, 80, 90];

/// The population tiers of the `large_population` scenario family: three
/// orders of magnitude above the paper's 100 peers.
pub const LARGE_POPULATION_TIERS: [usize; 3] = [10_000, 50_000, 100_000];

/// One labelled simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelledReport {
    /// Human-readable label of the configuration (e.g. "altruistic=40%").
    pub label: String,
    /// The swept numeric parameter, if the experiment is a sweep.
    pub parameter: f64,
    /// The simulation report.
    pub report: SimulationReport,
}

/// A declarative parameter grid: behaviour mixes × incentive schemes ×
/// seeds over a base configuration, expanding into labelled
/// [`ScenarioSpec`]s.
///
/// ```
/// use collabsim::config::{PhaseConfig, SimulationConfig};
/// use collabsim::experiment::{ScenarioGrid, ScenarioRunner};
/// use collabsim::incentive::IncentiveScheme;
/// use collabsim::BehaviorMix;
///
/// let base = SimulationConfig {
///     population: 12,
///     initial_articles: 6,
///     phases: PhaseConfig { training_steps: 40, evaluation_steps: 20, ..Default::default() },
///     ..Default::default()
/// };
/// let grid = ScenarioGrid::new(base)
///     .with_mixes([("half-rational", 50.0, BehaviorMix::new(0.5, 0.25, 0.25))])
///     .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
///     .with_seeds([1, 2]);
/// assert_eq!(grid.len(), 4);
/// let reports = ScenarioRunner::default().run_grid(&grid);
/// assert_eq!(reports.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    base: SimulationConfig,
    mixes: Vec<(String, f64, BehaviorMix)>,
    schemes: Vec<IncentiveScheme>,
    seeds: Vec<u64>,
    /// Explicit population axis; `None` keeps the base population and
    /// omits the `pop=` label segment (backwards-compatible labelling).
    populations: Option<Vec<usize>>,
    /// Whether the mix axis was replaced with explicit sweep points —
    /// only then do the mixes' parameters win over a population tier as
    /// the cell's swept parameter (a sweep parameter of 0.0 is
    /// legitimate, so this cannot be inferred from the values).
    mix_axis_swept: bool,
}

impl ScenarioGrid {
    /// A grid containing exactly the base configuration as its single cell.
    pub fn new(base: SimulationConfig) -> Self {
        Self {
            mixes: vec![("base".to_string(), 0.0, base.mix)],
            schemes: vec![base.incentive],
            seeds: vec![base.seed],
            populations: None,
            mix_axis_swept: false,
            base,
        }
    }

    /// The `large_population` scenario family: the
    /// [`SimulationConfig::large_population`] preset expanded over the
    /// [`LARGE_POPULATION_TIERS`] (10⁴, 5·10⁴ and 10⁵ peers). Narrow the
    /// tiers with [`ScenarioGrid::with_populations`], widen it with the
    /// other axes.
    pub fn large_population() -> Self {
        Self::new(SimulationConfig::large_population(
            LARGE_POPULATION_TIERS[0],
        ))
        .with_populations(LARGE_POPULATION_TIERS)
    }

    /// Replaces the mix axis with labelled `(label, parameter, mix)` points.
    pub fn with_mixes<L, I>(mut self, mixes: I) -> Self
    where
        L: Into<String>,
        I: IntoIterator<Item = (L, f64, BehaviorMix)>,
    {
        self.mixes = mixes
            .into_iter()
            .map(|(l, p, m)| (l.into(), p, m))
            .collect();
        assert!(!self.mixes.is_empty(), "grid needs at least one mix");
        self.mix_axis_swept = true;
        self
    }

    /// Replaces the mix axis with the paper's 10–90 % sweep of `primary`
    /// (remainder split evenly between the other two types).
    pub fn with_mix_sweep(self, primary: BehaviorType) -> Self {
        let points = MIX_SWEEP_PERCENTAGES.map(|pct| {
            (
                format!("{}={}%", primary.label(), pct),
                f64::from(pct),
                BehaviorMix::sweep(primary, f64::from(pct) / 100.0),
            )
        });
        self.with_mixes(points)
    }

    /// Replaces the incentive-scheme axis.
    pub fn with_schemes<I: IntoIterator<Item = IncentiveScheme>>(mut self, schemes: I) -> Self {
        self.schemes = schemes.into_iter().collect();
        assert!(!self.schemes.is_empty(), "grid needs at least one scheme");
        self
    }

    /// Replaces the seed axis.
    pub fn with_seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        assert!(!self.seeds.is_empty(), "grid needs at least one seed");
        self
    }

    /// Replaces the population axis. Cells gain a leading `pop=N` label
    /// segment and their `parameter` becomes the population (unless the
    /// mix axis carries a sweep parameter of its own).
    pub fn with_populations<I: IntoIterator<Item = usize>>(mut self, populations: I) -> Self {
        let populations: Vec<usize> = populations.into_iter().collect();
        assert!(
            !populations.is_empty(),
            "grid needs at least one population"
        );
        self.populations = Some(populations);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        let populations = self.populations.as_ref().map_or(1, Vec::len);
        populations * self.mixes.len() * self.schemes.len() * self.seeds.len()
    }

    /// Whether the grid is empty (never: every axis is non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the grid into labelled [`ScenarioSpec`]s in fixed
    /// population-major, then mix-major order. Every spec carries the
    /// default phase order for its configuration (validated at expansion
    /// time, so an invalid base configuration fails here with a field-level
    /// message rather than mid-run).
    pub fn cells(&self) -> Vec<ScenarioSpec> {
        let mut cells = Vec::with_capacity(self.len());
        let populations: Vec<Option<usize>> = match &self.populations {
            Some(populations) => populations.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        for population in populations {
            for (mix_label, parameter, mix) in &self.mixes {
                for &scheme in &self.schemes {
                    for &seed in &self.seeds {
                        let mut config = self
                            .base
                            .clone()
                            .with_mix(*mix)
                            .with_incentive(scheme)
                            .with_seed(seed);
                        let (label, parameter) = match population {
                            Some(peers) => {
                                config = config.with_population(peers);
                                let label = format!(
                                    "pop={peers}/{mix_label}/{}/seed={seed}",
                                    scheme.label()
                                );
                                // A mix sweep's parameter wins; otherwise
                                // the tier is the swept parameter.
                                let parameter = if self.mix_axis_swept {
                                    *parameter
                                } else {
                                    peers as f64
                                };
                                (label, parameter)
                            }
                            None => (
                                format!("{mix_label}/{}/seed={seed}", scheme.label()),
                                *parameter,
                            ),
                        };
                        let spec = match ScenarioSpec::from_config(config) {
                            Ok(spec) => spec.with_label(label).with_parameter(parameter),
                            Err(error) => panic!("invalid grid cell `{label}`: {error}"),
                        };
                        cells.push(spec);
                    }
                }
            }
        }
        cells
    }
}

/// How a [`ScenarioRunner`] schedules its cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available core (or per the `SCENARIO_THREADS`
    /// environment variable when set), capped at the cell count.
    #[default]
    Auto,
    /// Strictly single-threaded, in input order.
    Sequential,
    /// A fixed number of workers (values < 2 mean sequential).
    Fixed(usize),
}

/// Executes independent simulation cells on a pool of scoped worker
/// threads.
///
/// Every cell owns its configuration — and therefore its seeded RNG
/// stream — so execution order cannot leak between cells: a parallel run
/// returns bit-identical per-cell reports to a sequential run, in input
/// order. The pool is a simple work-stealing queue (an atomic cursor over
/// the job list), which keeps long cells from serialising behind short
/// ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner {
    parallelism: Parallelism,
}

impl ScenarioRunner {
    /// A runner with an explicit parallelism policy.
    pub fn new(parallelism: Parallelism) -> Self {
        Self { parallelism }
    }

    /// A strictly sequential runner (for debugging and equivalence tests).
    pub fn sequential() -> Self {
        Self::new(Parallelism::Sequential)
    }

    fn workers_for(&self, jobs: usize) -> usize {
        match self.parallelism {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1).min(jobs.max(1)),
            Parallelism::Auto => crate::threads::scenario_threads()
                .unwrap_or_else(crate::threads::hardware_threads)
                .min(jobs.max(1)),
        }
    }

    /// Expands and runs a [`ScenarioGrid`], returning reports in cell
    /// order. Grid cells always resolve against the standard registry, so
    /// this cannot fail.
    pub fn run_grid(&self, grid: &ScenarioGrid) -> Vec<LabelledReport> {
        self.run_specs(grid.cells())
            .expect("grid cells use registered phases")
    }

    /// Runs labelled [`ScenarioSpec`]s against the standard
    /// [`PhaseRegistry`], returning reports in input order regardless of
    /// completion order.
    pub fn run_specs(&self, specs: Vec<ScenarioSpec>) -> Result<Vec<LabelledReport>, SpecError> {
        self.run_specs_with_registry(specs, &PhaseRegistry::standard())
    }

    /// Runs labelled [`ScenarioSpec`]s, resolving phase names against a
    /// caller-supplied registry (which may contain custom phases) and
    /// adversary strategies against the standard
    /// [`AdversaryRegistry`]. Every spec is resolved up front, so an
    /// unknown phase name fails before any simulation starts.
    pub fn run_specs_with_registry(
        &self,
        specs: Vec<ScenarioSpec>,
        registry: &PhaseRegistry,
    ) -> Result<Vec<LabelledReport>, SpecError> {
        self.run_specs_with_registries(specs, registry, &AdversaryRegistry::standard())
    }

    /// Runs labelled [`ScenarioSpec`]s, resolving phase names *and*
    /// adversary strategy names against caller-supplied registries — the
    /// fully pluggable runner entry point.
    pub fn run_specs_with_registries(
        &self,
        specs: Vec<ScenarioSpec>,
        registry: &PhaseRegistry,
        adversary_registry: &AdversaryRegistry,
    ) -> Result<Vec<LabelledReport>, SpecError> {
        // Fail fast on unresolvable specs, by name only — the pipelines
        // themselves are built inside the workers.
        for spec in &specs {
            if spec.phases().is_empty() {
                return Err(SpecError::EmptyPhaseList);
            }
            if let Some(unknown) = spec.phases().iter().find(|name| !registry.contains(name)) {
                return Err(SpecError::UnknownPhase {
                    name: unknown.clone(),
                });
            }
            adversary_registry.check_config(spec.config())?;
        }
        let run_one = |spec: &ScenarioSpec| -> LabelledReport {
            let report = Simulation::from_spec_with_registries(spec, registry, adversary_registry)
                .expect("specs were resolved above")
                .run();
            LabelledReport {
                label: spec.label().to_string(),
                parameter: spec.parameter(),
                report,
            }
        };

        let workers = self.workers_for(specs.len());
        if workers <= 1 || specs.len() <= 1 {
            return Ok(specs.iter().map(run_one).collect());
        }

        let total = specs.len();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<LabelledReport>>> =
            (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    *slots[index].lock().expect("result slot poisoned") =
                        Some(run_one(&specs[index]));
                });
            }
        });

        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("missing experiment result")
            })
            .collect())
    }
}

/// Runs a batch of labelled configurations, in parallel when more than one
/// worker is available. Results are returned in input order regardless of
/// completion order, so sweeps stay deterministic.
///
/// Thin wrapper around [`ScenarioRunner::run_specs`] with automatic
/// parallelism, kept as the entry point of the figure helpers below.
pub fn run_batch(configs: Vec<(String, f64, SimulationConfig)>) -> Vec<LabelledReport> {
    let specs = configs
        .into_iter()
        .map(
            |(label, parameter, config)| match ScenarioSpec::from_config(config) {
                Ok(spec) => spec.with_label(label).with_parameter(parameter),
                Err(error) => panic!("{error}"),
            },
        )
        .collect();
    ScenarioRunner::default()
        .run_specs(specs)
        .expect("default-phase specs always resolve")
}

/// **Figure 3** — shared articles and bandwidth of an all-rational
/// population, with and without the incentive scheme. Returns
/// `(with incentive, without incentive)`.
pub fn figure3_incentive_vs_none(base: SimulationConfig) -> (LabelledReport, LabelledReport) {
    let with = base
        .clone()
        .with_mix(BehaviorMix::all_rational())
        .with_incentive(IncentiveScheme::ReputationBased);
    let without = base
        .with_mix(BehaviorMix::all_rational())
        .with_incentive(IncentiveScheme::None);
    let mut results = run_batch(vec![
        ("with-incentive".to_string(), 1.0, with),
        ("without-incentive".to_string(), 0.0, without),
    ]);
    let second = results.pop().expect("two results");
    let first = results.pop().expect("two results");
    (first, second)
}

/// **Figure 3, replicated** — the same comparison averaged over
/// `replications` independent seeds per arm, which is what the
/// `fig3_incentive_vs_none` binary reports: the single-run gains at reduced
/// scale are noisy, so the headline ±8–11 % comparison is made on seed
/// averages. Returns `(with-incentive runs, without-incentive runs)`.
pub fn figure3_replicated(
    base: SimulationConfig,
    replications: usize,
) -> (Vec<LabelledReport>, Vec<LabelledReport>) {
    assert!(replications > 0, "need at least one replication");
    let mut configs = Vec::new();
    for rep in 0..replications {
        let seed = base.seed.wrapping_add(1_000 * rep as u64);
        configs.push((
            format!("with-incentive/seed{rep}"),
            1.0,
            base.clone()
                .with_mix(BehaviorMix::all_rational())
                .with_incentive(IncentiveScheme::ReputationBased)
                .with_seed(seed),
        ));
        configs.push((
            format!("without-incentive/seed{rep}"),
            0.0,
            base.clone()
                .with_mix(BehaviorMix::all_rational())
                .with_incentive(IncentiveScheme::None)
                .with_seed(seed),
        ));
    }
    let results = run_batch(configs);
    let (with, without): (Vec<LabelledReport>, Vec<LabelledReport>) = results
        .into_iter()
        .partition(|r| r.label.starts_with("with-incentive"));
    (with, without)
}

/// Mean shared-articles and shared-bandwidth fractions over a set of runs.
pub fn mean_sharing(reports: &[LabelledReport]) -> (f64, f64) {
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let n = reports.len() as f64;
    (
        reports
            .iter()
            .map(|r| r.report.shared_articles)
            .sum::<f64>()
            / n,
        reports
            .iter()
            .map(|r| r.report.shared_bandwidth)
            .sum::<f64>()
            / n,
    )
}

/// **Figures 4 and 5** — sweep of the fraction of `primary`-type peers from
/// 10 % to 90 %, the remainder split equally between the other two types.
/// Figure 4 reads the whole-population sharing means of each report,
/// Figure 5 the rational-only breakdown.
pub fn mix_sweep(base: SimulationConfig, primary: BehaviorType) -> Vec<LabelledReport> {
    let configs = MIX_SWEEP_PERCENTAGES
        .iter()
        .map(|&pct| {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(primary, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct)));
            (
                format!("{}={}%", primary.label(), pct),
                f64::from(pct),
                config,
            )
        })
        .collect();
    run_batch(configs)
}

/// **Figure 6** — rational-peer edit behaviour when altruistic and
/// irrational peers are equally common: the fraction of rational peers is
/// swept from 10 % to 100 % and the rest is split evenly.
pub fn figure6_balanced_edit_behaviour(base: SimulationConfig) -> Vec<LabelledReport> {
    let mut percentages: Vec<u32> = MIX_SWEEP_PERCENTAGES.to_vec();
    percentages.push(100);
    let configs = percentages
        .iter()
        .map(|&pct| {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(BehaviorType::Rational, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct) * 31));
            (format!("rational={pct}%"), f64::from(pct), config)
        })
        .collect();
    run_batch(configs)
}

/// **Figure 7** — rational-peer edit behaviour under a varying share of
/// altruistic (top panel) or irrational (bottom panel) peers.
pub fn figure7_majority_following(
    base: SimulationConfig,
    varying: BehaviorType,
) -> Vec<LabelledReport> {
    assert!(
        varying != BehaviorType::Rational,
        "figure 7 varies the altruistic or irrational share"
    );
    mix_sweep(base, varying)
}

/// **ABL1** — reputation-function ablation: the same all-rational run with
/// different `β` values of the logistic function (and thus different growth
/// speeds), the knob Section VI flags as future work.
pub fn ablation_reputation_beta(base: SimulationConfig, betas: &[f64]) -> Vec<LabelledReport> {
    let configs = betas
        .iter()
        .map(|&beta| {
            let mut config = base.clone().with_mix(BehaviorMix::all_rational());
            config.reputation_beta = beta;
            (format!("beta={beta}"), beta, config)
        })
        .collect();
    run_batch(configs)
}

/// **ABL3** — incentive-scheme ablation: no incentive vs. tit-for-tat vs.
/// the full reputation scheme on a mixed population.
pub fn ablation_schemes(base: SimulationConfig) -> Vec<LabelledReport> {
    let mix = BehaviorMix::new(0.4, 0.3, 0.3);
    let configs = IncentiveScheme::ALL
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let config = base.clone().with_mix(mix).with_incentive(scheme);
            (scheme.label().to_string(), i as f64, config)
        })
        .collect();
    run_batch(configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;

    fn tiny_base() -> SimulationConfig {
        SimulationConfig {
            population: 12,
            initial_articles: 6,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let configs = vec![
            ("a".to_string(), 1.0, tiny_base().with_seed(1)),
            ("b".to_string(), 2.0, tiny_base().with_seed(2)),
            ("c".to_string(), 3.0, tiny_base().with_seed(3)),
        ];
        let results = run_batch(configs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].label, "a");
        assert_eq!(results[1].label, "b");
        assert_eq!(results[2].label, "c");
        assert_eq!(results[2].parameter, 3.0);
    }

    #[test]
    fn run_batch_matches_sequential_execution() {
        let config = tiny_base().with_seed(9);
        let parallel = run_batch(vec![
            ("x".to_string(), 0.0, config.clone()),
            ("y".to_string(), 0.0, config.clone()),
        ]);
        let sequential = Simulation::new(config).run();
        assert_eq!(parallel[0].report, sequential);
        assert_eq!(parallel[1].report, sequential);
    }

    #[test]
    fn figure3_produces_both_arms() {
        let (with, without) = figure3_incentive_vs_none(tiny_base());
        assert_eq!(with.label, "with-incentive");
        assert_eq!(without.label, "without-incentive");
        assert_eq!(with.report.evaluation_steps, 40);
    }

    #[test]
    fn figure3_replication_partitions_by_arm() {
        let (with, without) = figure3_replicated(tiny_base(), 2);
        assert_eq!(with.len(), 2);
        assert_eq!(without.len(), 2);
        assert!(with.iter().all(|r| r.label.starts_with("with-incentive")));
        assert!(without
            .iter()
            .all(|r| r.label.starts_with("without-incentive")));
        let (articles, bandwidth) = mean_sharing(&with);
        assert!((0.0..=1.0).contains(&articles));
        assert!((0.0..=1.0).contains(&bandwidth));
        assert_eq!(mean_sharing(&[]), (0.0, 0.0));
    }

    #[test]
    fn mix_sweep_covers_nine_points() {
        let results = mix_sweep(tiny_base(), BehaviorType::Altruistic);
        assert_eq!(results.len(), 9);
        assert_eq!(results[0].parameter, 10.0);
        assert_eq!(results[8].parameter, 90.0);
        assert!(results[0].label.contains("altruistic=10%"));
    }

    #[test]
    fn figure6_includes_the_pure_rational_point() {
        let results = figure6_balanced_edit_behaviour(tiny_base());
        assert_eq!(results.len(), 10);
        assert_eq!(results.last().unwrap().parameter, 100.0);
    }

    #[test]
    #[should_panic(expected = "altruistic or irrational")]
    fn figure7_rejects_rational_sweep() {
        let _ = figure7_majority_following(tiny_base(), BehaviorType::Rational);
    }

    #[test]
    fn ablation_runs_all_schemes() {
        let results = ablation_schemes(tiny_base());
        assert_eq!(results.len(), 3);
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["none", "reputation", "tit-for-tat"]);
    }

    #[test]
    fn ablation_reputation_beta_labels() {
        let results = ablation_reputation_beta(tiny_base(), &[0.1, 0.3]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "beta=0.1");
        assert_eq!(results[1].parameter, 0.3);
    }

    #[test]
    fn grid_expands_in_mix_major_order_with_stable_labels() {
        let grid = ScenarioGrid::new(tiny_base())
            .with_mixes([
                ("a", 1.0, BehaviorMix::all_rational()),
                ("b", 2.0, BehaviorMix::new(0.5, 0.25, 0.25)),
            ])
            .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
            .with_seeds([5, 6]);
        assert_eq!(grid.len(), 8);
        assert!(!grid.is_empty());
        let cells = grid.cells();
        let labels: Vec<&str> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "a/reputation/seed=5",
                "a/reputation/seed=6",
                "a/none/seed=5",
                "a/none/seed=6",
                "b/reputation/seed=5",
                "b/reputation/seed=6",
                "b/none/seed=5",
                "b/none/seed=6",
            ]
        );
        assert_eq!(cells[0].config().seed, 5);
        assert_eq!(cells[3].config().incentive, IncentiveScheme::None);
        assert_eq!(cells[4].parameter(), 2.0);
        assert!((cells[4].config().mix.altruistic() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_grid_is_the_base_configuration() {
        let base = tiny_base().with_seed(77);
        let grid = ScenarioGrid::new(base.clone());
        let cells = grid.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].config(), &base);
        assert_eq!(cells[0].label(), "base/reputation/seed=77");
        assert_eq!(cells[0].phases().len(), 6, "default phase order");
    }

    #[test]
    fn grid_mix_sweep_covers_the_paper_percentages() {
        let grid = ScenarioGrid::new(tiny_base()).with_mix_sweep(BehaviorType::Irrational);
        assert_eq!(grid.len(), 9);
        let cells = grid.cells();
        assert!(cells[0].label().starts_with("irrational=10%"));
        assert_eq!(cells[8].parameter(), 90.0);
    }

    #[test]
    fn population_axis_expands_population_major_with_pop_labels() {
        let grid = ScenarioGrid::new(tiny_base())
            .with_populations([12, 24])
            .with_seeds([1, 2]);
        assert_eq!(grid.len(), 4);
        let cells = grid.cells();
        let labels: Vec<&str> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "pop=12/base/reputation/seed=1",
                "pop=12/base/reputation/seed=2",
                "pop=24/base/reputation/seed=1",
                "pop=24/base/reputation/seed=2",
            ]
        );
        assert_eq!(cells[0].config().population, 12);
        assert_eq!(cells[2].config().population, 24);
        assert_eq!(cells[2].parameter(), 24.0, "tier is the swept parameter");
    }

    #[test]
    fn explicit_mix_sweep_parameters_survive_a_population_axis() {
        // A swept parameter of 0.0 is legitimate and must not be clobbered
        // by the population tier.
        let grid = ScenarioGrid::new(tiny_base())
            .with_mixes([
                ("0pct", 0.0, BehaviorMix::all_rational()),
                ("50pct", 50.0, BehaviorMix::new(0.5, 0.25, 0.25)),
            ])
            .with_populations([10]);
        let cells = grid.cells();
        assert_eq!(cells[0].parameter(), 0.0, "explicit 0.0 sweep point kept");
        assert_eq!(cells[1].parameter(), 50.0);
    }

    #[test]
    fn large_population_family_covers_the_three_tiers() {
        let grid = ScenarioGrid::large_population();
        assert_eq!(grid.len(), 3);
        let cells = grid.cells();
        for (cell, &tier) in cells.iter().zip(LARGE_POPULATION_TIERS.iter()) {
            assert_eq!(cell.config().population, tier);
            assert!(cell.label().starts_with(&format!("pop={tier}/")));
            assert!(cell.config().restrict_voters_to_editors);
            cell.config().check().expect("preset tiers are valid");
        }
    }

    #[test]
    fn population_axis_runs_end_to_end() {
        let grid = ScenarioGrid::new(tiny_base()).with_populations([10, 14]);
        let reports = ScenarioRunner::sequential().run_grid(&grid);
        assert_eq!(reports.len(), 2);
        let total_peers: usize = reports[1]
            .report
            .by_behavior
            .values()
            .map(|b| b.peers)
            .sum();
        assert_eq!(total_peers, 14);
    }

    #[test]
    fn fixed_parallelism_matches_auto_and_sequential() {
        let grid = ScenarioGrid::new(tiny_base())
            .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
            .with_seeds([1, 2]);
        let auto = ScenarioRunner::default().run_grid(&grid);
        let fixed = ScenarioRunner::new(Parallelism::Fixed(3)).run_grid(&grid);
        let sequential = ScenarioRunner::sequential().run_grid(&grid);
        assert_eq!(auto, sequential);
        assert_eq!(fixed, sequential);
    }
}
