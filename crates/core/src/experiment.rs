//! Experiment definitions: the parameter sweeps behind every figure.
//!
//! Each function builds the set of [`SimulationConfig`]s a figure needs,
//! runs them (fanned out over worker threads with `crossbeam::scope`), and
//! returns the per-configuration reports in a fixed, deterministic order.
//! The `collabsim-bench` binaries print these results as the numeric series
//! corresponding to the paper's Figures 3–7; the ablations (ABL1–ABL3 of
//! DESIGN.md) reuse the same machinery.

use crate::config::SimulationConfig;
use crate::engine::Simulation;
use crate::incentive::IncentiveScheme;
use crate::report::SimulationReport;
use collabsim_gametheory::behavior::{BehaviorMix, BehaviorType};
use serde::{Deserialize, Serialize};

/// The percentages swept in the paper's mix experiments (Section IV-B:
/// "the occurrence of each user type is varied from 10 − 100 %"; the figures
/// plot 10–90 %).
pub const MIX_SWEEP_PERCENTAGES: [u32; 9] = [10, 20, 30, 40, 50, 60, 70, 80, 90];

/// One labelled simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelledReport {
    /// Human-readable label of the configuration (e.g. "altruistic=40%").
    pub label: String,
    /// The swept numeric parameter, if the experiment is a sweep.
    pub parameter: f64,
    /// The simulation report.
    pub report: SimulationReport,
}

/// Runs a batch of labelled configurations, in parallel when more than one
/// worker is available. Results are returned in input order regardless of
/// completion order, so sweeps stay deterministic.
pub fn run_batch(configs: Vec<(String, f64, SimulationConfig)>) -> Vec<LabelledReport> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(configs.len().max(1));
    if workers <= 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .map(|(label, parameter, config)| LabelledReport {
                label,
                parameter,
                report: Simulation::new(config).run(),
            })
            .collect();
    }

    let jobs: Vec<(usize, String, f64, SimulationConfig)> = configs
        .into_iter()
        .enumerate()
        .map(|(i, (label, parameter, config))| (i, label, parameter, config))
        .collect();
    let total = jobs.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<LabelledReport>>> =
        (0..total).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let (slot, label, parameter, config) = &jobs[index];
                let report = Simulation::new(config.clone()).run();
                *results[*slot].lock() = Some(LabelledReport {
                    label: label.clone(),
                    parameter: *parameter,
                    report,
                });
            });
        }
    })
    .expect("experiment worker panicked");

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("missing experiment result"))
        .collect()
}

/// **Figure 3** — shared articles and bandwidth of an all-rational
/// population, with and without the incentive scheme. Returns
/// `(with incentive, without incentive)`.
pub fn figure3_incentive_vs_none(base: SimulationConfig) -> (LabelledReport, LabelledReport) {
    let with = base
        .clone()
        .with_mix(BehaviorMix::all_rational())
        .with_incentive(IncentiveScheme::ReputationBased);
    let without = base
        .with_mix(BehaviorMix::all_rational())
        .with_incentive(IncentiveScheme::None);
    let mut results = run_batch(vec![
        ("with-incentive".to_string(), 1.0, with),
        ("without-incentive".to_string(), 0.0, without),
    ]);
    let second = results.pop().expect("two results");
    let first = results.pop().expect("two results");
    (first, second)
}

/// **Figure 3, replicated** — the same comparison averaged over
/// `replications` independent seeds per arm, which is what the
/// `fig3_incentive_vs_none` binary reports: the single-run gains at reduced
/// scale are noisy, so the headline ±8–11 % comparison is made on seed
/// averages. Returns `(with-incentive runs, without-incentive runs)`.
pub fn figure3_replicated(
    base: SimulationConfig,
    replications: usize,
) -> (Vec<LabelledReport>, Vec<LabelledReport>) {
    assert!(replications > 0, "need at least one replication");
    let mut configs = Vec::new();
    for rep in 0..replications {
        let seed = base.seed.wrapping_add(1_000 * rep as u64);
        configs.push((
            format!("with-incentive/seed{rep}"),
            1.0,
            base.clone()
                .with_mix(BehaviorMix::all_rational())
                .with_incentive(IncentiveScheme::ReputationBased)
                .with_seed(seed),
        ));
        configs.push((
            format!("without-incentive/seed{rep}"),
            0.0,
            base.clone()
                .with_mix(BehaviorMix::all_rational())
                .with_incentive(IncentiveScheme::None)
                .with_seed(seed),
        ));
    }
    let results = run_batch(configs);
    let (with, without): (Vec<LabelledReport>, Vec<LabelledReport>) = results
        .into_iter()
        .partition(|r| r.label.starts_with("with-incentive"));
    (with, without)
}

/// Mean shared-articles and shared-bandwidth fractions over a set of runs.
pub fn mean_sharing(reports: &[LabelledReport]) -> (f64, f64) {
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let n = reports.len() as f64;
    (
        reports.iter().map(|r| r.report.shared_articles).sum::<f64>() / n,
        reports.iter().map(|r| r.report.shared_bandwidth).sum::<f64>() / n,
    )
}

/// **Figures 4 and 5** — sweep of the fraction of `primary`-type peers from
/// 10 % to 90 %, the remainder split equally between the other two types.
/// Figure 4 reads the whole-population sharing means of each report,
/// Figure 5 the rational-only breakdown.
pub fn mix_sweep(base: SimulationConfig, primary: BehaviorType) -> Vec<LabelledReport> {
    let configs = MIX_SWEEP_PERCENTAGES
        .iter()
        .map(|&pct| {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(primary, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct)));
            (
                format!("{}={}%", primary.label(), pct),
                f64::from(pct),
                config,
            )
        })
        .collect();
    run_batch(configs)
}

/// **Figure 6** — rational-peer edit behaviour when altruistic and
/// irrational peers are equally common: the fraction of rational peers is
/// swept from 10 % to 100 % and the rest is split evenly.
pub fn figure6_balanced_edit_behaviour(base: SimulationConfig) -> Vec<LabelledReport> {
    let mut percentages: Vec<u32> = MIX_SWEEP_PERCENTAGES.to_vec();
    percentages.push(100);
    let configs = percentages
        .iter()
        .map(|&pct| {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(BehaviorType::Rational, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct) * 31));
            (format!("rational={pct}%"), f64::from(pct), config)
        })
        .collect();
    run_batch(configs)
}

/// **Figure 7** — rational-peer edit behaviour under a varying share of
/// altruistic (top panel) or irrational (bottom panel) peers.
pub fn figure7_majority_following(
    base: SimulationConfig,
    varying: BehaviorType,
) -> Vec<LabelledReport> {
    assert!(
        varying != BehaviorType::Rational,
        "figure 7 varies the altruistic or irrational share"
    );
    mix_sweep(base, varying)
}

/// **ABL1** — reputation-function ablation: the same all-rational run with
/// different `β` values of the logistic function (and thus different growth
/// speeds), the knob Section VI flags as future work.
pub fn ablation_reputation_beta(base: SimulationConfig, betas: &[f64]) -> Vec<LabelledReport> {
    let configs = betas
        .iter()
        .map(|&beta| {
            let mut config = base.clone().with_mix(BehaviorMix::all_rational());
            config.reputation_beta = beta;
            (format!("beta={beta}"), beta, config)
        })
        .collect();
    run_batch(configs)
}

/// **ABL3** — incentive-scheme ablation: no incentive vs. tit-for-tat vs.
/// the full reputation scheme on a mixed population.
pub fn ablation_schemes(base: SimulationConfig) -> Vec<LabelledReport> {
    let mix = BehaviorMix::new(0.4, 0.3, 0.3);
    let configs = IncentiveScheme::ALL
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let config = base.clone().with_mix(mix).with_incentive(scheme);
            (scheme.label().to_string(), i as f64, config)
        })
        .collect();
    run_batch(configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;

    fn tiny_base() -> SimulationConfig {
        SimulationConfig {
            population: 12,
            initial_articles: 6,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let configs = vec![
            ("a".to_string(), 1.0, tiny_base().with_seed(1)),
            ("b".to_string(), 2.0, tiny_base().with_seed(2)),
            ("c".to_string(), 3.0, tiny_base().with_seed(3)),
        ];
        let results = run_batch(configs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].label, "a");
        assert_eq!(results[1].label, "b");
        assert_eq!(results[2].label, "c");
        assert_eq!(results[2].parameter, 3.0);
    }

    #[test]
    fn run_batch_matches_sequential_execution() {
        let config = tiny_base().with_seed(9);
        let parallel = run_batch(vec![
            ("x".to_string(), 0.0, config.clone()),
            ("y".to_string(), 0.0, config.clone()),
        ]);
        let sequential = Simulation::new(config).run();
        assert_eq!(parallel[0].report, sequential);
        assert_eq!(parallel[1].report, sequential);
    }

    #[test]
    fn figure3_produces_both_arms() {
        let (with, without) = figure3_incentive_vs_none(tiny_base());
        assert_eq!(with.label, "with-incentive");
        assert_eq!(without.label, "without-incentive");
        assert_eq!(with.report.evaluation_steps, 40);
    }

    #[test]
    fn figure3_replication_partitions_by_arm() {
        let (with, without) = figure3_replicated(tiny_base(), 2);
        assert_eq!(with.len(), 2);
        assert_eq!(without.len(), 2);
        assert!(with.iter().all(|r| r.label.starts_with("with-incentive")));
        assert!(without.iter().all(|r| r.label.starts_with("without-incentive")));
        let (articles, bandwidth) = mean_sharing(&with);
        assert!((0.0..=1.0).contains(&articles));
        assert!((0.0..=1.0).contains(&bandwidth));
        assert_eq!(mean_sharing(&[]), (0.0, 0.0));
    }

    #[test]
    fn mix_sweep_covers_nine_points() {
        let results = mix_sweep(tiny_base(), BehaviorType::Altruistic);
        assert_eq!(results.len(), 9);
        assert_eq!(results[0].parameter, 10.0);
        assert_eq!(results[8].parameter, 90.0);
        assert!(results[0].label.contains("altruistic=10%"));
    }

    #[test]
    fn figure6_includes_the_pure_rational_point() {
        let results = figure6_balanced_edit_behaviour(tiny_base());
        assert_eq!(results.len(), 10);
        assert_eq!(results.last().unwrap().parameter, 100.0);
    }

    #[test]
    #[should_panic(expected = "altruistic or irrational")]
    fn figure7_rejects_rational_sweep() {
        let _ = figure7_majority_following(tiny_base(), BehaviorType::Rational);
    }

    #[test]
    fn ablation_runs_all_schemes() {
        let results = ablation_schemes(tiny_base());
        assert_eq!(results.len(), 3);
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["none", "reputation", "tit-for-tat"]);
    }

    #[test]
    fn ablation_reputation_beta_labels() {
        let results = ablation_reputation_beta(tiny_base(), &[0.1, 0.3]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "beta=0.1");
        assert_eq!(results[1].parameter, 0.3);
    }
}
